"""§1's motivating studies, reproduced on the BLAS-style library.

- Shen–Li–Yew: "approximately 50 percent of the subscripts which had
  previously been considered nonlinear were found to be linear in the
  presence of interprocedural constant information."
- Eigenmann–Blume: interprocedural constants are often loop bounds, and
  known trip counts drive parallelization profitability.

Both clients run over :mod:`repro.workloads.library` — routines written
against symbolic leading dimensions and strides, half of which the driver
fixes and half of which come from run-time input."""

from repro import analyze
from repro.depend import classify_loops, classify_subscripts
from repro.workloads.library import library_program


def run_motivation():
    result = analyze(library_program())
    before = classify_subscripts(result, constants_env=False)
    after = classify_subscripts(result, constants_env=True)
    loops_before = classify_loops(result, constants_env=False)
    loops_after = classify_loops(result, constants_env=True)
    return {
        "subscripts": before.total,
        "nonlinear_before": before.nonlinear,
        "nonlinear_after": after.nonlinear,
        "loops": len(loops_after),
        "parallel_before": sum(v.parallelizable for v in loops_before),
        "parallel_after": sum(v.parallelizable for v in loops_after),
        "profitable_before": sum(v.profitable for v in loops_before),
        "profitable_after": sum(v.profitable for v in loops_after),
    }


def test_motivation_dependence(benchmark, reporter):
    stats = benchmark.pedantic(run_motivation, rounds=1, iterations=1)
    improved = stats["nonlinear_before"] - stats["nonlinear_after"]
    fraction = improved / stats["nonlinear_before"]
    body = [
        f"array subscripts:               {stats['subscripts']}",
        f"nonlinear without ICP:          {stats['nonlinear_before']}",
        f"nonlinear with ICP:             {stats['nonlinear_after']}",
        f"nonlinear -> linear:            {improved} ({fraction:.0%})",
        "",
        f"DO loops:                       {stats['loops']}",
        f"parallelizable without ICP:     {stats['parallel_before']}",
        f"parallelizable with ICP:        {stats['parallel_after']}",
        f"profitably parallel w/o ICP:    {stats['profitable_before']}",
        f"profitably parallel with ICP:   {stats['profitable_after']}",
    ]
    reporter("Motivation (§1): dependence + parallelization clients",
             "\n".join(body))
    # Shen–Li–Yew: "approximately 50 percent"
    assert 0.4 <= fraction <= 0.8
    # Eigenmann–Blume: profitability decisions need the constants
    assert stats["profitable_before"] == 0
    assert stats["profitable_after"] >= 8
    assert stats["parallel_after"] >= stats["parallel_before"]
