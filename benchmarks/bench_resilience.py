"""Resilience counters over the seed corpus.

Sweeps the full workload suite through the fault-tolerant executor and
records the counters the resilience layer can produce — degradations,
failures, retries, quarantines. On a healthy seed every one of them is
zero, and ``--bench-check`` holds ``degradations``/``failures`` to zero
tolerance: any nonzero value means a budget or fault path fired where
none was configured.
"""

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.resilience.executor import SweepPolicy, run_sweep
from repro.workloads import load, suite_names

CONFIGS = {
    "literal": AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
    "pass_through": AnalysisConfig(),
    "polynomial": AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL),
}


def test_resilient_sweep_is_clean_on_seed(benchmark, reporter, bench_counters):
    sources = {name: load(name).source for name in suite_names()}
    outcome = benchmark.pedantic(
        lambda: run_sweep(sources, CONFIGS, SweepPolicy()),
        rounds=1,
        iterations=1,
    )
    assert outcome.complete
    bench_counters.update(
        {
            "degradations": outcome.degradation_count(),
            "failures": len(outcome.failures),
            "quarantined": len(outcome.quarantined),
            "retries": outcome.retries,
            "cells": outcome.executed_cells,
        }
    )
    lines = [
        f"programs swept     {len(sources)}",
        f"cells executed     {outcome.executed_cells}",
        f"degradations       {outcome.degradation_count()}",
        f"failures           {len(outcome.failures)}",
        f"quarantined        {len(outcome.quarantined)}",
        f"retries            {outcome.retries}",
    ]
    reporter("Resilient sweep over seed corpus", "\n".join(lines))
    assert outcome.degradation_count() == 0
    assert not outcome.failures
