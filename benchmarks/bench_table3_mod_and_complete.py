"""Table 3: the most precise jump function vs. other techniques.

Covers the MOD ablation, complete propagation (ICP + dead-code
elimination to a fixpoint), and the purely intraprocedural baseline, at
full scale, with the paper's qualitative findings asserted."""

from repro.reporting import format_table3, run_table3


def test_table3_mod_and_complete(benchmark, reporter):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    reporter("Table 3 (propagation technique comparison)", format_table3(rows))
    gainers = set()
    for row in rows:
        assert row.polynomial_no_mod <= row.polynomial_with_mod
        assert row.complete >= row.polynomial_with_mod
        assert row.intraprocedural_only <= row.polynomial_with_mod
        if row.complete > row.polynomial_with_mod:
            gainers.add(row.program)
    # complete propagation pays off only where the paper saw it pay off
    assert gainers == {"ocean", "spec77"}
    # MOD-sensitive programs collapse without summaries
    by_name = {row.program: row for row in rows}
    for name in ("adm", "linpackd", "ocean", "simple"):
        row = by_name[name]
        assert row.polynomial_no_mod <= 0.6 * row.polynomial_with_mod
