"""Flat slab engine vs the object engine on the 1k-procedure tier.

The flat engine (:mod:`repro.core.slab`) re-represents stage 3 as
preallocated integer arrays: tagged lattice codes, CSR edge slices, a
precomputed structural sweep, and batched generation-stamped drains.
On the ``large`` workload family (ROADMAP: scale the workload axis to
1k–10k procedures) it must beat the object engine by at least
:data:`SPEEDUP_FLOOR` warm-vs-warm wall-clock on *every* corpus shape —
deep chains, wide fan-out, one giant SCC — while its resident solver
state (``slab_bytes``: the slab plus the per-solve codes/stamp arrays)
stays at least :data:`MEMORY_FLOOR` times smaller than the object
engine's resident index + region partition. Both engines are checked
value-identical on every corpus before any timing.

Timings are warm-vs-warm: both the object engine's cached partition and
the flat engine's cached slab are built before the clock starts, so the
ratio isolates the per-solve representation overhead, not build cost.
"""

import gc
import sys
import time

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.exprs import ValueExpr
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend import parse_program
from repro.ir import lower_program
from repro.workloads.suite import large_names, load

SPEEDUP_FLOOR = 3.0
MEMORY_FLOOR = 5.0
ROUNDS = 5


def _pipeline(source, config):
    program = parse_program(source)
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


def _best_of(fn, rounds=ROUNDS):
    # cyclic GC pauses from the host process's allocation churn would
    # otherwise dominate the few-millisecond solves and add noise
    best = float("inf")
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if enabled:
            gc.enable()
    return best


def _deep_bytes(*roots):
    """Resident bytes of the object engine's solver state: an
    id-deduplicated walk over the support index and region partition.
    Strings cost one pointer (their contents are shared with the
    frontend, exactly as the slab's ``nbytes`` counts them) and interned
    expressions are counted shallow (they belong to stage 2 and are
    retained by the jump functions whichever engine solves)."""
    seen: set[int] = set()
    total = 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, str):
            total += 8
            continue
        total += sys.getsizeof(obj)
        if isinstance(obj, ValueExpr):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (tuple, list, set, frozenset)):
            stack.extend(obj)
        else:
            for klass in type(obj).__mro__:
                for name in getattr(klass, "__slots__", ()):
                    if hasattr(obj, name):
                        stack.append(getattr(obj, name))
            if hasattr(obj, "__dict__"):
                stack.append(obj.__dict__)
    return total


def _canon(val):
    # bool-vs-int aware comparison (True == 1 under plain ==)
    return {
        proc: {key: (type(v), v) for key, v in env.items()}
        for proc, env in val.items()
    }


def run_comparison():
    rows = []
    config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
    for name in large_names():
        workload = load(name)
        lowered, graph, forward = _pipeline(workload.source, config)

        # warm both caches and cross-check the fixpoints first
        obj = solve(lowered, graph, forward)
        flat = solve(lowered, graph, forward, flat=True)
        assert _canon(obj.val) == _canon(flat.val), name
        assert obj.reached == flat.reached, name

        t_obj = _best_of(lambda: solve(lowered, graph, forward))
        t_flat = _best_of(lambda: solve(lowered, graph, forward, flat=True))

        # what the object engine keeps resident across a solve: its
        # support index, the cached region partition, and the boxed
        # environment dicts it populates (the flat engine's codes array
        # plays the val role until the final decode)
        index = forward.support_index(lowered)
        partition = forward._region_partition[2]
        object_bytes = _deep_bytes(index, partition, obj.val)
        rows.append(
            {
                "name": name,
                "procedures": len(obj.reached),
                "object_seconds": t_obj,
                "flat_seconds": t_flat,
                "speedup": t_obj / t_flat,
                "object_bytes": object_bytes,
                "slab_bytes": flat.slab_bytes,
                "memory_ratio": object_bytes / flat.slab_bytes,
                "slab_slots": flat.slab_slots,
                "batch_drains": flat.batch_drains,
                "evaluations": flat.evaluations,
                "meets": flat.meets,
            }
        )
    return rows


def test_flat_engine_beats_object_engine(benchmark, reporter, bench_counters):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    lines = [
        f"{'corpus':<14} {'procs':>5} {'object':>9} {'flat':>9} "
        f"{'speedup':>8} {'obj KiB':>8} {'slab KiB':>9} {'mem':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['name']:<14} {row['procedures']:>5} "
            f"{row['object_seconds'] * 1000:>7.1f}ms "
            f"{row['flat_seconds'] * 1000:>7.1f}ms "
            f"{row['speedup']:>7.2f}x "
            f"{row['object_bytes'] / 1024:>8.0f} "
            f"{row['slab_bytes'] / 1024:>9.0f} "
            f"{row['memory_ratio']:>6.1f}x"
        )
    reporter(
        "Flat slab engine vs object engine (large tier, warm-vs-warm)",
        "\n".join(lines)
        + f"\nfloors: speedup {SPEEDUP_FLOOR}x, memory {MEMORY_FLOOR}x",
    )

    for row in rows:
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"{row['name']}: flat engine only {row['speedup']:.2f}x faster "
            f"than the object engine (floor {SPEEDUP_FLOOR}x)"
        )
        assert row["memory_ratio"] >= MEMORY_FLOOR, (
            f"{row['name']}: slab resident bytes only {row['memory_ratio']:.1f}x "
            f"smaller than the object index (floor {MEMORY_FLOOR}x)"
        )

    bench_counters.update(
        {
            "evaluations": sum(row["evaluations"] for row in rows),
            "meets": sum(row["meets"] for row in rows),
            "slab_slots": sum(row["slab_slots"] for row in rows),
            "slab_bytes": sum(row["slab_bytes"] for row in rows),
            "min_speedup": round(min(row["speedup"] for row in rows), 3),
            "min_memory_ratio": round(
                min(row["memory_ratio"] for row in rows), 3
            ),
        }
    )
