"""Ablation: analysis cost vs. program size.

The paper observes that the intraprocedural phases dominate the
interprocedural solve ("the cost of intraprocedural analysis dominates
the cost of the interprocedural phase", §4.1). This bench sweeps the
generator's scale factor on one profile and reports where the time goes.
"""

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer
from repro.workloads import load

SCALES = (0.25, 0.5, 1.0, 1.5)


def run_sweep():
    rows = []
    for scale in SCALES:
        workload = load("spec77", scale=scale)
        result = Analyzer(workload.source).run(
            AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH)
        )
        intra = result.timings["returns"] + result.timings["forward"]
        rows.append(
            {
                "scale": scale,
                "lines": workload.line_count,
                "intraprocedural_seconds": intra,
                "solve_seconds": result.timings["solve"],
                "constants": result.constants_found,
            }
        )
    return rows


def test_scaling_sweep(benchmark, reporter):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    header = f"{'scale':>6} {'lines':>7} {'intra(s)':>9} {'solve(s)':>9} {'consts':>7}"
    body = [header, "-" * len(header)]
    for row in rows:
        body.append(
            f"{row['scale']:>6.2f} {row['lines']:>7} "
            f"{row['intraprocedural_seconds']:>9.3f} "
            f"{row['solve_seconds']:>9.3f} {row['constants']:>7}"
        )
    reporter("Scaling ablation (analysis cost vs program size)", "\n".join(body))
    for row in rows:
        # §4.1: intraprocedural analysis dominates the interprocedural solve
        assert row["intraprocedural_seconds"] > row["solve_seconds"]
    assert rows[-1]["constants"] >= rows[0]["constants"]
