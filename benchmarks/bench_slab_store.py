"""Persistent slab artifacts on the ~10k-procedure tier.

The tentpole claim of the persistent-slab work: on the ``huge``
workload family a warm run — deserialize the published slab blob and
solve over it — must be at least :data:`WARM_SPEEDUP_FLOOR` times
faster *end-to-end* (slab plan + solve vs slab build + solve) than the
cold run that built the slab, and a single-procedure edit must re-slab
only the edited procedure's slots (``slab_patched_procs == 1``) rather
than rebuilding the 10k-procedure slab.

Three paths are value-checked identical before any gate fires: the
cold build, the store-warm load, and the incremental patch (the last
against a from-scratch flat analyze of the edited source).

Timing methodology: the cold side is best-of-:data:`ROUNDS` flat
analyzes against *no* store (every round pays ``build_slab`` inside
the solve stage); the warm side is best-of-:data:`ROUNDS` analyzes
against the store the cold run published to (every round pays
``plan_slab`` — snapshot fetch, blob fetch, checksum, deserialize —
plus the solve). Stage-0 artifacts are shared by all rounds through
the process cache, so the ratio isolates exactly what the artifact
store is supposed to amortize.

``--bench-check`` gates the work counters (``evaluations``/``meets``)
at the usual 10% tolerance and ``degradations``/``failures``/
``store_fallbacks`` at zero: a healthy store never silently degrades a
warm run to a cold rebuild.
"""

import gc
import re

import pytest

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer, analyze
from repro.store import ArtifactStore
from repro.workloads.suite import load

WARM_SPEEDUP_FLOOR = 5.0
ROUNDS = 3
CORPUS = "huge_fanout"

#: standalone integer literal — never digits embedded in an identifier
_LITERAL = re.compile(r"(?<![\w.])\d+(?![\w.])")


def _bump_one_literal(source):
    """Bump one integer literal in the body of the last subroutine that
    has one — a deterministic single-procedure, structure-preserving
    edit (the jump functions keep their shape; one constant moves)."""
    lines = source.splitlines()
    start = None
    site = None
    for index, line in enumerate(lines):
        stripped = line.strip()
        if start is None and stripped.startswith(("subroutine", "function")):
            start = index
        elif start is not None and stripped == "end":
            start = None
        elif start is not None and "integer" not in line:
            match = _LITERAL.search(line)
            if match:
                site = (index, match.start(), match.end())
    assert site is not None, "corpus has no editable literal"
    index, lo, hi = site
    line = lines[index]
    value = int(line[lo:hi]) + 1
    lines[index] = line[:lo] + str(value) + line[hi:]
    return "\n".join(lines) + "\n"


def _best_of(fn, rounds=ROUNDS):
    """The round whose *gated metric* (slab plan + solve) is smallest —
    the rest of the pipeline (stage 1/2 rebuilds) is identical on both
    sides and not what the store amortizes."""
    best, best_result = float("inf"), None
    enabled = gc.isenabled()
    # cyclic GC pauses from the host process's allocation churn would
    # otherwise dominate the sub-second solves and add noise
    gc.disable()
    try:
        for _ in range(rounds):
            result = fn()
            elapsed = _solve_seconds(result)
            if elapsed < best:
                best, best_result = elapsed, result
    finally:
        if enabled:
            gc.enable()
    return best_result


def _canon(val):
    # bool-vs-int aware comparison (True == 1 under plain ==)
    return {
        proc: {key: (type(v), v) for key, v in env.items()}
        for proc, env in val.items()
    }


def _solve_seconds(result):
    """What each side pays per run once stage 0/1/2 are warm: the slab
    plan (absent on the storeless cold side) plus the solve."""
    return result.timings.get("slab_plan", 0.0) + result.timings["solve"]


@pytest.mark.slow
def test_warm_slab_beats_cold_build(tmp_path, reporter, bench_counters):
    source = load(CORPUS).source
    config = AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL, flat_engine=True
    )

    # cold: no store, so every run pays build_slab inside the solve
    cold = _best_of(lambda: analyze(source, config))
    assert cold.solved.slab_build_seconds > 0.0
    assert cold.solved.slab_load_seconds == 0.0

    # publish: one store-backed run writes snapshot + slab blob
    store = ArtifactStore(str(tmp_path / "store"))
    analyzer = Analyzer(source, store=store)
    published = analyzer.run(config)
    assert published.incremental is None or published.incremental.mode != "slab"

    # warm: every run loads the published blob instead of building
    warm = _best_of(lambda: analyzer.run(config))
    assert warm.incremental is not None and warm.incremental.mode == "slab"
    assert warm.solved.slab_load_seconds > 0.0
    assert warm.solved.slab_build_seconds == 0.0
    assert _canon(warm.solved.val) == _canon(cold.solved.val)

    cold_seconds = _solve_seconds(cold)
    warm_seconds = _solve_seconds(warm)
    speedup = cold_seconds / warm_seconds

    # patch: bump one literal in one subroutine; only that procedure's
    # slots may be re-slabbed, and the answers must match from-scratch
    edited = _bump_one_literal(source)
    assert edited != source
    patched = analyzer.reanalyze(edited, config)
    assert patched.incremental is not None
    assert patched.incremental.mode == "slab-patch"
    assert patched.solved.slab_patched_procs == 1
    assert patched.solved.slab_patched_slots < patched.solved.slab_slots // 100
    scratch = analyze(edited, config)
    assert _canon(patched.solved.val) == _canon(scratch.solved.val)

    degradations = (
        len(cold.degradations) + len(warm.degradations)
        + len(patched.degradations)
    )
    reporter(
        f"Persistent slabs on the ~10k-procedure tier ({CORPUS})",
        "\n".join(
            [
                f"{'procedures':<22} {len(warm.solved.reached):>10}",
                f"{'slab slots':<22} {warm.solved.slab_slots:>10}",
                f"{'slab KiB':<22} {warm.solved.slab_bytes // 1024:>10}",
                f"{'cold build+solve':<22} {cold_seconds * 1000.0:>8.1f} ms",
                f"{'warm load+solve':<22} {warm_seconds * 1000.0:>8.1f} ms",
                f"{'warm speedup':<22} {speedup:>9.2f}x"
                f"  (floor {WARM_SPEEDUP_FLOOR:.1f}x)",
                f"{'patched procs':<22} "
                f"{patched.solved.slab_patched_procs:>10}",
                f"{'patched slots':<22} "
                f"{patched.solved.slab_patched_slots:>10}",
            ]
        ),
    )

    bench_counters.update(
        {
            "procedures": len(warm.solved.reached),
            "evaluations": cold.solved.evaluations,
            "meets": cold.solved.meets,
            "warm_speedup": round(speedup, 2),
            "slab_bytes": warm.solved.slab_bytes,
            "patched_procs": patched.solved.slab_patched_procs,
            "patched_slots": patched.solved.slab_patched_slots,
            "degradations": degradations,
            "failures": 0,
            "store_fallbacks": warm.incremental.store_fallbacks,
        }
    )

    assert degradations == 0
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm slab load+solve only {speedup:.2f}x faster than cold "
        f"build+solve (floor {WARM_SPEEDUP_FLOOR:.1f}x)"
    )
