"""Ablation beyond the paper: goal-directed procedure cloning.

§5 reports Metzger and Stroud's finding that cloning guided by
interprocedural constants "can substantially increase the number of
interprocedural constants available". This bench runs one cloning round
over the suite and reports constants recovered vs. code growth."""

from repro.core.cloning import clone_and_reanalyze
from repro.workloads import load, suite_names


def run_cloning():
    rows = []
    for name in suite_names():
        workload = load(name)
        report = clone_and_reanalyze(workload.source)
        rows.append(
            {
                "program": name,
                "before": report.constants_before,
                "after": report.constants_after,
                "clones": report.clones_created,
                "growth": report.code_growth,
            }
        )
    return rows


def test_cloning_ablation(benchmark, reporter):
    rows = benchmark.pedantic(run_cloning, rounds=1, iterations=1)
    header = (
        f"{'Program':<12} {'before':>7} {'after':>7} {'gain':>6} "
        f"{'clones':>7} {'growth':>7}"
    )
    body = [header, "-" * len(header)]
    total_gain = 0
    for row in rows:
        gain = row["after"] - row["before"]
        total_gain += gain
        body.append(
            f"{row['program']:<12} {row['before']:>7} {row['after']:>7} "
            f"{gain:>+6} {row['clones']:>7} {row['growth']:>7.2f}"
        )
    reporter("Ablation: goal-directed procedure cloning (§5)", "\n".join(body))
    for row in rows:
        assert row["after"] >= row["before"]  # cloning never loses constants
    assert total_gain > 0  # and recovers the conflicting-site idioms
