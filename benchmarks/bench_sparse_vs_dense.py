"""Scaling: sparse vs dense solver cost as program size grows.

Sweeps the generator's scale factor on the ``spec77`` profile (the same
sizes as ``bench_scaling.py``) and compares the dense reference, the
sparse delta-driven engine, and the binding-graph solver on each size.
The interesting question is whether the sparse engine's advantage (fewer
solve-time evaluations) persists — or grows — with program size, and
whether its bookkeeping ever costs more wall-clock than it saves."""

import time

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve, solve_dense
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.workloads import load

from benchmarks.bench_scaling import SCALES

SOLVERS = (
    ("dense", solve_dense),
    ("sparse", solve),
    ("binding", solve_binding_graph),
)


def _prepare(scale):
    config = AnalysisConfig()
    workload = load("spec77", scale=scale)
    lowered = lower_program(parse_program(workload.source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return workload, lowered, graph, forward


def run_sweep():
    rows = []
    for scale in SCALES:
        workload, lowered, graph, forward = _prepare(scale)
        row = {"scale": scale, "lines": workload.line_count}
        baseline_val = None
        for label, solver in SOLVERS:
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                result = solver(lowered, graph, forward)
                best = min(best, time.perf_counter() - start)
            if baseline_val is None:
                baseline_val = result.val
            else:
                assert result.val == baseline_val  # same fixpoint at every size
            row[label] = {
                "seconds": best,
                "evaluations": result.evaluations,
                "meets": result.meets,
            }
        rows.append(row)
    return rows


def test_sparse_vs_dense_scaling(benchmark, reporter, bench_counters):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    header = (
        f"{'scale':>6} {'lines':>7} "
        f"{'dense ev':>9} {'sparse ev':>10} {'binding ev':>11} "
        f"{'dense ms':>9} {'sparse ms':>10}"
    )
    body = [header, "-" * len(header)]
    for row in rows:
        body.append(
            f"{row['scale']:>6.2f} {row['lines']:>7} "
            f"{row['dense']['evaluations']:>9} "
            f"{row['sparse']['evaluations']:>10} "
            f"{row['binding']['evaluations']:>11} "
            f"{row['dense']['seconds'] * 1000:>9.2f} "
            f"{row['sparse']['seconds'] * 1000:>10.2f}"
        )
    reporter("Sparse vs dense scaling (spec77 profile)", "\n".join(body))

    for row in rows:
        # the evaluation advantage must hold at every program size
        assert row["sparse"]["evaluations"] < row["dense"]["evaluations"]
    largest = rows[-1]
    bench_counters.update(
        {
            "largest_scale_dense_evaluations": largest["dense"]["evaluations"],
            "largest_scale_sparse_evaluations": largest["sparse"]["evaluations"],
            "largest_scale_binding_evaluations": largest["binding"]["evaluations"],
        }
    )
