"""Compiled jump-function kernels vs the ``evaluate`` tree walk.

``compile_expr`` flattens an interned expression into a chain of closures
with the lattice short-circuits — and the int-only arithmetic for ``+``,
``-`` and ``*`` — inlined. On the deep polynomial chains that dominate
re-evaluation cost in big solves the kernel must be at least 2x faster
than the recursive tree walk, while remaining value-identical on every
lattice input (constants, ⊤, ⊥, and the absorbing zero).

The timed expression mixes several entry keys with small additive
constants, the shape real jump functions take (loop counters, offsets):
values stay in CPython's small-int cache, so the measurement isolates
the interpretation overhead the kernels remove rather than big-int
allocation cost.
"""

import gc
import time

from repro.core.exprs import (
    compile_expr,
    const_expr,
    entry_expr,
    make_binary,
)
from repro.core.lattice import BOTTOM, TOP

SPEEDUP_FLOOR = 2.0
DEPTH = 35
ROUNDS = 20_000


def _deep_polynomial():
    # ((x + y) - c0 + z) - c1 ... : a chain the simplifier cannot
    # collapse, sized safely under the ⊥-collapse node limit
    expr = entry_expr("x")
    keys = ("y", "z", "w")
    for i in range(DEPTH):
        expr = make_binary("+", expr, entry_expr(keys[i % 3]))
        expr = make_binary("-", expr, const_expr(i % 7 + 1))
    return expr


ENVS = [
    {"x": 3, "y": 1, "z": 2, "w": 0},
    {"x": 11, "y": 5, "z": 1, "w": 2},
    {"x": 0, "y": 0, "z": 0, "w": 0},
    {"x": TOP, "y": 1, "z": 1, "w": 1},
    {"x": BOTTOM, "y": 1, "z": 1, "w": 1},
]


def _assert_kernels_agree():
    # correctness spot-checks beyond the timed chain: the absorbing zero
    # and ⊥/⊤ short-circuits through a product
    product = make_binary("*", entry_expr("x"), entry_expr("y"))
    kernel = compile_expr(product)
    for env in ENVS:
        walked = product.evaluate(env)
        compiled = kernel(env)
        assert compiled == walked or compiled is walked, env


def _best_of(fn, rounds=3):
    # cyclic GC pauses triggered by the host process's allocation churn
    # (pytest holds a large object graph) would otherwise dominate the
    # short per-call work and add noise to the measured ratio
    best = float("inf")
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(ROUNDS):
                for env in ENVS:
                    fn(env)
            best = min(best, time.perf_counter() - start)
    finally:
        if enabled:
            gc.enable()
    return best


def run_comparison():
    expr = _deep_polynomial()
    kernel = compile_expr(expr)
    for env in ENVS:
        walked = expr.evaluate(env)
        compiled = kernel(env)
        assert compiled == walked or compiled is walked, env
    _assert_kernels_agree()
    tree_walk = _best_of(expr.evaluate)
    compiled = _best_of(kernel)
    return {
        "expr_size": expr.size,
        "tree_walk_seconds": tree_walk,
        "kernel_seconds": compiled,
        "speedup": tree_walk / compiled,
    }


def test_compiled_kernels_beat_tree_walk(benchmark, reporter, bench_counters):
    row = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    reporter(
        "Compiled kernels vs evaluate tree walk",
        f"expression size {row['expr_size']}, "
        f"{ROUNDS * len(ENVS)} evaluations per timing:\n"
        f"  tree walk {row['tree_walk_seconds'] * 1000:>8.1f} ms\n"
        f"  kernel    {row['kernel_seconds'] * 1000:>8.1f} ms\n"
        f"  speedup   {row['speedup']:>8.2f}x (floor {SPEEDUP_FLOOR}x)",
    )

    assert row["speedup"] >= SPEEDUP_FLOOR, (
        f"compiled kernel only {row['speedup']:.2f}x faster than the tree "
        f"walk (floor {SPEEDUP_FLOOR}x)"
    )
    bench_counters.update(
        {
            "kernel_speedup": round(row["speedup"], 3),
            "expr_size": row["expr_size"],
        }
    )
