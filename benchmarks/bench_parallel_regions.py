"""Wave-parallel region solving: overlap and byte-identity.

Two measurements:

- ``test_parallel_wave_overlap_speedup`` gates the scheduler itself: every
  region task carries an injected fixed latency (a chaos ``sleep`` fault at
  the region-worker chaos point, hit identically by the inline and the
  pooled path), so the wall-clock ratio measures how much of one wave the
  pool actually overlaps — independent of how fast the machine evaluates
  jump functions. With eight independent regions in one wave and four
  workers the pooled solve must be at least 1.5x faster than the inline
  schedule. Skipped on single-CPU hosts, where the gate would only measure
  the scheduler's overhead.
- ``test_parallel_matches_sequential_on_workload`` runs a real workload
  through a real two-worker pool with compiled kernels and requires the
  byte-identical VAL sets that the property suite checks exhaustively,
  recording the solver work counters for the regression gate.
"""

import os
import time

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.parallel import solve_parallel
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.resilience import chaos
from repro.resilience.chaos import ChaosSpec, Fault
from repro.resilience.errors import Stage
from repro.workloads import load

SPEEDUP_FLOOR = 1.5
FANOUT_WIDTH = 8
WORKERS = 4
REGION_LATENCY = 0.2  # injected seconds per region task


def _fanout_source(width=FANOUT_WIDTH):
    # main fans out to ``width`` independent leaves: wave 0 is main's
    # region, wave 1 holds all the leaves with no call path between them
    lines = ["program m"]
    lines.extend(f"  call p{i}({i + 1})" for i in range(width))
    lines.append("end")
    for i in range(width):
        lines.extend(
            [f"subroutine p{i}(a)", "  integer a", "  write a", "end"]
        )
    return "\n".join(lines) + "\n"


def _build(source, config):
    lowered = lower_program(parse_program(source))
    ensure_global_symbols(lowered)
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    returns = build_return_jump_functions(lowered, graph, modref, config)
    forward = build_forward_jump_functions(lowered, modref, returns, config)
    return lowered, graph, forward


def run_overlap_comparison():
    source = _fanout_source()
    config = AnalysisConfig()
    lowered, graph, forward = _build(source, config)
    spec = ChaosSpec(
        faults=(
            Fault(
                stage=Stage.SOLVE,
                kind="sleep",
                scope="region-worker",
                sleep_seconds=REGION_LATENCY,
            ),
        )
    )
    chaos.install(spec, label="bench")
    try:
        start = time.perf_counter()
        seq = solve_parallel(lowered, graph, forward, workers=1)
        inline_seconds = time.perf_counter() - start
        start = time.perf_counter()
        par = solve_parallel(
            lowered,
            graph,
            forward,
            workers=WORKERS,
            source=source,
            config=config,
        )
        pooled_seconds = time.perf_counter() - start
    finally:
        chaos.uninstall()
    assert par.val == seq.val
    assert par.regions_parallel == FANOUT_WIDTH
    return {
        "inline_seconds": inline_seconds,
        "pooled_seconds": pooled_seconds,
        "speedup": inline_seconds / pooled_seconds,
        "waves": par.waves,
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="wave-overlap gate needs at least two CPUs",
)
def test_parallel_wave_overlap_speedup(benchmark, reporter, bench_counters):
    row = benchmark.pedantic(run_overlap_comparison, rounds=1, iterations=1)

    reporter(
        "Wave-parallel overlap (injected region latency "
        f"{REGION_LATENCY * 1000:.0f} ms, {FANOUT_WIDTH} regions, "
        f"{WORKERS} workers)",
        f"  inline {row['inline_seconds']:>6.2f} s\n"
        f"  pooled {row['pooled_seconds']:>6.2f} s\n"
        f"  speedup {row['speedup']:>5.2f}x (floor {SPEEDUP_FLOOR}x), "
        f"{row['waves']} waves",
    )

    assert row["speedup"] >= SPEEDUP_FLOOR, (
        f"pooled waves only {row['speedup']:.2f}x faster than inline "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    bench_counters.update({"wave_overlap_speedup": round(row["speedup"], 3)})


def run_workload_comparison():
    config = AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL)
    source = load("linpackd", scale=0.5).source
    lowered, graph, forward = _build(source, config)
    seq = solve(lowered, graph, forward)
    par = solve_parallel(
        lowered,
        graph,
        forward,
        workers=2,
        source=source,
        config=config,
        compiled=True,
    )
    assert par.val == seq.val
    assert par.reached == seq.reached
    assert par.all_constants() == seq.all_constants()
    return seq, par


def test_parallel_matches_sequential_on_workload(
    benchmark, reporter, bench_counters
):
    seq, par = benchmark.pedantic(
        run_workload_comparison, rounds=1, iterations=1
    )

    reporter(
        "Pooled solve vs sequential (linpackd, scale 0.5, 2 workers)",
        f"  VAL byte-identical over {len(par.val)} procedures\n"
        f"  {par.waves} waves, {par.regions} regions, "
        f"{par.regions_parallel} solved in pool\n"
        f"  sequential work: {seq.evaluations} evaluations, "
        f"{seq.meets} meets",
    )

    bench_counters.update(
        {
            "evaluations": seq.evaluations,
            "meets": seq.meets,
            "waves": par.waves,
            "regions_parallel": par.regions_parallel,
        }
    )
