"""The cost of generality: the framework constprop client vs the
specialized solver it re-expresses.

The tentpole extraction claims the pluggable engine gives up (almost)
nothing — the generic :class:`~repro.framework.engine.ClientEngine`
performs the *same* evaluations, meets, and deltas as the specialized
:class:`~repro.core.engine.DeltaEngine` (asserted exactly, counter for
counter), and its wall-clock overhead from edge-function dispatch stays
under the gate below on the Table 1–3 corpus. The two new clients are
timed alongside for the record: copy propagation pays the specialized
path's prices plus the richer lattice; MOD/REF re-derives the
Cooper–Kennedy summaries through the reverse flow graph."""

import time

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.framework import solve_client
from repro.framework.clients import (
    ConstPropClient,
    CopyPropClient,
    ModRefClient,
    cross_check_modref,
)
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.workloads import load, suite_names

#: generic-engine constprop must stay within this factor of the
#: specialized path's wall-clock (ISSUE 8 satellite gate: 1.3x).
MAX_GENERIC_OVERHEAD = 1.3


@pytest.fixture(scope="module")
def prepared():
    """Stage 1+2 artifacts for the whole suite, built once."""
    config = AnalysisConfig()
    bundle = []
    for name in suite_names():
        lowered = lower_program(parse_program(load(name).source))
        ensure_global_symbols(lowered)
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        returns = build_return_jump_functions(lowered, graph, modref, config)
        forward = build_forward_jump_functions(lowered, modref, returns, config)
        bundle.append((lowered, graph, forward))
    return bundle


def _sum_counters(results) -> dict[str, int]:
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result.counters().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _solve_specialized(prepared):
    return [solve(lowered, graph, forward)
            for lowered, graph, forward in prepared]


def _solve_framework(prepared):
    return [solve_client(lowered, graph, ConstPropClient(forward))
            for lowered, graph, forward in prepared]


def _interleaved_best(runners, prepared, repeats=7) -> list[float]:
    """Best-of-N wall-clock per runner, rounds interleaved so ambient
    machine noise hits every runner alike."""
    best = [float("inf")] * len(runners)
    for _ in range(repeats):
        for index, runner in enumerate(runners):
            start = time.perf_counter()
            runner(prepared)
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_framework_constprop(benchmark, prepared, bench_counters):
    """The generic engine driving the translated constprop edges."""
    results = benchmark(lambda: _solve_framework(prepared))
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))


def test_generic_vs_specialized_cost(prepared, reporter, bench_counters):
    """The tentpole gate: same fixpoint, same work counters, wall-clock
    within ``MAX_GENERIC_OVERHEAD`` of the specialized path."""
    specialized_results = _solve_specialized(prepared)
    framework_results = _solve_framework(prepared)

    lines = [
        f"{'program':<12} {'evaluations':>12} {'memo hits':>10} {'passes':>7}",
        "-" * 45,
    ]
    for (lowered, _, _), spec, generic in zip(
        prepared, specialized_results, framework_results
    ):
        assert generic.val == spec.val  # bit-identical VAL
        assert generic.counters() == spec.counters()  # same work, exactly
        lines.append(
            f"{lowered.program.main:<12} {generic.evaluations:>12} "
            f"{generic.memo_hits:>10} {generic.passes:>7}"
        )

    specialized_secs, framework_secs = _interleaved_best(
        (_solve_specialized, _solve_framework), prepared
    )
    overhead = framework_secs / specialized_secs
    lines.append("-" * 45)
    lines.append(
        f"wall-clock (best of 7): specialized {specialized_secs * 1000:.2f} ms, "
        f"framework {framework_secs * 1000:.2f} ms ({overhead:.2f}x, "
        f"gate {MAX_GENERIC_OVERHEAD}x)"
    )
    reporter("Generic engine vs specialized solver", "\n".join(lines))
    bench_counters.update(_sum_counters(framework_results))
    bench_counters.update(
        {
            "specialized_ms": round(specialized_secs * 1000, 3),
            "framework_ms": round(framework_secs * 1000, 3),
            "overhead_x": round(overhead, 3),
        }
    )
    assert framework_secs <= specialized_secs * MAX_GENERIC_OVERHEAD


def test_copyprop_client(benchmark, prepared, reporter, bench_counters):
    """The first new client: the copy lattice over the same flow edges."""
    results = benchmark(
        lambda: [
            solve_client(lowered, graph, CopyPropClient(forward))
            for lowered, graph, forward in prepared
        ]
    )
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))

    from repro.framework.clients.copyprop import copy_facts

    lines = [f"{'program':<12} {'copy facts':>11}", "-" * 24]
    for (lowered, _, _), result in zip(prepared, results):
        facts = sum(len(env) for env in copy_facts(result).values())
        lines.append(f"{lowered.program.main:<12} {facts:>11}")
    reporter("Copy facts beyond constprop (per program)", "\n".join(lines))


def test_modref_client(benchmark, prepared, bench_counters):
    """The reverse-flow client, cross-checked against the reference."""
    results = benchmark(
        lambda: [
            solve_client(lowered, graph, ModRefClient())
            for lowered, graph, _ in prepared
        ]
    )
    bench_counters.update(_sum_counters(results))
    for (lowered, graph, _), result in zip(prepared, results):
        assert cross_check_modref(lowered, graph, result) == []
