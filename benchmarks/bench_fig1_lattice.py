"""Figure 1: the constant propagation lattice.

Regenerates the meet table from the implementation and benchmarks the
meet operation itself (it sits on the solver's innermost loop — §3.1.5's
cost analysis counts jump-function evaluations, each of which ends in a
meet)."""

from repro.core.lattice import BOTTOM, TOP, meet
from repro.reporting import figure1_meet_table

_SAMPLES = [TOP, BOTTOM, 0, 1, -7, 42, True, False]


def test_figure1_meet_table(benchmark, reporter):
    def meet_sweep():
        total = 0
        for a in _SAMPLES:
            for b in _SAMPLES:
                if meet(a, b) is BOTTOM:
                    total += 1
        return total

    benchmark(meet_sweep)
    reporter("Figure 1 (lattice meet rules)", figure1_meet_table())


def test_figure1_meet_is_fast_and_bounded(benchmark):
    """A chain of meets converges after at most two lowerings."""

    def lower_chain():
        value = TOP
        drops = 0
        for sample in (_SAMPLES * 8):
            lowered = meet(value, sample)
            if lowered is not value and lowered != value:
                drops += 1
                value = lowered
        return drops

    drops = benchmark(lower_chain)
    assert drops <= 2
