"""Ablation beyond the paper: composed return jump functions.

§3.2 limits return jump functions to constant-only evaluation — one that
depends on the calling procedure's parameters is set to ⊥. The
``compose_return_functions`` extension substitutes the caller's symbolic
expressions instead. This bench measures what that buys on the suite
(spoiler: a little, at a little cost — consistent with the paper's
decision not to bother)."""

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer
from repro.workloads import load, suite_names


def run_ablation():
    rows = []
    for name in suite_names():
        analyzer = Analyzer(load(name).source)
        standard = analyzer.run(AnalysisConfig(JumpFunctionKind.POLYNOMIAL))
        composed = analyzer.run(
            AnalysisConfig(
                JumpFunctionKind.POLYNOMIAL, compose_return_functions=True
            )
        )
        rows.append(
            {
                "program": name,
                "standard": standard.constants_found,
                "composed": composed.constants_found,
            }
        )
    return rows


def test_composed_return_functions(benchmark, reporter):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    header = f"{'Program':<12} {'standard':>9} {'composed':>9} {'gain':>6}"
    body = [header, "-" * len(header)]
    for row in rows:
        gain = row["composed"] - row["standard"]
        body.append(
            f"{row['program']:<12} {row['standard']:>9} {row['composed']:>9} "
            f"{gain:>+6}"
        )
    reporter(
        "Ablation: composed vs constant-only return jump functions",
        "\n".join(body),
    )
    for row in rows:
        # composition is strictly more precise; it must never lose constants
        assert row["composed"] >= row["standard"]
