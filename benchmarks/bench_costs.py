"""§3.1.5, measured: construction and propagation cost per jump function.

The paper's claims, checked against wall-clock and static statistics:

- the literal jump function is the cheapest to construct;
- pass-through and polynomial construction costs are similar (both ride
  the same SSA + value numbering);
- in practice polynomial jump functions stay small, so their evaluation
  cost approaches pass-through (mean expression size and |support| ≈ 1).
"""

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer
from repro.reporting import format_cost_report, run_cost_report
from repro.workloads import load


def test_cost_report(benchmark, reporter):
    rows = benchmark.pedantic(run_cost_report, rounds=1, iterations=1)
    reporter("Jump function cost report (§3.1.5)", format_cost_report(rows))
    by_kind = {row.kind: row for row in rows}
    poly = by_kind["polynomial"]
    # polynomial functions stay small in practice: |support| near 1
    assert poly.mean_support <= 1.5
    assert poly.mean_cost <= 4.0


def _bench_one(kind: JumpFunctionKind, benchmark):
    workload = load("spec77")
    analyzer = Analyzer(workload.source)

    def run():
        return analyzer.run(AnalysisConfig(jump_function=kind))

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    return result


def test_analysis_literal(benchmark):
    assert _bench_one(JumpFunctionKind.LITERAL, benchmark).constants_found > 0


def test_analysis_intraprocedural(benchmark):
    assert (
        _bench_one(JumpFunctionKind.INTRAPROCEDURAL, benchmark).constants_found > 0
    )


def test_analysis_pass_through(benchmark):
    assert _bench_one(JumpFunctionKind.PASS_THROUGH, benchmark).constants_found > 0


def test_analysis_polynomial(benchmark):
    assert _bench_one(JumpFunctionKind.POLYNOMIAL, benchmark).constants_found > 0
