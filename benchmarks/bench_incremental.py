"""Warm single-edit re-analysis against the persistent artifact store.

For each corpus program: analyze once (publishing fingerprints and
per-region fixed points), bump one integer literal in one late-scheduled
procedure, then re-analyze warm. The fingerprint diff should invalidate
only the edited procedure's region and its transitive callees, so the
warm run must do at least 5x fewer jump-function evaluations than a
from-scratch cold run of the edited source — and the results must be
identical to that cold run.

Under ``--bench-check`` the recorded ``evaluations`` (warm work) gate at
the usual 10% regression tolerance and ``store_fallbacks`` at zero:
a healthy store never forces a consistency fallback on the seed corpus.
"""

import re

from repro.core.config import AnalysisConfig
from repro.core.driver import Analyzer, analyze
from repro.workloads import load

PROGRAMS = ("trfd", "mdg", "fpppp", "adm")
CONFIG = AnalysisConfig()
SPEEDUP_FLOOR = 5

_LITERAL = re.compile(r"(?<![\w.])\d+(?![\w.])")


def bump_one_literal(source: str) -> str:
    """Edit exactly one procedure: bump the first standalone integer
    literal in the body of the last unit that has one."""
    lines = source.splitlines()
    header = None
    sites = []  # (unit_header_index, line_index, match)
    for index, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith(("program", "subroutine", "function")):
            header = index
        elif stripped == "end":
            header = None
        elif header is not None and "integer" not in line:
            match = _LITERAL.search(line)
            if match:
                sites.append((header, index, match))
    assert sites, "corpus program without an editable literal"
    _, index, match = sites[-1]
    line = lines[index]
    value = int(match.group()) + 1
    lines[index] = line[: match.start()] + str(value) + line[match.end() :]
    return "\n".join(lines) + "\n"


def reanalyze_corpus():
    totals = {
        "evaluations": 0,
        "cold_evaluations": 0,
        "store_fallbacks": 0,
        "regions_warm": 0,
        "regions": 0,
    }
    rows = []
    for name in PROGRAMS:
        source = load(name).source
        edited = bump_one_literal(source)
        analyzer = Analyzer(source)
        analyzer.run(CONFIG)
        warm = analyzer.reanalyze(edited, CONFIG)
        cold = analyze(edited, CONFIG)
        assert warm.solved.val == cold.solved.val
        assert warm.all_constants() == cold.all_constants()
        assert warm.references_substituted == cold.references_substituted
        totals["evaluations"] += warm.solved.evaluations
        totals["cold_evaluations"] += cold.solved.evaluations
        totals["store_fallbacks"] += warm.incremental.store_fallbacks
        totals["regions_warm"] += warm.solved.regions_warm
        totals["regions"] += warm.solved.regions
        rows.append(
            f"{name:<10} cold {cold.solved.evaluations:>5}  "
            f"warm {warm.solved.evaluations:>5}  "
            f"invalid {len(warm.incremental.invalid):>3}  "
            f"clean {warm.incremental.clean:>3}  mode {warm.incremental.mode}"
        )
        assert warm.incremental.mode == "warm"
    return totals, rows


def test_single_edit_reanalysis_is_warm(benchmark, reporter, bench_counters):
    totals, rows = benchmark.pedantic(reanalyze_corpus, rounds=1, iterations=1)
    warm_evals, cold_evals = totals["evaluations"], totals["cold_evaluations"]
    speedup = cold_evals / warm_evals if warm_evals else float("inf")
    bench_counters.update(totals)
    reporter(
        "Warm single-edit re-analysis (evaluations, per program)",
        "\n".join(
            rows
            + [
                "",
                f"total cold {cold_evals}, warm {warm_evals} "
                f"({speedup:.1f}x fewer; floor {SPEEDUP_FLOOR}x)",
                f"store fallbacks {totals['store_fallbacks']}",
            ]
        ),
    )
    # the ISSUE acceptance gate: >=5x fewer evaluations after one edit,
    # and never a store-consistency fallback on a healthy store
    assert warm_evals * SPEEDUP_FLOOR <= cold_evals
    assert totals["store_fallbacks"] == 0
