"""The serving tiers' speedup: warm answers versus cold solves.

One in-process :class:`AnalysisService` takes the same corpus of
programs three ways — a cold first submission (full pipeline), a cache
repeat (memory LRU hit), and a store repeat from a freshly restarted
daemon (disk tier) — and the warm tiers must answer at least 5x faster
than the cold solves. That is the daemon's reason to exist: dedup'd and
repeated work must cost response-lookup time, not pipeline time.

Under ``--bench-check`` the recorded work counters gate as usual:
``evaluations`` (the cold solves' jump-function work) at the 10%
tolerance, and ``degradations``/``failures`` at zero — a healthy
service serving a healthy corpus neither degrades nor fails.
"""

import time

from repro.service import AnalysisService
from repro.store.artifacts import ArtifactStore

from repro.workloads import load

PROGRAMS = ("trfd", "mdg", "adm")
SPEEDUP_FLOOR = 5


def run_tiers(store_path: str):
    sources = {name: load(name).source for name in PROGRAMS}
    totals = {
        "evaluations": 0,
        "degradations": 0,
        "failures": 0,
        "cold_ms": 0.0,
        "cache_ms": 0.0,
        "store_ms": 0.0,
    }
    rows = []

    store = ArtifactStore(store_path)
    service = AnalysisService(store=store)
    cold_responses = {}
    for name, source in sources.items():
        start = time.perf_counter()
        response = service.handle(
            {"id": f"cold-{name}", "source": source, "stats": True}
        )
        cold_ms = (time.perf_counter() - start) * 1000.0
        assert response["status"] == "ok", response
        assert response["served"] == "cold"
        totals["cold_ms"] += cold_ms
        totals["degradations"] += len(response["degradations"])
        totals["evaluations"] += response["stats"]["solver_counters"].get(
            "evaluations", 0
        )
        cold_responses[name] = (response, cold_ms)

    for name, source in sources.items():
        start = time.perf_counter()
        repeat = service.handle({"id": f"warm-{name}", "source": source})
        cache_ms = (time.perf_counter() - start) * 1000.0
        assert repeat["served"] == "cache"
        assert repeat["result"] == cold_responses[name][0]["result"]
        totals["cache_ms"] += cache_ms

        # a restarted daemon on the same store: the disk tier answers
        reborn = AnalysisService(store=ArtifactStore(store_path))
        start = time.perf_counter()
        disk = reborn.handle({"id": f"store-{name}", "source": source})
        store_ms = (time.perf_counter() - start) * 1000.0
        assert disk["served"] == "store"
        assert disk["result"] == cold_responses[name][0]["result"]
        totals["store_ms"] += store_ms

        rows.append(
            f"{name:<10} cold {cold_responses[name][1]:>8.2f} ms  "
            f"cache {cache_ms:>7.3f} ms  store {store_ms:>7.3f} ms"
        )

    failed = service.stats()["served"]["errors"]
    totals["failures"] += failed
    return totals, rows


def test_warm_tiers_beat_cold_solves(
    benchmark, reporter, bench_counters, tmp_path
):
    totals, rows = benchmark.pedantic(
        run_tiers, args=(str(tmp_path / "store"),), rounds=1, iterations=1
    )
    cache_speedup = totals["cold_ms"] / max(totals["cache_ms"], 1e-9)
    store_speedup = totals["cold_ms"] / max(totals["store_ms"], 1e-9)
    bench_counters.update(
        {
            "evaluations": totals["evaluations"],
            "degradations": totals["degradations"],
            "failures": totals["failures"],
        }
    )
    reporter(
        "Service tiers: cold solve vs cache vs store (per program)",
        "\n".join(
            rows
            + [
                "",
                f"total cold {totals['cold_ms']:.2f} ms, "
                f"cache {totals['cache_ms']:.3f} ms "
                f"({cache_speedup:.0f}x), "
                f"store {totals['store_ms']:.3f} ms "
                f"({store_speedup:.0f}x); floor {SPEEDUP_FLOOR}x",
            ]
        ),
    )
    # the ISSUE acceptance gate: warm dedup'd answers >=5x faster than
    # cold, on both the memory and the disk tier, with zero failures
    assert totals["cache_ms"] * SPEEDUP_FLOOR <= totals["cold_ms"]
    assert totals["store_ms"] * SPEEDUP_FLOOR <= totals["cold_ms"]
    assert totals["degradations"] == 0
    assert totals["failures"] == 0
