"""Shared benchmark configuration.

Every benchmark prints the regenerated table/figure to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them live; without
``-s`` pytest shows captured output per test at the end with ``-rA``).
The heavyweight table sweeps run ``pedantic`` with one round — the
interesting output is the table, the timing is a bonus.

Every run also persists machine-readable results: per-benchmark
wall-clock and whatever counters each test reported through the
``bench_counters`` fixture land in ``BENCH_results.json`` at the repo
root, so successive commits can be diffed without re-reading pytest
output.

``--bench-check`` turns the committed ``BENCH_results.json`` into a
regression gate: each benchmark's *work counters* (``evaluations`` and
``meets`` — deterministic, unlike wall-clock) are compared against the
committed baseline and the run fails if any grew more than 10%. The
resilience counters (``degradations`` and ``failures``) are gated at
zero tolerance — the seed corpus must sweep clean, so any nonzero value
is a regression regardless of baseline. In check mode the results file
is left untouched, so the baseline survives the comparison it anchors.

Partial runs (a single benchmark file, ``-k`` selections) merge into the
committed results by nodeid instead of replacing the whole file, so
regenerating one baseline entry never erases the others. The merge also
prunes: a baseline entry whose *file* was collected this session but
whose exact nodeid no longer exists (the benchmark was renamed or
deleted) is dropped instead of lingering forever. Files that were not
collected at all keep their entries untouched.
"""

import json
import platform
import time

import pytest

RESULTS_FILENAME = "BENCH_results.json"

#: counters gated by --bench-check: deterministic work measures only.
REGRESSION_KEYS = ("evaluations", "meets")
REGRESSION_TOLERANCE = 0.10

#: counters that must be exactly zero on the seed corpus: a healthy
#: sweep neither degrades nor fails, and a healthy artifact store never
#: forces a cold fallback, so there is no tolerance to give.
ZERO_KEYS = ("degradations", "failures", "store_fallbacks")

#: test nodeid -> record written to BENCH_results.json.
_records: dict[str, dict] = {}

#: every nodeid (and its file) collected this session, *before* any
#: ``-k`` deselection — the pruning scope of the sessionfinish merge.
_collected_nodeids: set[str] = set()
_collected_files: set[str] = set()


def pytest_itemcollected(item):
    _collected_nodeids.add(item.nodeid)
    _collected_files.add(item.nodeid.split("::", 1)[0])


def pytest_addoption(parser):
    parser.addoption(
        "--bench-check",
        action="store_true",
        default=False,
        help=(
            "fail any benchmark whose evaluations/meets counters regressed "
            f">{REGRESSION_TOLERANCE:.0%} against the committed "
            f"{RESULTS_FILENAME} baseline (the file is not rewritten)"
        ),
    )


def _baseline_counters(config) -> dict[str, dict]:
    path = config.rootpath / RESULTS_FILENAME
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    return {
        entry["nodeid"]: entry.get("counters", {})
        for entry in payload.get("benchmarks", [])
    }


def emit(title: str, body: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)


@pytest.fixture
def reporter():
    return emit


@pytest.fixture
def bench_counters(request):
    """A dict a benchmark can fill with counters (solver pops/passes,
    cache hits, …); the contents are persisted next to the test's
    wall-clock in ``BENCH_results.json``. Under ``--bench-check`` they
    are instead diffed against the committed baseline."""
    counters: dict[str, float] = {}
    yield counters
    if not counters:
        return
    record = _records.setdefault(request.node.nodeid, {})
    record["counters"] = {key: value for key, value in counters.items()}
    if not request.config.getoption("bench_check"):
        return
    regressions = [
        f"{key}: expected 0, got {counters[key]} (zero tolerance)"
        for key in ZERO_KEYS
        if counters.get(key)
    ]
    baseline = _baseline_counters(request.config).get(request.node.nodeid)
    if not baseline and not regressions:
        return  # new benchmark: nothing committed to regress against
    baseline = baseline or {}
    for key in REGRESSION_KEYS:
        old = baseline.get(key)
        new = counters.get(key)
        if not old or new is None:
            continue
        if new > old * (1 + REGRESSION_TOLERANCE):
            regressions.append(
                f"{key}: {old} -> {new} "
                f"(+{(new / old - 1):.1%}, tolerance "
                f"{REGRESSION_TOLERANCE:.0%})"
            )
    if regressions:
        pytest.fail(
            f"work-counter regression vs committed {RESULTS_FILENAME} for "
            f"{request.node.nodeid}: " + "; ".join(regressions)
        )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    record = _records.setdefault(item.nodeid, {})
    record["outcome"] = report.outcome
    record["wall_seconds"] = round(report.duration, 6)


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    if session.config.getoption("bench_check"):
        _records.clear()  # check mode never rewrites its own baseline
        return
    # merge by nodeid: a partial run refreshes only the entries it
    # actually executed, leaving the rest of the committed baseline alone
    path = session.config.rootpath / RESULTS_FILENAME
    merged: dict[str, dict] = {}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except json.JSONDecodeError:
            previous = {}
        for entry in previous.get("benchmarks", []):
            entry = dict(entry)
            nodeid = entry.pop("nodeid")
            # prune stale baselines: the entry's file was collected this
            # session, yet the nodeid itself no longer exists
            file_part = nodeid.split("::", 1)[0]
            if file_part in _collected_files and nodeid not in _collected_nodeids:
                continue
            merged[nodeid] = entry
    merged.update(_records)
    payload = {
        "schema": 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exitstatus": int(exitstatus),
        "benchmarks": [
            {"nodeid": nodeid, **record}
            for nodeid, record in sorted(merged.items())
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    _records.clear()
