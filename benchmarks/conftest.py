"""Shared benchmark configuration.

Every benchmark prints the regenerated table/figure to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them live; without
``-s`` pytest shows captured output per test at the end with ``-rA``).
The heavyweight table sweeps run ``pedantic`` with one round — the
interesting output is the table, the timing is a bonus.
"""

import pytest


def emit(title: str, body: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)


@pytest.fixture
def reporter():
    return emit
