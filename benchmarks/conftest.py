"""Shared benchmark configuration.

Every benchmark prints the regenerated table/figure to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them live; without
``-s`` pytest shows captured output per test at the end with ``-rA``).
The heavyweight table sweeps run ``pedantic`` with one round — the
interesting output is the table, the timing is a bonus.

Every run also persists machine-readable results: per-benchmark
wall-clock and whatever counters each test reported through the
``bench_counters`` fixture land in ``BENCH_results.json`` at the repo
root, so successive commits can be diffed without re-reading pytest
output.
"""

import json
import platform
import time

import pytest

RESULTS_FILENAME = "BENCH_results.json"

#: test nodeid -> record written to BENCH_results.json.
_records: dict[str, dict] = {}


def emit(title: str, body: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(body)


@pytest.fixture
def reporter():
    return emit


@pytest.fixture
def bench_counters(request):
    """A dict a benchmark can fill with counters (solver pops/passes,
    cache hits, …); the contents are persisted next to the test's
    wall-clock in ``BENCH_results.json``."""
    counters: dict[str, float] = {}
    yield counters
    if counters:
        record = _records.setdefault(request.node.nodeid, {})
        record["counters"] = {key: value for key, value in counters.items()}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    record = _records.setdefault(item.nodeid, {})
    record["outcome"] = report.outcome
    record["wall_seconds"] = round(report.duration, 6)


def pytest_sessionfinish(session, exitstatus):
    if not _records:
        return
    payload = {
        "schema": 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exitstatus": int(exitstatus),
        "benchmarks": [
            {"nodeid": nodeid, **record}
            for nodeid, record in sorted(_records.items())
        ],
    }
    path = session.config.rootpath / RESULTS_FILENAME
    path.write_text(json.dumps(payload, indent=2) + "\n")
    _records.clear()
