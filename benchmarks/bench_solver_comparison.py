"""§2's 'alternative formulations': worklist vs. binding-graph solver.

Both compute the same fixpoint (cross-checked exactly in the test suite);
this bench measures the trade — per-procedure worklist re-evaluates whole
call sites, the binding graph re-evaluates individual jump functions along
dependency edges."""

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.workloads import load, suite_names


@pytest.fixture(scope="module")
def prepared():
    """Stage 1+2 artifacts for the whole suite, built once."""
    config = AnalysisConfig()
    bundle = []
    for name in suite_names():
        lowered = lower_program(parse_program(load(name).source))
        ensure_global_symbols(lowered)
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        returns = build_return_jump_functions(lowered, graph, modref, config)
        forward = build_forward_jump_functions(lowered, modref, returns, config)
        bundle.append((lowered, graph, forward))
    return bundle


def _sum_counters(results) -> dict[str, int]:
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result.counters().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def test_worklist_solver(benchmark, prepared, bench_counters):
    def run():
        return [solve(lowered, graph, forward)
                for lowered, graph, forward in prepared]

    results = benchmark(run)
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))


def test_binding_graph_solver(benchmark, prepared, reporter, bench_counters):
    def run():
        return [solve_binding_graph(lowered, graph, forward)
                for lowered, graph, forward in prepared]

    results = benchmark(run)
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))

    worklist_results = [
        solve(lowered, graph, forward) for lowered, graph, forward in prepared
    ]
    lines = [
        f"{'program':<12} {'worklist evals':>15} {'binding evals':>14}",
        "-" * 43,
    ]
    for (lowered, _, _), wl, bg in zip(prepared, worklist_results, results):
        lines.append(
            f"{lowered.program.main:<12} {wl.evaluations:>15} "
            f"{bg.evaluations:>14}"
        )
        assert wl.val == bg.val  # exact agreement, again
    reporter("Solver comparison (§2 alternative formulations)", "\n".join(lines))
