"""§2's 'alternative formulations': sparse worklist, dense reference, and
binding-graph solver.

All three compute the same fixpoint (cross-checked exactly in the test
suite and re-asserted here); this bench measures the trades — the dense
per-procedure worklist re-evaluates whole call sites, the sparse engine
evaluates only jump functions whose support lowered (with build-time
constant hoisting and an identity-keyed memo), and the binding graph
re-evaluates individual jump functions along dependency edges."""

import time

import pytest

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph import build_call_graph, compute_modref
from repro.core.binding_solver import solve_binding_graph
from repro.core.builder import build_forward_jump_functions
from repro.core.config import AnalysisConfig
from repro.core.returns import build_return_jump_functions
from repro.core.solver import solve, solve_dense
from repro.frontend.symbols import parse_program
from repro.ir import lower_program
from repro.workloads import load, suite_names

#: sparse must cut solve-time jump-function evaluations at least this much.
MIN_EVALUATION_REDUCTION = 0.30


@pytest.fixture(scope="module")
def prepared():
    """Stage 1+2 artifacts for the whole suite, built once."""
    config = AnalysisConfig()
    bundle = []
    for name in suite_names():
        lowered = lower_program(parse_program(load(name).source))
        ensure_global_symbols(lowered)
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        returns = build_return_jump_functions(lowered, graph, modref, config)
        forward = build_forward_jump_functions(lowered, modref, returns, config)
        bundle.append((lowered, graph, forward))
    return bundle


def _sum_counters(results) -> dict[str, int]:
    totals: dict[str, int] = {}
    for result in results:
        for key, value in result.counters().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _solve_all(solver, prepared):
    return [solver(lowered, graph, forward)
            for lowered, graph, forward in prepared]


def _interleaved_best(solvers, prepared, repeats=7) -> list[float]:
    """Best-of-N wall-clock per solver, rounds interleaved so ambient
    machine noise hits every solver alike."""
    best = [float("inf")] * len(solvers)
    for _ in range(repeats):
        for index, solver in enumerate(solvers):
            start = time.perf_counter()
            _solve_all(solver, prepared)
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def test_worklist_solver(benchmark, prepared, bench_counters):
    """The sparse delta-driven solver (the default ``solve``)."""
    results = benchmark(lambda: _solve_all(solve, prepared))
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))


def test_dense_reference_solver(benchmark, prepared, bench_counters):
    """The dense re-evaluate-everything reference the engine is judged
    against."""
    results = benchmark(lambda: _solve_all(solve_dense, prepared))
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))


def test_sparse_vs_dense_cost(prepared, reporter, bench_counters):
    """The tentpole claims, asserted: identical VAL/CONSTANTS, ≥30% fewer
    evaluations, and sparse wall-clock no worse than dense."""
    dense_results = _solve_all(solve_dense, prepared)
    sparse_results = _solve_all(solve, prepared)

    lines = [
        f"{'program':<12} {'dense evals':>12} {'sparse evals':>13} {'saved':>7}",
        "-" * 48,
    ]
    for (lowered, _, _), dense, sparse in zip(
        prepared, dense_results, sparse_results
    ):
        assert dense.val == sparse.val  # bit-identical VAL
        assert dense.all_constants() == sparse.all_constants()
        saved = 1 - sparse.evaluations / max(dense.evaluations, 1)
        lines.append(
            f"{lowered.program.main:<12} {dense.evaluations:>12} "
            f"{sparse.evaluations:>13} {saved:>6.0%}"
        )

    dense_evals = sum(r.evaluations for r in dense_results)
    sparse_evals = sum(r.evaluations for r in sparse_results)
    reduction = 1 - sparse_evals / dense_evals
    dense_secs, sparse_secs = _interleaved_best((solve_dense, solve), prepared)
    lines.append("-" * 48)
    lines.append(
        f"{'total':<12} {dense_evals:>12} {sparse_evals:>13} {reduction:>6.0%}"
    )
    lines.append(
        f"wall-clock (best of 7): dense {dense_secs * 1000:.2f} ms, "
        f"sparse {sparse_secs * 1000:.2f} ms"
    )
    reporter("Sparse vs dense solver cost", "\n".join(lines))
    bench_counters.update(
        {
            "dense_evaluations": dense_evals,
            "sparse_evaluations": sparse_evals,
            "reduction_pct": round(reduction * 100, 1),
        }
    )

    assert reduction >= MIN_EVALUATION_REDUCTION
    # allow a whisker of timer noise over "no worse than dense"
    assert sparse_secs <= dense_secs * 1.05


def test_binding_graph_solver(benchmark, prepared, reporter, bench_counters):
    results = benchmark(lambda: _solve_all(solve_binding_graph, prepared))
    assert all(r.reached for r in results)
    bench_counters.update(_sum_counters(results))

    worklist_results = _solve_all(solve, prepared)
    lines = [
        f"{'program':<12} {'worklist evals':>15} {'binding evals':>14}",
        "-" * 43,
    ]
    for (lowered, _, _), wl, bg in zip(prepared, worklist_results, results):
        lines.append(
            f"{lowered.program.main:<12} {wl.evaluations:>15} "
            f"{bg.evaluations:>14}"
        )
        assert wl.val == bg.val  # exact agreement, again
    reporter("Solver comparison (§2 alternative formulations)", "\n".join(lines))
