"""Table 1: characteristics of the program test suite.

Benchmarks the front end (lex + parse + resolve) over the whole generated
suite and prints the regenerated table."""

from repro.frontend.symbols import parse_program
from repro.reporting import format_table1, run_table1
from repro.workloads import load_suite


def test_table1_characteristics(benchmark, reporter):
    suite = load_suite()

    def parse_all():
        return [parse_program(w.source) for w in suite.values()]

    programs = benchmark(parse_all)
    assert len(programs) == 12
    reporter("Table 1 (program characteristics)", format_table1(run_table1()))
