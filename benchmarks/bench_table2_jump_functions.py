"""Table 2: constants found through use of jump functions.

Runs all six Table 2 configurations (four forward jump functions with
return jump functions, plus polynomial/pass-through without) over the
full-scale suite, prints the regenerated table, and asserts the paper's
column orderings."""

from repro import GLOBAL_STAGE0_CACHE
from repro.reporting import format_table2, run_table2


def test_table2_jump_functions(benchmark, reporter, bench_counters):
    before = GLOBAL_STAGE0_CACHE.counters()
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    after = GLOBAL_STAGE0_CACHE.counters()
    bench_counters.update(
        {key: after[key] - before[key]
         for key in ("stage0_cache_hits", "stage0_cache_misses")}
    )
    reporter("Table 2 (constants found per jump function)", format_table2(rows))
    for row in rows:
        assert row.literal <= row.intraprocedural
        assert row.intraprocedural <= row.pass_through
        assert row.pass_through == row.polynomial  # the paper's headline
        assert row.polynomial_no_rjf <= row.polynomial
        assert row.pass_through_no_rjf <= row.pass_through
    ocean = next(row for row in rows if row.program == "ocean")
    assert ocean.polynomial >= 2 * ocean.polynomial_no_rjf
