"""Basic blocks and the control-flow graph.

Blocks are identified by small integers; branch instructions name their
targets by block id, so blocks can be created before their contents are
known (needed for forward GOTOs). Successors are derived from the block's
terminator; predecessors are recomputed on demand via :meth:`refresh`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import CJump, Instr, Jump, Phi, Return, Stop


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    id: int
    instrs: list[Instr] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> list[int]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, CJump):
            if term.if_true == term.if_false:
                return [term.if_true]
            return [term.if_true, term.if_false]
        return []  # Return, Stop, or unterminated

    def phis(self) -> list[Phi]:
        found = []
        for instr in self.instrs:
            if isinstance(instr, Phi):
                found.append(instr)
            else:
                break
        return found

    def non_phi_instrs(self) -> list[Instr]:
        return self.instrs[len(self.phis()) :]

    def append(self, instr: Instr) -> None:
        assert not self.is_terminated, f"appending past terminator in block {self.id}"
        self.instrs.append(instr)

    def __repr__(self) -> str:
        return f"BasicBlock(B{self.id}, {len(self.instrs)} instrs)"


class ControlFlowGraph:
    """The CFG of one procedure.

    ``entry`` receives control on procedure entry; ``exit`` contains the
    single :class:`Return`. Lowering routes every source ``return`` through
    a jump to ``exit`` so SSA merges exit values with phis — exactly what
    return-jump-function construction needs. ``stop`` paths fall out of the
    graph (no successors), so values on never-returning paths do not pollute
    return jump functions.
    """

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.entry_id: int = -1
        self.exit_id: int = -1
        self._next_id = 0

    # -- construction -------------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_id)
        self.blocks[self._next_id] = block
        self._next_id += 1
        return block

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    # -- derived structure ---------------------------------------------------

    def refresh(self) -> None:
        """Recompute predecessor lists from terminators."""
        for block in self.blocks.values():
            block.preds = []
        for block in self.blocks.values():
            for succ_id in block.successors():
                succ = self.blocks[succ_id]
                if block.id not in succ.preds:
                    succ.preds.append(block.id)

    def reachable_ids(self) -> set[int]:
        """Block ids reachable from entry."""
        seen: set[int] = set()
        stack = [self.entry_id]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(self.blocks[block_id].successors())
        return seen

    def reverse_postorder(self) -> list[int]:
        """Reachable block ids in reverse postorder (forward dataflow order)."""
        order: list[int] = []
        seen: set[int] = set()

        def visit(block_id: int) -> None:
            # Iterative DFS to avoid recursion limits on long chains.
            stack: list[tuple[int, int]] = [(block_id, 0)]
            while stack:
                current, child_index = stack.pop()
                if child_index == 0:
                    if current in seen:
                        continue
                    seen.add(current)
                succs = self.blocks[current].successors()
                if child_index < len(succs):
                    stack.append((current, child_index + 1))
                    child = succs[child_index]
                    if child not in seen:
                        stack.append((child, 0))
                else:
                    order.append(current)

        visit(self.entry_id)
        return list(reversed(order))

    def remove_unreachable(self) -> list[int]:
        """Drop unreachable blocks (except exit); returns removed ids."""
        keep = self.reachable_ids()
        keep.add(self.exit_id)
        removed = [bid for bid in self.blocks if bid not in keep]
        for block_id in removed:
            del self.blocks[block_id]
        # Phi inputs from removed blocks are stale; prune them.
        removed_set = set(removed)
        for block in self.blocks.values():
            for phi in block.phis():
                phi.incoming = {
                    b: v for b, v in phi.incoming.items() if b not in removed_set
                }
        self.refresh()
        return removed

    def instructions(self):
        """Yield (block, instr) over all blocks in id order."""
        for block_id in sorted(self.blocks):
            for instr in self.blocks[block_id].instrs:
                yield self.blocks[block_id], instr

    def __len__(self) -> int:
        return len(self.blocks)


def build_cfg_index(cfg: ControlFlowGraph) -> dict[int, BasicBlock]:
    """Convenience: id -> block mapping (a copy; safe to mutate)."""
    return dict(cfg.blocks)
