"""Human-readable IR listings (debugging and golden tests)."""

from __future__ import annotations

from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    BinOp,
    Call,
    CallKill,
    CJump,
    Convert,
    Copy,
    Instr,
    IntrinsicOp,
    Jump,
    LoadArr,
    Phi,
    ReadArr,
    ReadVar,
    Return,
    Stop,
    StoreArr,
    UnOp,
    WriteOut,
)


def format_instr(instr: Instr) -> str:
    if isinstance(instr, BinOp):
        return f"{instr.dest} = {instr.left} {instr.op} {instr.right}"
    if isinstance(instr, UnOp):
        return f"{instr.dest} = {instr.op} {instr.operand}"
    if isinstance(instr, Convert):
        return f"{instr.dest} = ({instr.to_type.value}) {instr.operand}"
    if isinstance(instr, IntrinsicOp):
        args = ", ".join(str(a) for a in instr.args)
        return f"{instr.dest} = {instr.name}({args})"
    if isinstance(instr, Copy):
        return f"{instr.dest} = {instr.src}"
    if isinstance(instr, LoadArr):
        indices = ", ".join(str(i) for i in instr.indices)
        return f"{instr.dest} = {instr.array.name}({indices})"
    if isinstance(instr, StoreArr):
        indices = ", ".join(str(i) for i in instr.indices)
        return f"{instr.array.name}({indices}) = {instr.src}"
    if isinstance(instr, Call):
        args = ", ".join(str(a) for a in instr.args)
        prefix = f"{instr.dest} = " if instr.dest is not None else ""
        return f"{prefix}call {instr.callee}({args})  [site {instr.site_id}]"
    if isinstance(instr, CallKill):
        kind, payload = instr.binding
        return f"{instr.target} = callkill[{kind} {payload}] of site {instr.call.site_id}"
    if isinstance(instr, ReadVar):
        return f"read {instr.target}"
    if isinstance(instr, ReadArr):
        indices = ", ".join(str(i) for i in instr.indices)
        return f"read {instr.array.name}({indices})"
    if isinstance(instr, WriteOut):
        values = ", ".join(str(v) for v in instr.values)
        return f"write {values}"
    if isinstance(instr, Phi):
        inputs = ", ".join(f"B{b}: {v}" for b, v in sorted(instr.incoming.items()))
        return f"{instr.dest} = phi({inputs})"
    if isinstance(instr, Jump):
        return f"jump B{instr.target}"
    if isinstance(instr, CJump):
        return f"if {instr.cond} then B{instr.if_true} else B{instr.if_false}"
    if isinstance(instr, Return):
        return "return"
    if isinstance(instr, Stop):
        return "stop"
    return repr(instr)


def format_cfg(cfg: ControlFlowGraph, name: str = "") -> str:
    lines = []
    if name:
        lines.append(f"procedure {name} (entry B{cfg.entry_id}, exit B{cfg.exit_id})")
    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        preds = ", ".join(f"B{p}" for p in sorted(block.preds))
        lines.append(f"B{block_id}:" + (f"  ; preds: {preds}" if preds else ""))
        for instr in block.instrs:
            lines.append(f"  {format_instr(instr)}")
    return "\n".join(lines)


def format_program(lowered) -> str:
    """Format a :class:`LoweredProgram` as one listing."""
    chunks = []
    for name in sorted(lowered.procedures):
        chunks.append(format_cfg(lowered.procedures[name].cfg, name))
    return "\n\n".join(chunks)
