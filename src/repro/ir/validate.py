"""IR well-formedness checking.

Invariants every CFG must satisfy, at two strictness levels:

- pre-SSA (``ssa_form=False``): no phis, no CallKills, no SSA names;
- SSA (``ssa_form=True``): phis only at block heads, one incoming value
  per predecessor, versioned definitions unique.

Shared invariants: every block ends in exactly one terminator (and has no
terminator mid-block), branch targets exist, predecessor lists match
successor edges, temporaries are single-assignment, and variable-use spans
really cover the variable's name in the source text (when provided).

The test suite validates the IR after lowering, after SSA construction,
and after every dead-code-elimination round — cheap insurance against the
classic compiler-bug pattern of a pass leaving the graph subtly broken.
"""

from __future__ import annotations

from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    Call,
    CallKill,
    Phi,
    Return,
    SSAName,
    Temp,
    VarDef,
    VarUse,
)


class IRValidationError(AssertionError):
    """An IR invariant does not hold."""


def validate_cfg(
    cfg: ControlFlowGraph,
    ssa_form: bool = False,
    source: str | None = None,
) -> None:
    """Raise :class:`IRValidationError` on the first violated invariant."""
    problems = collect_problems(cfg, ssa_form=ssa_form, source=source)
    if problems:
        raise IRValidationError("; ".join(problems))


def collect_problems(
    cfg: ControlFlowGraph,
    ssa_form: bool = False,
    source: str | None = None,
) -> list[str]:
    """All violated invariants (empty list = well-formed)."""
    problems: list[str] = []

    if cfg.entry_id not in cfg.blocks:
        problems.append(f"entry block B{cfg.entry_id} missing")
    if cfg.exit_id not in cfg.blocks:
        problems.append(f"exit block B{cfg.exit_id} missing")
    elif not isinstance(cfg.blocks[cfg.exit_id].terminator, Return):
        problems.append("exit block does not end in Return")

    temp_defs: dict[Temp, int] = {}
    ssa_defs: dict[tuple, int] = {}

    for block_id, block in cfg.blocks.items():
        # terminator discipline
        for position, instr in enumerate(block.instrs):
            is_last = position == len(block.instrs) - 1
            if instr.is_terminator and not is_last:
                problems.append(f"B{block_id}: terminator mid-block")
            if is_last and not instr.is_terminator:
                problems.append(f"B{block_id}: not terminated")
        if not block.instrs:
            problems.append(f"B{block_id}: empty block")

        # targets exist
        for succ in block.successors():
            if succ not in cfg.blocks:
                problems.append(f"B{block_id}: branch to missing B{succ}")

        # phi placement
        seen_non_phi = False
        for instr in block.instrs:
            if isinstance(instr, Phi):
                if not ssa_form:
                    problems.append(f"B{block_id}: phi in pre-SSA form")
                if seen_non_phi:
                    problems.append(f"B{block_id}: phi after non-phi")
            else:
                seen_non_phi = True
            if isinstance(instr, CallKill) and not ssa_form:
                problems.append(f"B{block_id}: CallKill in pre-SSA form")

        # definitions and uses
        for instr in block.instrs:
            dest = instr.dest
            if isinstance(dest, Temp):
                if dest in temp_defs:
                    problems.append(
                        f"B{block_id}: temp {dest} defined twice "
                        f"(also in B{temp_defs[dest]})"
                    )
                temp_defs[dest] = block_id
            elif isinstance(dest, VarDef):
                if ssa_form:
                    if dest.version is None:
                        problems.append(
                            f"B{block_id}: unversioned def of "
                            f"{dest.symbol.name} in SSA form"
                        )
                    else:
                        key = (dest.symbol, dest.version)
                        if key in ssa_defs:
                            problems.append(
                                f"B{block_id}: {dest} defined twice"
                            )
                        ssa_defs[key] = block_id
                elif dest.version is not None:
                    problems.append(
                        f"B{block_id}: versioned def in pre-SSA form"
                    )
            for operand in instr.uses():
                if isinstance(operand, SSAName) and not ssa_form:
                    problems.append(f"B{block_id}: SSA name in pre-SSA form")
                if isinstance(operand, VarUse) and ssa_form:
                    if operand.symbol in {s for s, _ in ssa_defs}:
                        problems.append(
                            f"B{block_id}: unrenamed use of "
                            f"{operand.symbol.name}"
                        )
                if source is not None:
                    _check_span(operand, source, block_id, problems)
            if source is not None and isinstance(instr, Call):
                # Call.uses() yields the argument *value* operands; the
                # Argument records carry their own spans (covering the
                # whole actual, e.g. ``a(i)``) and need checking too —
                # whole-array actuals have no value operand at all.
                for arg in instr.args:
                    _check_span(arg, source, block_id, problems)

    # predecessor consistency
    expected_preds: dict[int, set[int]] = {bid: set() for bid in cfg.blocks}
    for block_id, block in cfg.blocks.items():
        for succ in block.successors():
            if succ in expected_preds:
                expected_preds[succ].add(block_id)
    for block_id, block in cfg.blocks.items():
        if set(block.preds) != expected_preds[block_id]:
            problems.append(
                f"B{block_id}: preds {sorted(block.preds)} != edges "
                f"{sorted(expected_preds[block_id])}"
            )

    # phi inputs match predecessors
    if ssa_form:
        for block_id, block in cfg.blocks.items():
            for phi in block.phis():
                if set(phi.incoming) != set(block.preds):
                    problems.append(
                        f"B{block_id}: phi inputs {sorted(phi.incoming)} != "
                        f"preds {sorted(block.preds)}"
                    )

    return problems


def _check_span(operand, source: str, block_id: int, problems: list[str]) -> None:
    if isinstance(operand, Argument):
        if operand.symbol is None:
            return  # by-value expression: no name to cover
        span = operand.span
        if span.start.offset == span.end.offset:
            return  # synthesized argument
        text = span.extract(source).lower()
        name = operand.symbol.name
        if operand.kind is ArgumentKind.ARRAY_ELEMENT:
            # the span covers the whole actual, ``name(indices)``
            if not text.startswith(name):
                problems.append(
                    f"B{block_id}: span of argument {name} covers {text!r}"
                )
        elif text != name:
            problems.append(
                f"B{block_id}: span of argument {name} covers {text!r}"
            )
        return
    if not isinstance(operand, (VarUse, SSAName)):
        return
    span = operand.span
    if span.start.offset == span.end.offset:
        return  # synthesized use
    text = span.extract(source).lower()
    if text != operand.symbol.name:
        problems.append(
            f"B{block_id}: span of {operand.symbol.name} covers {text!r}"
        )


def validate_program(lowered, ssa_form: bool = False) -> None:
    """Validate every procedure of a lowered program."""
    source = lowered.program.source or None
    for name, lowered_proc in lowered.procedures.items():
        try:
            validate_cfg(lowered_proc.cfg, ssa_form=ssa_form, source=source)
        except IRValidationError as error:
            raise IRValidationError(f"{name}: {error}") from None
