"""Three-address intermediate representation and control-flow graphs.

The IR is the substrate on which SSA construction, value numbering, SCCP,
and dead-code elimination operate. Every use of a named variable carries
its source span so the substitution stage can splice constants back into
the original program text.
"""

from repro.ir.cfg import BasicBlock, ControlFlowGraph, build_cfg_index
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    BinOp,
    Call,
    CallKill,
    CJump,
    Const,
    Convert,
    Copy,
    Instr,
    IntrinsicOp,
    Jump,
    LoadArr,
    Operand,
    Phi,
    ReadArr,
    ReadVar,
    Return,
    SSAName,
    Stop,
    StoreArr,
    Temp,
    UnOp,
    VarDef,
    VarUse,
    WriteOut,
)
from repro.ir.lower import LoweredProcedure, LoweredProgram, lower_procedure, lower_program
from repro.ir.printer import format_cfg, format_instr, format_program

__all__ = [
    "Argument",
    "ArgumentKind",
    "BasicBlock",
    "BinOp",
    "CJump",
    "Call",
    "CallKill",
    "Const",
    "ControlFlowGraph",
    "Convert",
    "Copy",
    "Instr",
    "IntrinsicOp",
    "Jump",
    "LoadArr",
    "LoweredProcedure",
    "LoweredProgram",
    "Operand",
    "Phi",
    "ReadArr",
    "ReadVar",
    "Return",
    "SSAName",
    "Stop",
    "StoreArr",
    "Temp",
    "UnOp",
    "VarDef",
    "VarUse",
    "WriteOut",
    "build_cfg_index",
    "format_cfg",
    "format_instr",
    "format_program",
    "lower_procedure",
    "lower_program",
]
