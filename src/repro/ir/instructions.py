"""IR operands and instructions.

Operand kinds
-------------
- :class:`Const` — an integer, real, or logical literal.
- :class:`Temp` — a compiler temporary. Lowering assigns each temp exactly
  once, so temps are already in SSA form and never need phis.
- :class:`VarUse` — a use of a named variable (local, formal, or global),
  carrying the source span of the reference.
- :class:`SSAName` — a versioned variable after SSA renaming.

Instructions define at most one scalar destination (``dest``), which is a
:class:`Temp` before and after SSA, or a :class:`VarDef` / versioned
:class:`VarDef` for named variables. Array stores and reads are modelled
separately because the analysis never tracks array element values (paper
§4, limitation 2).

Calls are a single :class:`Call` instruction covering both ``call sub(...)``
statements and function calls in expressions (``dest`` is None for
subroutines). Each argument records *how* it is bound — plain value,
writable scalar variable, array element, or whole array — because FORTRAN's
call-by-reference rules drive both MOD analysis and return-jump-function
application.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.astnodes import Type
from repro.frontend.source import DUMMY_SPAN, SourceSpan
from repro.frontend.symbols import Symbol

# --------------------------------------------------------------------------
# Operands
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Const:
    """A literal. ``type`` distinguishes 1 (INTEGER) from .true. (LOGICAL)."""

    value: int | float | bool
    type: Type

    def __str__(self) -> str:
        if self.type is Type.LOGICAL:
            return ".true." if self.value else ".false."
        return str(self.value)


def int_const(value: int) -> Const:
    return Const(value, Type.INTEGER)


def real_const(value: float) -> Const:
    return Const(value, Type.REAL)


def bool_const(value: bool) -> Const:
    return Const(value, Type.LOGICAL)


@dataclass(frozen=True, slots=True)
class Temp:
    """A single-assignment compiler temporary."""

    index: int
    type: Type = Type.INTEGER

    def __str__(self) -> str:
        return f"t{self.index}"


@dataclass(frozen=True, slots=True)
class VarUse:
    """A use of a named variable; ``span`` points at the source reference."""

    symbol: Symbol
    span: SourceSpan = DUMMY_SPAN

    def __str__(self) -> str:
        return self.symbol.name


@dataclass(frozen=True, slots=True)
class SSAName:
    """A versioned named variable, produced by SSA renaming.

    ``span`` is preserved from the :class:`VarUse` it replaced so constant
    substitution can still reach the source text.
    """

    symbol: Symbol
    version: int
    span: SourceSpan = DUMMY_SPAN

    def __str__(self) -> str:
        return f"{self.symbol.name}.{self.version}"


Operand = Const | Temp | VarUse | SSAName


@dataclass(frozen=True, slots=True)
class VarDef:
    """A definition point of a named variable (pre-SSA destination)."""

    symbol: Symbol
    span: SourceSpan = DUMMY_SPAN
    version: int | None = None  # filled in by SSA renaming

    def __str__(self) -> str:
        if self.version is None:
            return self.symbol.name
        return f"{self.symbol.name}.{self.version}"


Dest = Temp | VarDef


# --------------------------------------------------------------------------
# Call arguments
# --------------------------------------------------------------------------


class ArgumentKind(enum.Enum):
    VALUE = "value"  # expression or literal: callee writes are lost
    VAR = "var"  # scalar variable: writable by reference
    ARRAY_ELEMENT = "array_element"  # a(i): writes modify the array
    ARRAY = "array"  # whole array actual


@dataclass(slots=True)
class Argument:
    """One actual parameter at a call site."""

    kind: ArgumentKind
    value: Operand | None = None  # VALUE / VAR / ARRAY_ELEMENT value operand
    symbol: Symbol | None = None  # VAR / ARRAY_ELEMENT / ARRAY symbol
    indices: list[Operand] = field(default_factory=list)
    span: SourceSpan = DUMMY_SPAN

    @property
    def is_writable_var(self) -> bool:
        return self.kind is ArgumentKind.VAR

    def __str__(self) -> str:
        if self.kind is ArgumentKind.ARRAY:
            assert self.symbol is not None
            return f"&{self.symbol.name}[]"
        if self.kind is ArgumentKind.ARRAY_ELEMENT:
            assert self.symbol is not None
            inner = ", ".join(str(i) for i in self.indices)
            return f"&{self.symbol.name}({inner})"
        if self.kind is ArgumentKind.VAR:
            return f"&{self.value}"
        return str(self.value)


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Instr:
    """Base instruction. Subclasses override ``uses``/``dest`` accessors."""

    span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)

    def uses(self) -> list[Operand]:
        """All scalar operands read by this instruction."""
        return []

    def replace_uses(self, mapping) -> None:
        """Apply ``mapping(operand) -> operand`` to every use."""

    @property
    def dest(self) -> Dest | None:
        return None

    def set_dest(self, dest: Dest) -> None:
        raise TypeError(f"{type(self).__name__} has no destination")

    @property
    def is_terminator(self) -> bool:
        return False


@dataclass(slots=True)
class _HasDest(Instr):
    """Mixin for instructions with a scalar destination (``result``)."""

    result: Dest = field(default=None, kw_only=True)  # type: ignore[assignment]

    @property
    def dest(self) -> Dest:
        return self.result

    def set_dest(self, dest: Dest) -> None:
        self.result = dest


@dataclass(slots=True)
class BinOp(_HasDest):
    """``dest = left op right`` with FORTRAN arithmetic/compare/logical ops."""

    op: str = ""
    left: Operand = None  # type: ignore[assignment]
    right: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.left, self.right]

    def replace_uses(self, mapping) -> None:
        self.left = mapping(self.left)
        self.right = mapping(self.right)


@dataclass(slots=True)
class UnOp(_HasDest):
    """``dest = op operand`` for unary minus and .not."""

    op: str = ""
    operand: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.operand]

    def replace_uses(self, mapping) -> None:
        self.operand = mapping(self.operand)


@dataclass(slots=True)
class Convert(_HasDest):
    """Type conversion inserted by mixed-type assignment (int<->real)."""

    to_type: Type = Type.INTEGER
    operand: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.operand]

    def replace_uses(self, mapping) -> None:
        self.operand = mapping(self.operand)


@dataclass(slots=True)
class IntrinsicOp(_HasDest):
    """``dest = intrinsic(args...)`` for mod/max/min/abs/..."""

    name: str = ""
    args: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return list(self.args)

    def replace_uses(self, mapping) -> None:
        self.args = [mapping(a) for a in self.args]


@dataclass(slots=True)
class Copy(_HasDest):
    """``dest = src``."""

    src: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [self.src]

    def replace_uses(self, mapping) -> None:
        self.src = mapping(self.src)


@dataclass(slots=True)
class LoadArr(_HasDest):
    """``dest = array(indices)`` — value is always ⊥ to the analysis."""

    array: Symbol = None  # type: ignore[assignment]
    indices: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return list(self.indices)

    def replace_uses(self, mapping) -> None:
        self.indices = [mapping(i) for i in self.indices]


@dataclass(slots=True)
class StoreArr(Instr):
    """``array(indices) = src`` — contributes the array to MOD only."""

    array: Symbol = None  # type: ignore[assignment]
    indices: list[Operand] = field(default_factory=list)
    src: Operand = None  # type: ignore[assignment]

    def uses(self) -> list[Operand]:
        return [*self.indices, self.src]

    def replace_uses(self, mapping) -> None:
        self.indices = [mapping(i) for i in self.indices]
        self.src = mapping(self.src)


@dataclass(slots=True)
class Call(_HasDest):
    """A call site. ``dest`` is None for subroutine calls.

    ``site_id`` is assigned by lowering and is unique within the program;
    jump functions are keyed on it.
    """

    callee: str = ""
    args: list[Argument] = field(default_factory=list)
    site_id: int = -1
    #: source span of the callee name (procedure cloning rewrites it).
    callee_span: SourceSpan = DUMMY_SPAN

    def uses(self) -> list[Operand]:
        found: list[Operand] = []
        for arg in self.args:
            if arg.value is not None:
                found.append(arg.value)
            found.extend(arg.indices)
        return found

    def replace_uses(self, mapping) -> None:
        for arg in self.args:
            if arg.value is not None:
                arg.value = mapping(arg.value)
            arg.indices = [mapping(i) for i in arg.indices]


@dataclass(slots=True)
class CallKill(Instr):
    """Pseudo-definition of a scalar a preceding call may modify.

    Inserted (one per potentially-modified scalar) immediately after each
    :class:`Call` before SSA construction, so calls participate in SSA as
    definitions. ``binding`` says how the scalar is bound in the callee —
    ``("formal", name)`` for a by-reference actual, ``("global", gid)``
    for a COMMON member — which is what return-jump-function application
    needs. Without MOD information every visible scalar gets a kill
    (the paper's "worst case assumptions about any call sites").
    """

    target: VarDef = None  # type: ignore[assignment]
    call: "Call" = None  # type: ignore[assignment]
    binding: tuple[str, object] = ("global", None)

    @property
    def dest(self) -> Dest:
        return self.target

    def set_dest(self, dest: Dest) -> None:
        assert isinstance(dest, VarDef)
        self.target = dest


@dataclass(slots=True)
class ReadVar(Instr):
    """``read var`` — defines ``var`` with a runtime (unknown) value."""

    target: VarDef = None  # type: ignore[assignment]

    @property
    def dest(self) -> Dest:
        return self.target

    def set_dest(self, dest: Dest) -> None:
        assert isinstance(dest, VarDef)
        self.target = dest


@dataclass(slots=True)
class ReadArr(Instr):
    """``read array(indices)`` — MODs the array, value untracked."""

    array: Symbol = None  # type: ignore[assignment]
    indices: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return list(self.indices)

    def replace_uses(self, mapping) -> None:
        self.indices = [mapping(i) for i in self.indices]


@dataclass(slots=True)
class WriteOut(Instr):
    """``write values...`` — a pure use."""

    values: list[Operand] = field(default_factory=list)

    def uses(self) -> list[Operand]:
        return list(self.values)

    def replace_uses(self, mapping) -> None:
        self.values = [mapping(v) for v in self.values]


@dataclass(slots=True)
class Phi(_HasDest):
    """SSA phi: ``dest = phi(block -> operand)``."""

    incoming: dict[int, Operand] = field(default_factory=dict)

    def uses(self) -> list[Operand]:
        return list(self.incoming.values())

    def replace_uses(self, mapping) -> None:
        self.incoming = {b: mapping(v) for b, v in self.incoming.items()}


@dataclass(slots=True)
class Jump(Instr):
    """Unconditional branch to block ``target`` (a block id)."""

    target: int = -1

    @property
    def is_terminator(self) -> bool:
        return True


@dataclass(slots=True)
class CJump(Instr):
    """Conditional branch on a logical operand."""

    cond: Operand = None  # type: ignore[assignment]
    if_true: int = -1
    if_false: int = -1

    def uses(self) -> list[Operand]:
        return [self.cond]

    def replace_uses(self, mapping) -> None:
        self.cond = mapping(self.cond)

    @property
    def is_terminator(self) -> bool:
        return True


@dataclass(slots=True)
class Return(Instr):
    """Return from the procedure (function results travel via the
    RESULT variable, not an operand)."""

    @property
    def is_terminator(self) -> bool:
        return True


@dataclass(slots=True)
class Stop(Instr):
    """Program termination; control never reaches the exit block."""

    @property
    def is_terminator(self) -> bool:
        return True
