"""AST → IR lowering.

One :class:`LoweredProcedure` per program unit, with a single-exit CFG:
every source ``return`` jumps to the exit block, which holds the one
:class:`Return`. STOP paths leave the graph. DO loops are lowered to the
FORTRAN 77 trip-count form (the iteration count is computed once on entry),
which both matches the language semantics and lets SCCP fold constant-bound
loops during complete propagation.

Call sites receive program-unique ``site_id`` values here; everything
downstream (MOD/REF, jump functions, the interprocedural solver) keys on
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError
from repro.frontend.source import DUMMY_SPAN, SourceSpan
from repro.frontend.symbols import (
    INTEGER_INTRINSICS,
    Procedure,
    Program,
    Symbol,
    SymbolKind,
)
from repro.ir.cfg import BasicBlock, ControlFlowGraph
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    BinOp,
    Call,
    CJump,
    Const,
    Convert,
    Copy,
    IntrinsicOp,
    Jump,
    LoadArr,
    Operand,
    ReadArr,
    ReadVar,
    Return,
    Stop,
    StoreArr,
    Temp,
    UnOp,
    VarDef,
    VarUse,
    WriteOut,
    bool_const,
    int_const,
)

_COMPARE_OPS = frozenset({"==", "/=", "<", "<=", ">", ">="})
_LOGICAL_OPS = frozenset({".and.", ".or."})


@dataclass
class LoweredProcedure:
    """A procedure plus its CFG and lowering metadata."""

    procedure: Procedure
    cfg: ControlFlowGraph
    call_instrs: list[Call] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.procedure.name

    def variables(self) -> list[Symbol]:
        """All scalar named variables (candidates for SSA renaming)."""
        return [s for s in self.procedure.symtab if not s.is_array
                and s.kind is not SymbolKind.NAMED_CONST]


@dataclass
class LoweredProgram:
    """Whole-program lowering result."""

    program: Program
    procedures: dict[str, LoweredProcedure]
    call_sites: dict[int, tuple[str, Call]] = field(default_factory=dict)

    def procedure(self, name: str) -> LoweredProcedure:
        return self.procedures[name.lower()]

    def site(self, site_id: int) -> tuple[str, Call]:
        """Return (caller name, call instruction) for a site id."""
        return self.call_sites[site_id]


def operand_type(operand: Operand) -> ast.Type:
    """Static type of an operand."""
    if isinstance(operand, Const):
        return operand.type
    if isinstance(operand, Temp):
        return operand.type
    if isinstance(operand, VarUse):
        return operand.symbol.type
    # SSAName appears only after renaming; same rule as VarUse.
    return operand.symbol.type  # type: ignore[union-attr]


class _ProcedureLowerer:
    """Lowers one procedure body into a CFG."""

    def __init__(self, procedure: Procedure, site_counter: _SiteCounter):
        self._proc = procedure
        self._cfg = ControlFlowGraph()
        self._sites = site_counter
        self._temp_index = 0
        self._synth_index = 0
        self._label_blocks: dict[int, BasicBlock] = {}
        self._call_instrs: list[Call] = []
        self._current: BasicBlock = self._cfg.new_block()
        self._cfg.entry_id = self._current.id
        exit_block = self._cfg.new_block()
        exit_block.append(Return())
        self._cfg.exit_id = exit_block.id

    def lower(self) -> LoweredProcedure:
        self._lower_stmts(self._proc.ast.body)
        if not self._current.is_terminated:
            self._current.append(Jump(self._cfg.exit_id))
        self._cfg.remove_unreachable()
        self._cfg.refresh()
        reachable_calls = self._reachable_call_instrs()
        return LoweredProcedure(
            procedure=self._proc, cfg=self._cfg, call_instrs=reachable_calls
        )

    def _reachable_call_instrs(self) -> list[Call]:
        alive = []
        live_ids = {id(instr) for _, instr in self._cfg.instructions()}
        for call in self._call_instrs:
            if id(call) in live_ids:
                alive.append(call)
        return alive

    # -- helpers -------------------------------------------------------------

    def _new_temp(self, type_: ast.Type) -> Temp:
        temp = Temp(self._temp_index, type_)
        self._temp_index += 1
        return temp

    def _new_synthetic(self, hint: str, type_: ast.Type) -> Symbol:
        name = f"${hint}{self._synth_index}"
        self._synth_index += 1
        existing = self._proc.symtab.lookup(name)
        if existing is not None:
            # Re-lowering the same procedure (analyzer runs lower once per
            # configuration): reuse the symbol so identities stay stable.
            return existing
        symbol = Symbol(name=name, kind=SymbolKind.LOCAL, type=type_, hidden=True)
        self._proc.symtab.define(symbol)
        return symbol

    def _emit(self, instr) -> None:
        if self._current.is_terminated:
            # Unreachable code after goto/return/stop: park it in a fresh
            # block; remove_unreachable() will prune it (unless labeled).
            self._current = self._cfg.new_block()
        self._current.append(instr)

    def _start_block(self, block: BasicBlock) -> None:
        if not self._current.is_terminated:
            self._current.append(Jump(block.id))
        self._current = block

    def _label_block(self, label: int) -> BasicBlock:
        if label not in self._label_blocks:
            self._label_blocks[label] = self._cfg.new_block()
        return self._label_blocks[label]

    def _symbol(self, name: str) -> Symbol:
        symbol = self._proc.symtab.lookup(name)
        assert symbol is not None, f"unresolved name {name!r} reached lowering"
        return symbol

    # -- statements -----------------------------------------------------------

    def _lower_stmts(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if stmt.label is not None:
            self._start_block(self._label_block(stmt.label))
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.DoLoop):
            self._lower_do(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.CallStmt):
            self._lower_call_stmt(stmt)
        elif isinstance(stmt, ast.Goto):
            self._emit(Jump(self._label_block(stmt.target).id))
        elif isinstance(stmt, ast.Continue):
            pass  # label handling above did the work
        elif isinstance(stmt, ast.ReturnStmt):
            self._emit(Jump(self._cfg.exit_id))
        elif isinstance(stmt, ast.StopStmt):
            self._emit(Stop(span=stmt.span))
        elif isinstance(stmt, ast.ReadStmt):
            self._lower_read(stmt)
        elif isinstance(stmt, ast.WriteStmt):
            values = [self._lower_expr(v) for v in stmt.values]
            self._emit(WriteOut(values=values, span=stmt.span))
        else:  # pragma: no cover - resolver rejects everything else
            raise SemanticError(f"cannot lower {type(stmt).__name__}")

    def _lower_assign(self, stmt: ast.Assign) -> None:
        value = self._lower_expr(stmt.value)
        if isinstance(stmt.target, ast.ArrayRef):
            symbol = self._symbol(stmt.target.name)
            indices = [self._lower_expr(i) for i in stmt.target.indices]
            value = self._coerce(value, symbol.type)
            self._emit(
                StoreArr(array=symbol, indices=indices, src=value, span=stmt.span)
            )
            return
        symbol = self._symbol(stmt.target.name)
        value = self._coerce(value, symbol.type)
        dest = VarDef(symbol, stmt.target.span)
        self._emit(Copy(src=value, result=dest, span=stmt.span))

    def _coerce(self, operand: Operand, to_type: ast.Type) -> Operand:
        from_type = operand_type(operand)
        if from_type is to_type:
            return operand
        if ast.Type.LOGICAL in (from_type, to_type) or ast.Type.CHARACTER in (
            from_type,
            to_type,
        ):
            raise SemanticError(
                f"cannot convert {from_type.value} to {to_type.value}"
            )
        temp = self._new_temp(to_type)
        self._emit(Convert(to_type=to_type, operand=operand, result=temp))
        return temp

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_expr(stmt.cond)
        then_block = self._cfg.new_block()
        join_block = self._cfg.new_block()
        else_block = self._cfg.new_block() if stmt.else_body else join_block
        self._emit(
            CJump(cond=cond, if_true=then_block.id, if_false=else_block.id,
                  span=stmt.span)
        )
        self._current = then_block
        self._lower_stmts(stmt.then_body)
        if not self._current.is_terminated:
            self._current.append(Jump(join_block.id))
        if stmt.else_body:
            self._current = else_block
            self._lower_stmts(stmt.else_body)
            if not self._current.is_terminated:
                self._current.append(Jump(join_block.id))
        self._current = join_block

    def _lower_do(self, stmt: ast.DoLoop) -> None:
        induction = self._symbol(stmt.var.name)
        if induction.type is not ast.Type.INTEGER:
            raise SemanticError(
                f"DO variable {induction.name!r} must be INTEGER",
                stmt.var.span.start,
            )
        first = self._coerce(self._lower_expr(stmt.first), ast.Type.INTEGER)
        last = self._coerce(self._lower_expr(stmt.last), ast.Type.INTEGER)
        if stmt.step is None:
            step: Operand = int_const(1)
        else:
            step = self._coerce(self._lower_expr(stmt.step), ast.Type.INTEGER)

        # FORTRAN 77 semantics: trip count fixed at loop entry.
        #   count = max((last - first + step) / step, 0)
        self._emit(Copy(src=first, result=VarDef(induction, stmt.var.span),
                        span=stmt.span))
        span_temp = self._new_temp(ast.Type.INTEGER)
        self._emit(BinOp(op="-", left=last, right=first, result=span_temp))
        biased = self._new_temp(ast.Type.INTEGER)
        self._emit(BinOp(op="+", left=span_temp, right=step, result=biased))
        quotient = self._new_temp(ast.Type.INTEGER)
        self._emit(BinOp(op="/", left=biased, right=step, result=quotient))
        clamped = self._new_temp(ast.Type.INTEGER)
        self._emit(
            IntrinsicOp(name="max", args=[quotient, int_const(0)], result=clamped)
        )
        count_sym = self._new_synthetic("count", ast.Type.INTEGER)
        self._emit(Copy(src=clamped, result=VarDef(count_sym)))
        if isinstance(step, Const):
            step_use: Operand = step
        else:
            step_sym = self._new_synthetic("step", ast.Type.INTEGER)
            self._emit(Copy(src=step, result=VarDef(step_sym)))
            step_use = VarUse(step_sym)

        header = self._cfg.new_block()
        body = self._cfg.new_block()
        after = self._cfg.new_block()
        self._start_block(header)
        more = self._new_temp(ast.Type.LOGICAL)
        self._emit(BinOp(op=">", left=VarUse(count_sym), right=int_const(0),
                         result=more))
        self._emit(CJump(cond=more, if_true=body.id, if_false=after.id))
        self._current = body
        self._lower_stmts(stmt.body)
        if not self._current.is_terminated:
            next_i = self._new_temp(ast.Type.INTEGER)
            self._current.append(
                BinOp(op="+", left=VarUse(induction, stmt.var.span),
                      right=step_use, result=next_i)
            )
            self._current.append(
                Copy(src=next_i, result=VarDef(induction, stmt.var.span))
            )
            next_count = self._new_temp(ast.Type.INTEGER)
            self._current.append(
                BinOp(op="-", left=VarUse(count_sym), right=int_const(1),
                      result=next_count)
            )
            self._current.append(Copy(src=next_count, result=VarDef(count_sym)))
            self._current.append(Jump(header.id))
        self._current = after

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        header = self._cfg.new_block()
        body = self._cfg.new_block()
        after = self._cfg.new_block()
        self._start_block(header)
        cond = self._lower_expr(stmt.cond)
        self._emit(CJump(cond=cond, if_true=body.id, if_false=after.id,
                         span=stmt.span))
        self._current = body
        self._lower_stmts(stmt.body)
        if not self._current.is_terminated:
            self._current.append(Jump(header.id))
        self._current = after

    def _lower_call_stmt(self, stmt: ast.CallStmt) -> None:
        args = [self._lower_argument(a) for a in stmt.args]
        call = Call(callee=stmt.name, args=args,
                    site_id=self._sites.next_id(), span=stmt.span,
                    callee_span=stmt.name_span)
        self._call_instrs.append(call)
        self._emit(call)

    def _lower_read(self, stmt: ast.ReadStmt) -> None:
        for target in stmt.targets:
            if isinstance(target, ast.ArrayRef):
                symbol = self._symbol(target.name)
                indices = [self._lower_expr(i) for i in target.indices]
                self._emit(ReadArr(array=symbol, indices=indices, span=stmt.span))
            else:
                symbol = self._symbol(target.name)
                self._emit(
                    ReadVar(target=VarDef(symbol, target.span), span=stmt.span)
                )

    # -- expressions -----------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLit):
            return int_const(expr.value)
        if isinstance(expr, ast.RealLit):
            return Const(expr.value, ast.Type.REAL)
        if isinstance(expr, ast.LogicalLit):
            return bool_const(expr.value)
        if isinstance(expr, ast.StringLit):
            return Const(expr.value, ast.Type.CHARACTER)
        if isinstance(expr, ast.VarRef):
            symbol = self._symbol(expr.name)
            if symbol.kind is SymbolKind.NAMED_CONST:
                return _const_of(symbol)
            return VarUse(symbol, expr.span)
        if isinstance(expr, ast.ArrayRef):
            symbol = self._symbol(expr.name)
            indices = [self._lower_expr(i) for i in expr.indices]
            temp = self._new_temp(symbol.type)
            self._emit(LoadArr(array=symbol, indices=indices, result=temp,
                               span=expr.span))
            return temp
        if isinstance(expr, ast.UnaryOp):
            operand = self._lower_expr(expr.operand)
            result_type = (
                ast.Type.LOGICAL if expr.op == ".not." else operand_type(operand)
            )
            temp = self._new_temp(result_type)
            self._emit(UnOp(op=expr.op, operand=operand, result=temp,
                            span=expr.span))
            return temp
        if isinstance(expr, ast.BinaryOp):
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            temp = self._new_temp(_binop_type(expr.op, left, right))
            self._emit(BinOp(op=expr.op, left=left, right=right, result=temp,
                             span=expr.span))
            return temp
        if isinstance(expr, ast.FunctionCall):
            return self._lower_call_expr(expr)
        raise SemanticError(f"cannot lower expression {type(expr).__name__}")

    def _lower_call_expr(self, expr: ast.FunctionCall) -> Operand:
        if expr.name in _KNOWN_INTRINSIC_TYPES or expr.name in INTEGER_INTRINSICS:
            args = [self._lower_expr(a) for a in expr.args]
            temp = self._new_temp(_intrinsic_type(expr.name, args))
            self._emit(IntrinsicOp(name=expr.name, args=args, result=temp,
                                   span=expr.span))
            return temp
        args = [self._lower_argument(a) for a in expr.args]
        result_type = self._function_return_type(expr.name)
        temp = self._new_temp(result_type)
        call = Call(callee=expr.name, args=args, result=temp,
                    site_id=self._sites.next_id(), span=expr.span,
                    callee_span=expr.name_span)
        self._call_instrs.append(call)
        self._emit(call)
        return temp

    def _function_return_type(self, name: str) -> ast.Type:
        return self._sites.function_return_type(name)

    def _lower_argument(self, expr: ast.Expr) -> Argument:
        if isinstance(expr, ast.VarRef):
            symbol = self._symbol(expr.name)
            if symbol.kind is SymbolKind.NAMED_CONST:
                return Argument(
                    kind=ArgumentKind.VALUE, value=_const_of(symbol), span=expr.span
                )
            if symbol.is_array:
                return Argument(kind=ArgumentKind.ARRAY, symbol=symbol,
                                span=expr.span)
            return Argument(
                kind=ArgumentKind.VAR,
                value=VarUse(symbol, expr.span),
                symbol=symbol,
                span=expr.span,
            )
        if isinstance(expr, ast.ArrayRef):
            symbol = self._symbol(expr.name)
            indices = [self._lower_expr(i) for i in expr.indices]
            temp = self._new_temp(symbol.type)
            self._emit(LoadArr(array=symbol, indices=indices, result=temp,
                               span=expr.span))
            return Argument(
                kind=ArgumentKind.ARRAY_ELEMENT,
                value=temp,
                symbol=symbol,
                indices=indices,
                span=expr.span,
            )
        value = self._lower_expr(expr)
        return Argument(kind=ArgumentKind.VALUE, value=value, span=expr.span)


_KNOWN_INTRINSIC_TYPES = {
    "real": ast.Type.REAL,
    "abs": None,  # type follows the argument
    "max": None,
    "min": None,
}


def _intrinsic_type(name: str, args: list[Operand]) -> ast.Type:
    if name in INTEGER_INTRINSICS:
        return ast.Type.INTEGER
    fixed = _KNOWN_INTRINSIC_TYPES.get(name)
    if fixed is not None:
        return fixed
    if any(operand_type(a) is ast.Type.REAL for a in args):
        return ast.Type.REAL
    return ast.Type.INTEGER


def _binop_type(op: str, left: Operand, right: Operand) -> ast.Type:
    if op in _COMPARE_OPS or op in _LOGICAL_OPS:
        return ast.Type.LOGICAL
    if operand_type(left) is ast.Type.REAL or operand_type(right) is ast.Type.REAL:
        return ast.Type.REAL
    return ast.Type.INTEGER


def _const_of(symbol: Symbol) -> Const:
    value = symbol.const_value
    if isinstance(value, bool):
        return bool_const(value)
    if isinstance(value, int):
        return int_const(value)
    assert isinstance(value, float)
    return Const(value, ast.Type.REAL)


class _SiteCounter:
    """Allocates program-unique call-site ids; knows function return types."""

    def __init__(self, program: Program):
        self._next = 0
        self._program = program

    def next_id(self) -> int:
        site_id = self._next
        self._next += 1
        return site_id

    def function_return_type(self, name: str) -> ast.Type:
        proc = self._program.procedures[name]
        result = proc.result_symbol
        assert result is not None, f"{name!r} is not a function"
        return result.type


def lower_procedure(procedure: Procedure, program: Program) -> LoweredProcedure:
    """Lower a single procedure (ids are only unique within this call)."""
    return _ProcedureLowerer(procedure, _SiteCounter(program)).lower()


def lower_program(program: Program) -> LoweredProgram:
    """Lower every procedure; assign program-unique call-site ids."""
    counter = _SiteCounter(program)
    procedures: dict[str, LoweredProcedure] = {}
    for name, proc in program.procedures.items():
        procedures[name] = _ProcedureLowerer(proc, counter).lower()
    lowered = LoweredProgram(program=program, procedures=procedures)
    for name, lowered_proc in procedures.items():
        for call in lowered_proc.call_instrs:
            lowered.call_sites[call.site_id] = (name, call)
    _check_argument_shapes(lowered)
    return lowered


def refresh_call_sites(lowered: LoweredProgram) -> None:
    """Rebuild call-site bookkeeping after a transformation (e.g. DCE)
    removed instructions. Site ids are stable; removed sites disappear."""
    lowered.call_sites = {}
    for name, lowered_proc in lowered.procedures.items():
        calls = [
            instr
            for _, instr in lowered_proc.cfg.instructions()
            if isinstance(instr, Call)
        ]
        lowered_proc.call_instrs = calls
        for call in calls:
            lowered.call_sites[call.site_id] = (name, call)


def _check_argument_shapes(lowered: LoweredProgram) -> None:
    """Array actual ↔ array formal agreement (deferred from resolution)."""
    for caller_name, call in lowered.call_sites.values():
        callee = lowered.procedures[call.callee].procedure
        for arg, formal in zip(call.args, callee.formals):
            if formal.is_array and arg.kind is ArgumentKind.VALUE:
                raise SemanticError(
                    f"{call.callee!r} expects an array for formal "
                    f"{formal.name!r} (call in {caller_name!r})",
                    arg.span.start,
                )
            if formal.is_array and arg.kind is ArgumentKind.VAR:
                raise SemanticError(
                    f"{call.callee!r} expects an array for formal "
                    f"{formal.name!r}, got scalar (call in {caller_name!r})",
                    arg.span.start,
                )
            if not formal.is_array and arg.kind is ArgumentKind.ARRAY:
                raise SemanticError(
                    f"{call.callee!r} expects a scalar for formal "
                    f"{formal.name!r}, got array (call in {caller_name!r})",
                    arg.span.start,
                )
