"""Command-line interface: ``python -m repro <command>``.

Commands
--------
analyze   run the analyzer over a MiniFortran file, print CONSTANTS sets
run       execute a file under the reference interpreter
lint      run the diagnostics passes; text, JSON, or SARIF output
tables    regenerate the paper's tables and Figure 1
workload  print (or save) one generated suite program
clone     one goal-directed cloning round over a file
serve     run the analysis daemon (stdio-JSONL or HTTP/JSON)
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import analyze
from repro.frontend.errors import FrontendError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Interprocedural constant propagation — a reproduction of "
            "Grove & Torczon, PLDI 1993"
        ),
    )
    parser.add_argument(
        "--traceback", action="store_true",
        help="print full tracebacks instead of one-line typed errors",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_cmd = sub.add_parser("analyze", help="analyze a MiniFortran file")
    analyze_cmd.add_argument("file")
    analyze_cmd.add_argument(
        "--jump-function",
        choices=[k.value for k in JumpFunctionKind],
        default=JumpFunctionKind.PASS_THROUGH.value,
    )
    analyze_cmd.add_argument(
        "--analysis",
        choices=["constprop", "copyprop", "modref"],
        default="constprop",
        help="which framework analysis to run: the paper's constant "
             "propagation (default, specialized engine), interprocedural "
             "copy propagation, or MOD/REF summaries re-derived through "
             "the generic dataflow engine",
    )
    analyze_cmd.add_argument("--no-mod", action="store_true",
                             help="drop interprocedural MOD information")
    analyze_cmd.add_argument("--no-returns", action="store_true",
                             help="disable return jump functions")
    analyze_cmd.add_argument("--complete", action="store_true",
                             help="iterate with dead-code elimination")
    analyze_cmd.add_argument("--intraprocedural", action="store_true",
                             help="the Table 3 baseline: no propagation "
                                  "between procedures")
    analyze_cmd.add_argument("--compose", action="store_true",
                             help="compose return jump functions "
                                  "symbolically (extension)")
    analyze_cmd.add_argument("--transform", action="store_true",
                             help="print the transformed source")
    analyze_cmd.add_argument("--stats", action="store_true",
                             help="print per-stage timings, solver counters, "
                                  "and stage-0 cache state")
    analyze_cmd.add_argument("--verify", action="store_true",
                             help="validate IR and SSA invariants after "
                                  "lowering; non-zero exit on a violation")
    analyze_cmd.add_argument("--max-passes", type=int, default=None,
                             metavar="N",
                             help="solver fuel: cap monotone worklist "
                                  "passes (degrades the jump function "
                                  "instead of failing)")
    analyze_cmd.add_argument("--max-evaluations", type=int, default=None,
                             metavar="N",
                             help="solver fuel: cap jump-function "
                                  "evaluations")
    analyze_cmd.add_argument("--max-meets", type=int, default=None,
                             metavar="N",
                             help="solver fuel: cap lattice meets")
    analyze_cmd.add_argument("--no-degrade", action="store_true",
                             help="fail on budget exhaustion instead of "
                                  "walking the degradation ladder")
    analyze_cmd.add_argument("--parallel", type=int, default=None,
                             metavar="N",
                             help="solve stage 3 on N worker processes, "
                                  "wave by wave of the SCC condensation "
                                  "(falls back to sequential on any "
                                  "pool failure, RL540)")
    analyze_cmd.add_argument("--compiled", action="store_true",
                             help="evaluate polynomial jump functions "
                                  "through compiled closure kernels")
    analyze_cmd.add_argument("--flat", action="store_true",
                             help="solve stage 3 on the flat slab engine "
                                  "(integer-coded lattice slots, CSR "
                                  "fan-out, batched drains; identical "
                                  "VALs, built for 1k+-procedure corpora)")
    analyze_cmd.add_argument("--store", default=None, metavar="DIR",
                             help="persistent artifact store directory; the "
                                  "run publishes its jump functions and "
                                  "solution there as a snapshot")
    analyze_cmd.add_argument("--incremental", action="store_true",
                             help="warm-start from the --store snapshot: "
                                  "re-solve only procedures whose "
                                  "fingerprints changed (plus their "
                                  "transitive callees)")
    analyze_cmd.add_argument("--profile-json", default=None, metavar="PATH",
                             help="dump per-stage timings and all solver/"
                                  "cache/region/store counters as JSON")

    run_cmd = sub.add_parser("run", help="execute a file")
    run_cmd.add_argument("file")
    run_cmd.add_argument("--input", type=int, action="append", default=[],
                         help="value for the next READ (repeatable)")
    run_cmd.add_argument("--max-steps", type=int, default=2_000_000)
    run_cmd.add_argument("--check", action="store_true",
                         help="cross-check CONSTANTS claims against the "
                              "observed execution (soundness probe)")

    lint_cmd = sub.add_parser(
        "lint", help="run the diagnostics passes over programs"
    )
    lint_cmd.add_argument("files", nargs="*",
                          help="MiniFortran source files to lint")
    lint_cmd.add_argument("--workloads", action="store_true",
                          help="also lint every generated workload program")
    lint_cmd.add_argument("--scale", type=float, default=1.0,
                          help="workload scale factor (with --workloads)")
    lint_cmd.add_argument("--format", choices=["text", "json", "sarif"],
                          default="text")
    lint_cmd.add_argument("--select", action="append", default=None,
                          metavar="PASS",
                          help="run exactly the named pass (repeatable)")
    lint_cmd.add_argument("--sanitize", action="store_true",
                          help="enable the lattice sanitizer (re-solves "
                               "each program with invariant checking)")
    lint_cmd.add_argument("--list-passes", action="store_true",
                          help="list the registered passes and exit")
    lint_cmd.add_argument("-o", "--output", default=None,
                          help="write the report to a file instead of stdout")

    tables_cmd = sub.add_parser("tables", help="regenerate the paper tables")
    tables_cmd.add_argument(
        "--which", choices=["1", "2", "3", "fig1", "costs", "all"],
        default="all",
    )
    tables_cmd.add_argument("--scale", type=float, default=1.0)
    tables_cmd.add_argument("--processes", type=int, default=None,
                            help="fan the table sweeps across N worker "
                                 "processes (default: in-process)")
    tables_cmd.add_argument("--parallel", type=int, default=None,
                            metavar="N",
                            help="solve each cell's stage 3 on N region "
                                 "workers (wave-parallel schedule; "
                                 "table counts are unchanged)")
    tables_cmd.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-task wall-clock budget (needs "
                                 "--processes; a hung program becomes a "
                                 "timeout record, not a hung run)")
    tables_cmd.add_argument("--retries", type=int, default=2,
                            help="re-attempts per failing program before "
                                 "it is quarantined (default: 2)")
    tables_cmd.add_argument("--journal", default=None, metavar="PATH",
                            help="JSONL checkpoint journal; an interrupted "
                                 "sweep resumes from completed cells "
                                 "(written per table as PATH.table2/.table3)")
    tables_cmd.add_argument("--stats", action="store_true",
                            help="print executor statistics: executed vs "
                                 "resumed cells, retries, per-worker "
                                 "stage-0 cache counters")
    tables_cmd.add_argument("--store", default=None, metavar="DIR",
                            help="shared artifact store: every sweep cell "
                                 "(in every worker process) publishes to "
                                 "and warm-starts from DIR")

    workload_cmd = sub.add_parser("workload", help="emit a suite program")
    workload_cmd.add_argument("name")
    workload_cmd.add_argument("--scale", type=float, default=1.0)
    workload_cmd.add_argument("-o", "--output", default=None)

    clone_cmd = sub.add_parser("clone", help="one procedure-cloning round")
    clone_cmd.add_argument("file")
    clone_cmd.add_argument("--max-clones", type=int, default=3)
    clone_cmd.add_argument("--transform", action="store_true",
                           help="print the cloned source")

    serve_cmd = sub.add_parser(
        "serve", help="run the analysis-as-a-service daemon"
    )
    serve_cmd.add_argument("--http", type=int, default=None, metavar="PORT",
                           help="serve HTTP/JSON on PORT (default: "
                                "stdio-JSONL on stdin/stdout)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address for --http "
                                "(default: 127.0.0.1)")
    serve_cmd.add_argument("--store", default=None, metavar="DIR",
                           help="persistent artifact store: responses and "
                                "snapshots survive restarts, repeats answer "
                                "warm")
    serve_cmd.add_argument("--journal", default=None, metavar="PATH",
                           help="crash-safe request journal; on restart "
                                "in-flight requests are replayed (or "
                                "refused with --no-replay)")
    serve_cmd.add_argument("--no-replay", action="store_true",
                           help="refuse journaled in-flight requests on "
                                "restart (RL556) instead of replaying them")
    serve_cmd.add_argument("--workers", type=int, default=2,
                           help="concurrent solver slots (default: 2)")
    serve_cmd.add_argument("--queue-limit", type=int, default=8,
                           help="max requests waiting for a slot before "
                                "RL550 rejections (default: 8)")
    serve_cmd.add_argument("--tenant-rate", type=float, default=5.0,
                           help="per-tenant token refill rate, requests/s "
                                "(default: 5)")
    serve_cmd.add_argument("--tenant-burst", type=int, default=20,
                           help="per-tenant burst capacity (default: 20)")
    serve_cmd.add_argument("--request-timeout", type=float, default=30.0,
                           help="default per-request deadline in seconds; "
                                "expiry cancels the solve cooperatively "
                                "(RL554)")
    serve_cmd.add_argument("--breaker-threshold", type=int, default=3,
                           help="solver failures per breaker rung "
                                "(default: 3)")
    serve_cmd.add_argument("--breaker-cooldown", type=float, default=5.0,
                           help="seconds an open breaker waits before its "
                                "half-open probe (default: 5)")
    serve_cmd.add_argument("--chaos", default=None, metavar="JSON",
                           help="arm a deterministic chaos spec (the "
                                "spec_to_json wire format) — test use only")

    store_cmd = sub.add_parser(
        "store", help="maintain a persistent artifact store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    gc_cmd = store_sub.add_parser(
        "gc", help="evict least-recently-verified artifacts"
    )
    gc_cmd.add_argument("--store", required=True, metavar="DIR",
                        help="artifact store directory to compact")
    gc_cmd.add_argument("--max-bytes", type=int, required=True,
                        metavar="N",
                        help="evict least-recently-verified objects until "
                             "the objects/ tree fits in N bytes; snapshot "
                             "lines referencing evicted artifacts are "
                             "dropped from the index")
    return parser


def _config_from(args: argparse.Namespace) -> AnalysisConfig:
    return AnalysisConfig(
        jump_function=JumpFunctionKind(args.jump_function),
        use_return_jump_functions=not args.no_returns,
        use_mod=not args.no_mod,
        complete=args.complete,
        intraprocedural_only=args.intraprocedural,
        compose_return_functions=args.compose,
        max_solver_passes=args.max_passes,
        max_evaluations=args.max_evaluations,
        max_meets=args.max_meets,
        degrade_on_budget=not args.no_degrade,
        parallel_regions=args.parallel,
        compiled_exprs=args.compiled,
        flat_engine=getattr(args, "flat", False),
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    with open(args.file) as handle:
        source = handle.read()
    if args.incremental and not args.store:
        print("analyze: --incremental needs --store DIR", file=sys.stderr)
        return 2
    store = None
    if args.store:
        from repro.store import ArtifactStore

        store = ArtifactStore(args.store)
    result = analyze(
        source, _config_from(args), store=store, incremental=args.incremental
    )
    if args.verify:
        from repro.diagnostics import LintContext, run_passes

        report = run_passes(
            LintContext(result, path=args.file), select=["ir-wellformed"]
        )
        if report.diagnostics:
            for diag in report.diagnostics:
                print(diag.format_text(), file=sys.stderr)
            if report.has_errors:
                return 1
        else:
            print("verify: IR and SSA invariants hold", file=sys.stderr)
    if args.analysis != "constprop":
        return _analyze_client(result, args)
    print(f"configuration: {result.config.describe()}")
    for diag in result.resilience_diagnostics():
        # RL5xx: the run degraded to stay alive — never report silently
        print(diag.format_text(), file=sys.stderr)
    print(f"constants substituted (pairs): {result.constants_found}")
    print(f"references replaced:           {result.references_substituted}")
    print()
    for proc, constants in sorted(result.all_constants().items()):
        if constants:
            pretty = ", ".join(f"{k} = {v}" for k, v in sorted(constants.items()))
            print(f"CONSTANTS({proc}) = {{{pretty}}}")
    if args.stats:
        from repro.core.driver import GLOBAL_STAGE0_CACHE

        print()
        print(result.stats_report())
        for key, value in GLOBAL_STAGE0_CACHE.counters().items():
            print(f"  {key} {value}")
    if args.profile_json:
        import json

        with open(args.profile_json, "w") as handle:
            json.dump(result.stats_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile to {args.profile_json}", file=sys.stderr)
    if args.transform:
        print()
        print(result.transformed_source())
    return 0


def _client_stats(client_result) -> None:
    print()
    print(f"{client_result.analysis} solver counters:")
    for key, value in client_result.counters().items():
        print(f"  {key:18} {value}")


def _analyze_client(result, args: argparse.Namespace) -> int:
    """Run one of the framework clients over the analyzed artifacts and
    print its facts (``repro analyze --analysis copyprop|modref``)."""
    from repro.framework.engine import solve_client

    def pretty(key) -> str:
        return key if isinstance(key, str) else result.program.global_display(key)

    print(f"configuration: {result.config.describe()}")
    print(f"analysis: {args.analysis}")
    if args.analysis == "copyprop":
        from repro.framework.clients.copyprop import (
            CopyOf,
            CopyPropClient,
            copy_facts,
        )
        from repro.core.lattice import is_constant

        solved = solve_client(
            result.lowered,
            result.call_graph,
            CopyPropClient(result.forward),
        )
        constants = copies = 0
        for proc in sorted(solved.val):
            env = solved.val[proc]
            shown = {
                key: value
                for key, value in env.items()
                if value.__class__ is CopyOf or is_constant(value)
            }
            constants += sum(
                1 for v in shown.values() if v.__class__ is not CopyOf
            )
            if shown:
                rendered = ", ".join(
                    f"{pretty(k)} = "
                    + (
                        f"copy-of {v.proc}::{pretty(v.key)}"
                        if v.__class__ is CopyOf
                        else str(v)
                    )
                    for k, v in sorted(
                        shown.items(), key=lambda item: pretty(item[0])
                    )
                )
                print(f"COPIES({proc}) = {{{rendered}}}")
        copies = sum(len(env) for env in copy_facts(solved).values())
        print(f"constant facts: {constants}")
        print(f"copy facts beyond constprop: {copies}")
        if args.stats:
            _client_stats(solved)
        return 0
    # modref
    from repro.framework.clients.modref import (
        ModRefClient,
        cross_check_modref,
    )

    solved = solve_client(result.lowered, result.call_graph, ModRefClient())

    def render(slots) -> str:
        names = sorted(
            f"{pretty(payload)}" if kind == "formal" else pretty(payload)
            for kind, payload in slots
        )
        return "{" + ", ".join(names) + "}"

    for proc in sorted(solved.val):
        env = solved.val[proc]
        print(f"MOD({proc}) = {render(env.get('mod', frozenset()))}")
        print(f"REF({proc}) = {render(env.get('ref', frozenset()))}")
    findings = cross_check_modref(
        result.lowered, result.call_graph, solved, info=result.modref
    )
    for diag in findings:
        print(diag.format_text(), file=sys.stderr)
    if not findings:
        print("cross-check: summaries agree with callgraph.modref",
              file=sys.stderr)
    if args.stats:
        _client_stats(solved)
    return 1 if findings else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.interp import InterpError, run_program

    with open(args.file) as handle:
        source = handle.read()
    try:
        trace = run_program(source, inputs=args.input, max_steps=args.max_steps)
    except InterpError as error:
        print(f"runtime error: {error}", file=sys.stderr)
        return 1
    for value in trace.outputs:
        print(value)
    print(f"({trace.steps} steps)", file=sys.stderr)
    if args.check:
        from repro.interp.soundness import soundness_diagnostics

        result = analyze(source)
        diagnostics = soundness_diagnostics(result, trace)
        for diag in diagnostics:
            print(diag.format_text(), file=sys.stderr)
        if diagnostics:
            return 1
        print("check: CONSTANTS claims hold on this execution",
              file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.diagnostics import (
        Diagnostic,
        LintReport,
        Severity,
        default_registry,
        describe_code,
        run_passes,
    )
    from repro.diagnostics.emit import EMITTERS
    from repro.frontend.source import SourceSpan

    registry = default_registry()
    if args.list_passes:
        for pass_ in registry.passes():
            marker = "" if pass_.default_enabled else " (opt-in)"
            print(f"{pass_.name:24} {pass_.code:7} "
                  f"{pass_.description}{marker}")
        return 0

    targets: list[tuple[str, str]] = []
    for path in args.files:
        with open(path) as handle:
            targets.append((path, handle.read()))
    if args.workloads:
        from repro.workloads import load, suite_names

        for name in suite_names():
            workload = load(name, scale=args.scale)
            targets.append((f"workload:{name}", workload.source))
    if not targets:
        print("lint: no input (pass files and/or --workloads)",
              file=sys.stderr)
        return 2

    front_end_code = describe_code(
        "RL000", "program rejected by the front end"
    )
    enable = ("lattice-sanitizer",) if args.sanitize else ()
    reports = []
    for label, source in targets:
        try:
            reports.append(
                run_passes(
                    source,
                    registry=registry,
                    select=args.select,
                    enable=enable,
                    path=label,
                )
            )
        except FrontendError as error:
            location = error.location
            span = (
                SourceSpan(location, location) if location is not None else None
            )
            reports.append(
                LintReport(
                    diagnostics=[
                        Diagnostic(
                            code=front_end_code,
                            severity=Severity.ERROR,
                            message=str(error),
                            pass_name="frontend",
                            span=span,
                            path=label,
                        )
                    ]
                )
            )
    report = LintReport.merged(reports)
    rendered = EMITTERS[args.format](report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        counts = report.counts()
        print(f"wrote {len(report.diagnostics)} finding(s) to {args.output} "
              f"({counts['error']} error(s))", file=sys.stderr)
    else:
        print(rendered, end="")
    return 1 if report.has_errors else 0


def _tables_policy(args: argparse.Namespace, table: str):
    from repro.resilience.executor import SweepPolicy

    journal = f"{args.journal}.{table}" if args.journal else None
    return SweepPolicy(
        processes=args.processes,
        task_timeout=args.timeout,
        max_retries=args.retries,
        journal_path=journal,
        store_path=args.store,
    )


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro import reporting

    which = args.which
    outcomes = {}
    if which in ("fig1", "all"):
        print(reporting.figure1_meet_table())
        print()
    if which in ("1", "all"):
        print(reporting.format_table1(reporting.run_table1(args.scale)))
        print()
    if which in ("2", "all"):
        rows, outcome = reporting.run_table2_outcome(
            args.scale, _tables_policy(args, "table2"),
            parallel=args.parallel)
        outcomes["table2"] = outcome
        print(reporting.format_table2(rows, outcome))
        print()
    if which in ("3", "all"):
        rows, outcome = reporting.run_table3_outcome(
            args.scale, _tables_policy(args, "table3"),
            parallel=args.parallel)
        outcomes["table3"] = outcome
        print(reporting.format_table3(rows, outcome))
        print()
    if which in ("costs", "all"):
        print(reporting.format_cost_report(reporting.run_cost_report(args.scale)))
    if args.stats and outcomes:
        for label, outcome in outcomes.items():
            print(f"{label}: executed {outcome.executed_cells} cell(s), "
                  f"resumed {outcome.resumed_cells} from journal, "
                  f"{outcome.retries} retried task(s)", file=sys.stderr)
            counters = ", ".join(
                f"{key}={value}"
                for key, value in outcome.cache_counters.items()
            )
            print(f"{label}: stage-0 cache (per-worker deltas): {counters}",
                  file=sys.stderr)
    # partial tables still render, but the exit code says so
    return 0 if all(o.complete for o in outcomes.values()) else 1


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import load, suite_names

    if args.name not in suite_names():
        print(f"unknown workload {args.name!r}; choose from "
              f"{', '.join(suite_names())}", file=sys.stderr)
        return 1
    workload = load(args.name, scale=args.scale)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(workload.source)
        print(f"wrote {workload.line_count} lines to {args.output}")
        if workload.inputs:
            print(f"inputs needed for READ statements: {workload.inputs}")
    else:
        print(workload.source)
    return 0


def _cmd_clone(args: argparse.Namespace) -> int:
    from repro.core.cloning import clone_and_reanalyze

    with open(args.file) as handle:
        source = handle.read()
    report = clone_and_reanalyze(source, max_clones_per_procedure=args.max_clones)
    print(f"constants before: {report.constants_before}")
    print(f"constants after:  {report.constants_after}")
    print(f"clones created:   {report.clones_created}")
    print(f"code growth:      {report.code_growth:.2f}x")
    for group in report.groups:
        if group.clone_name:
            vector = ", ".join(f"{k}={v}" for k, v in group.vector)
            print(f"  {group.callee} -> {group.clone_name} "
                  f"[{vector}] at {len(group.site_ids)} site(s)")
    if args.transform and report.transformed_source:
        print()
        print(report.transformed_source)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import RequestJournal
    from repro.service.server import AnalysisService, ServicePolicy, serve_http
    from repro.service.server import serve_stdio

    if args.chaos:
        import json as _json

        from repro.resilience import chaos

        chaos.install(
            chaos.spec_from_json(_json.loads(args.chaos)),
            label="service",
            in_worker=True,  # a `kill` fault dies like a real kill -9
        )
    store = None
    if args.store:
        from repro.store import ArtifactStore

        store = ArtifactStore(args.store)
    journal = RequestJournal(args.journal) if args.journal else None
    policy = ServicePolicy(
        workers=args.workers,
        queue_limit=args.queue_limit,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        request_timeout=args.request_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        replay=not args.no_replay,
    )
    service = AnalysisService(policy, store=store, journal=journal)
    for event in service.recovered:
        print(f"serve: recovered journaled request {event['id']}: "
              f"{event['status']}", file=sys.stderr)
    if args.http is not None:
        return serve_http(service, args.host, args.http)
    return serve_stdio(service)


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    report = store.gc(args.max_bytes)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "run": _cmd_run,
    "lint": _cmd_lint,
    "tables": _cmd_tables,
    "workload": _cmd_workload,
    "clone": _cmd_clone,
    "serve": _cmd_serve,
    "store": _cmd_store,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except Exception as error:
        # One-line typed error (stage + span + message) by default;
        # --traceback opts back into the raw stack for debugging.
        if args.traceback:
            raise
        from repro.resilience.errors import format_cli_error

        print(format_cli_error(error), file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
