"""Return jump function generation (§3.2, stage 1 of the analyzer).

A bottom-up walk over the call graph's SCC condensation. For each
procedure, SSA + value numbering produce, for every formal, every scalar
global, and (for functions) the result variable, a symbolic expression for
its value at procedure return, in terms of the procedure's *entry* values
— the polynomial return jump function.

Value numbering consults the return jump functions of already-processed
callees, so constants discovered deep in the call graph surface through
chains of returns in one pass (this is what makes ``ocean``-style
initialization routines work). Procedures on call-graph cycles see missing
summaries for their SCC-mates, which degrade to ⊥ — the 1993
implementation's behaviour for not-yet-analyzed routines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ssa import SSAProcedure, build_ssa
from repro.analysis.valuenum import RESULT_KEY, ValueNumbering, value_number
from repro.callgraph.graph import CallGraph
from repro.callgraph.modref import ModRefInfo, make_call_effects
from repro.core.config import AnalysisConfig
from repro.core.exprs import EntryExpr, ValueExpr
from repro.frontend.astnodes import Type
from repro.frontend.symbols import SymbolKind
from repro.ir.lower import LoweredProgram

#: proc name -> (formal name | GlobalId | RESULT_KEY) -> ValueExpr.
ReturnTable = dict[str, dict[object, ValueExpr]]


@dataclass
class ReturnFunctionResult:
    """The return jump function table plus per-procedure build artifacts."""

    table: ReturnTable = field(default_factory=dict)
    ssas: dict[str, SSAProcedure] = field(default_factory=dict)
    numberings: dict[str, ValueNumbering] = field(default_factory=dict)

    def function(self, proc: str, key) -> ValueExpr | None:
        return self.table.get(proc, {}).get(key)

    def count_nontrivial(self) -> int:
        """Return jump functions that are not the identity and not ⊥ —
        a rough measure of how much the stage discovered."""
        count = 0
        for proc_table in self.table.values():
            for key, expr in proc_table.items():
                if expr.is_bottom:
                    continue
                if isinstance(expr, EntryExpr) and expr.key == key:
                    continue
                count += 1
        return count


def build_return_jump_functions(
    lowered: LoweredProgram,
    graph: CallGraph,
    modref: ModRefInfo,
    config: AnalysisConfig,
    ssa_cache=None,
) -> ReturnFunctionResult:
    """Stage 1: the bottom-up pass of §4.1.

    With ``config.use_return_jump_functions`` false, returns an empty
    table (Table 2's "No Return Jump Functions" columns) — calls then
    simply kill whatever MOD says they may modify.

    ``ssa_cache`` (a :class:`repro.core.driver.SSACache`, or anything with
    its ``get(name, use_mod)`` shape) shares SSA forms with stage 2 and
    with other configurations; without one each procedure is converted
    here from scratch.
    """
    result = ReturnFunctionResult()
    if not config.use_return_jump_functions:
        return result

    active_modref = modref if config.use_mod else None
    for scc in graph.bottom_up_sccs():
        for name in scc:
            lowered_proc = lowered.procedures[name]
            if ssa_cache is not None:
                ssa = ssa_cache.get(name, config.use_mod)
            else:
                effects = make_call_effects(lowered, name, active_modref)
                ssa = build_ssa(lowered_proc, effects)
            numbering = value_number(
                ssa,
                lowered,
                result.table,
                config.compose_return_functions,
            )
            result.ssas[name] = ssa
            result.numberings[name] = numbering
            result.table[name] = _extract_functions(lowered_proc, numbering)
    return result


def _extract_functions(lowered_proc, numbering: ValueNumbering) -> dict[object, ValueExpr]:
    """Exit-value expressions for everything a caller could observe."""
    functions: dict[object, ValueExpr] = {}
    procedure = lowered_proc.procedure
    for symbol in numbering.ssa.variables:
        if symbol.type not in (Type.INTEGER, Type.LOGICAL):
            continue
        expr = numbering.exit_expr(symbol)
        if expr.is_bottom:
            continue
        if symbol.kind is SymbolKind.FORMAL:
            functions[symbol.name] = expr
        elif symbol.kind is SymbolKind.GLOBAL:
            functions[symbol.global_id] = expr
        elif symbol.kind is SymbolKind.RESULT:
            functions[RESULT_KEY] = expr
    return functions
