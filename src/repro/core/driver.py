"""The four-stage analyzer of §4.1, assembled as a shared-artifact pipeline.

::

    stage 0   parse, resolve, lower, call graph, MOD/REF   (config-independent)
    stage 1   return jump functions       (bottom-up over the call graph)
    stage 2   forward jump functions      (per procedure, uses stage 1)
    stage 3   interprocedural propagation (worklist over the call graph)
    stage 4   record: CONSTANTS sets, substitution counts, transformed text

Stage 0 depends only on the program text, never on the
:class:`~repro.core.config.AnalysisConfig`, so the study's whole
methodology — sweeping one program under many jump-function
configurations (Tables 2/3) — only needs it once per program. The
pipeline makes that explicit:

- :func:`build_stage0` produces a :class:`Stage0Artifacts` bundle;
- :class:`Stage0Cache` memoizes bundles by program identity (the source
  text) and counts hits/misses;
- :func:`analyze` runs stages 1–4 for one configuration on top of a
  bundle (consulting the module-level cache by default);
- :class:`Analyzer` parses once and sweeps many configurations over one
  bundle; :func:`sweep_programs` fans whole-program sweeps across worker
  processes for table regeneration.

Complete propagation (``config.complete``) iterates analysis with
dead-code elimination, which *mutates* the lowered program — those runs
build a private stage 0 (counted as a cache bypass) so cached artifacts
stay pristine. Per-stage wall-clock timings and the cache counters are
surfaced through :attr:`AnalysisResult.timings` for the §3.1.5 cost
benchmarks and the ``repro analyze --stats`` flag.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from repro.analysis.ssa import SSAProcedure, build_ssa, ensure_global_symbols
from repro.callgraph.graph import CallGraph, build_call_graph
from repro.callgraph.modref import ModRefInfo, compute_modref, make_call_effects
from repro.core.builder import ForwardFunctions, build_forward_jump_functions
from repro.core.complete import CompleteStats, run_complete_propagation
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.exprs import intern_counters
from repro.core.lattice import LatticeValue
from repro.core.parallel import ParallelSolveError, solve_parallel
from repro.core.returns import ReturnFunctionResult, build_return_jump_functions
from repro.core.solver import SolveResult, WarmStart, bottom_val, solve, solve_dense
from repro.core.substitute import (
    SubstitutionReport,
    compute_substitutions,
    transform_source,
)
from repro.frontend.symbols import Program, parse_program
from repro.ir.lower import LoweredProgram, lower_program
from repro.resilience.budgets import SolveBudget
from repro.resilience.cancel import (
    CancelledError,
    cancel_point,
    cancellable_budget,
)
from repro.resilience.chaos import chaos_point, maybe_corrupt_stage0
from repro.resilience.errors import (
    CODE_DEGRADED_DENSE,
    CODE_DEGRADED_FLOOR,
    CODE_DEGRADED_LADDER,
    CODE_PARALLEL_FALLBACK,
    CODE_SLAB_FALLBACK,
    CODE_STORE_FALLBACK,
    CODE_STORE_RESET,
    BudgetExhaustedError,
    DegradationRecord,
    Stage,
)
from repro.store.artifacts import MemoryStore, StoreError, StoreIndexError
from repro.store.fingerprints import config_key as _store_config_key
from repro.store.incremental import (
    IncrementalReport,
    plan_warm_start,
    publish_snapshot,
)
from repro.store.slabs import plan_slab, publish_slab


# -- stage 0: configuration-independent artifacts ----------------------------


class SSACache:
    """Memoized SSA construction, keyed by (procedure, use_mod).

    SSA form depends on the lowered CFG and on which scalars each call
    kills — i.e. on MOD information, but on nothing else in the
    configuration. Profiling shows the CFG copy inside ``build_ssa``
    dominates a configuration sweep, and stages 1 and 2 each build it, so
    one bundle serves every (jump function × returns) combination: at most
    two SSA forms per procedure ever exist (with and without MOD).
    Consumers (value numbering, SCCP, the dependence clients) never mutate
    the SSA CFG; complete propagation, which mutates the *lowered* CFGs,
    gets a private cache that is invalidated after every DCE round.
    """

    def __init__(self, lowered: LoweredProgram, modref: ModRefInfo):
        self._lowered = lowered
        self._modref = modref
        self._entries: dict[tuple[str, bool], SSAProcedure] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, use_mod: bool) -> SSAProcedure:
        key = (name, use_mod)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        effects = make_call_effects(
            self._lowered, name, self._modref if use_mod else None
        )
        ssa = build_ssa(self._lowered.procedures[name], effects)
        self._entries[key] = ssa
        return ssa

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class Stage0Artifacts:
    """Everything about a program that no configuration can change."""

    program: Program
    lowered: LoweredProgram
    graph: CallGraph
    modref: ModRefInfo
    ssa_cache: SSACache
    #: build cost, keyed like :attr:`AnalysisResult.timings` ("lower", "modref").
    timings: dict[str, float] = field(default_factory=dict)


def build_stage0(program: Program) -> Stage0Artifacts:
    """Lower a resolved program and compute its call graph and MOD/REF."""
    timings: dict[str, float] = {}
    start = time.perf_counter()
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    timings["lower"] = time.perf_counter() - start

    start = time.perf_counter()
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    timings["modref"] = time.perf_counter() - start
    return Stage0Artifacts(
        program, lowered, graph, modref, SSACache(lowered, modref), timings
    )


class Stage0Cache:
    """LRU cache of stage-0 bundles keyed by program identity.

    Identity is the program's source text: two programs with identical
    text have identical lowering, call graph, and MOD/REF (stage 0 never
    reads the configuration). ``hits``/``misses``/``bypasses`` make the
    sharing observable — the sweep tests assert stage 0 runs exactly once
    per program. Programs constructed without source text are never
    cached (there is no identity to key on).
    """

    def __init__(self, maxsize: int = 32):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        #: complete-propagation runs that built a private stage 0 because
        #: their DCE loop mutates the lowered program.
        self.bypasses = 0
        self._entries: OrderedDict[str, Stage0Artifacts] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, program: Program) -> Stage0Artifacts:
        """Fetch (or build and remember) the stage-0 bundle for ``program``."""
        key = program.source
        if not key:
            return build_stage0(program)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        artifacts = build_stage0(program)
        self._entries[key] = artifacts
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return artifacts

    def clear(self) -> None:
        self._entries.clear()

    def counters(self) -> dict[str, int]:
        return {
            "stage0_cache_hits": self.hits,
            "stage0_cache_misses": self.misses,
            "stage0_cache_bypasses": self.bypasses,
            "stage0_cache_entries": len(self._entries),
        }


#: The default process-wide cache :func:`analyze` and :class:`Analyzer` use.
GLOBAL_STAGE0_CACHE = Stage0Cache()


# -- stages 1–3: per-configuration -------------------------------------------


@dataclass
class _Artifacts:
    graph: CallGraph
    modref: ModRefInfo
    returns: ReturnFunctionResult
    forward: ForwardFunctions
    solved: SolveResult
    incremental: IncrementalReport | None = None


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    program: Program
    config: AnalysisConfig
    lowered: LoweredProgram
    call_graph: CallGraph
    modref: ModRefInfo
    returns: ReturnFunctionResult
    forward: ForwardFunctions
    solved: SolveResult
    substitutions: SubstitutionReport
    complete_stats: CompleteStats | None = None
    timings: dict[str, float] = field(default_factory=dict)
    #: True when stage 0 came out of a :class:`Stage0Cache` hit.
    stage0_cached: bool = False
    #: planned quality losses the resilience layer took (ladder steps,
    #: sparse→dense fallback, baseline floor) — empty on a healthy run.
    degradations: tuple[DegradationRecord, ...] = ()
    #: what the artifact-store pre-pass did (``None`` unless the run was
    #: requested with ``incremental=True`` and a store).
    incremental: IncrementalReport | None = None

    # -- the paper's numbers -------------------------------------------------

    @property
    def constants_found(self) -> int:
        """The Table 2/3 cell: (procedure, variable) pairs substituted."""
        return self.substitutions.pairs

    @property
    def references_substituted(self) -> int:
        return self.substitutions.references

    def constants(self, proc_name: str) -> dict[str, LatticeValue]:
        """CONSTANTS(p) with human-readable names."""
        pretty: dict[str, LatticeValue] = {}
        for key, value in self.solved.constants(proc_name.lower()).items():
            if isinstance(key, str):
                pretty[key] = value
            else:
                pretty[self.program.global_display(key)] = value
        return pretty

    def all_constants(self) -> dict[str, dict[str, LatticeValue]]:
        return {name: self.constants(name) for name in sorted(self.lowered.procedures)}

    def transformed_source(self) -> str:
        """The program text with substituted constants spliced in."""
        return transform_source(self.program.source, self.substitutions)

    def stats_report(self) -> str:
        """Per-stage timings plus solver and cache counters, rendered for
        ``repro analyze --stats``."""
        stage_keys = ("lower", "modref", "returns", "forward", "solve", "record")
        lines = ["per-stage timings:"]
        for key in stage_keys:
            if key in self.timings:
                lines.append(f"  {key:<8} {self.timings[key] * 1000.0:>9.3f} ms")
        extras = {
            key: value
            for key, value in self.timings.items()
            if key not in stage_keys and key != "stage0_cached"
        }
        lines.append("solver counters:")
        for key, value in self.solved.counters().items():
            lines.append(f"  {key:<12} {value}")
        lines.append("pipeline:")
        lines.append(f"  stage0_cached {1 if self.stage0_cached else 0}")
        for key, value in intern_counters().items():
            lines.append(f"  {key} {value}")
        for key in sorted(extras):
            lines.append(f"  {key} {extras[key]:g}")
        lines.append("resilience:")
        lines.append(f"  degradations {len(self.degradations)}")
        for record in self.degradations:
            lines.append(f"  {record.describe()}")
        if self.incremental is not None:
            lines.append("store:")
            lines.append(f"  mode {self.incremental.mode}")
            for key, value in self.incremental.counters().items():
                lines.append(f"  {key} {value}")
        return "\n".join(lines)

    def stats_json(self) -> dict:
        """The ``--profile-json`` payload: per-stage timings (ms) plus
        every solver, cache, region, and store counter as plain JSON."""
        stage_keys = ("lower", "modref", "returns", "forward", "solve", "record")
        timings_ms = {
            key: value * 1000.0
            for key, value in self.timings.items()
            if key != "stage0_cached"
        }
        payload = {
            "timings_ms": {
                key: timings_ms.pop(key) for key in stage_keys if key in timings_ms
            },
            "solver_counters": dict(self.solved.counters()),
            "pipeline": {
                "stage0_cached": 1 if self.stage0_cached else 0,
                **intern_counters(),
            },
            "resilience": {
                "degradations": [r.describe() for r in self.degradations],
            },
            "result": {
                "constants_found": self.constants_found,
                "references_substituted": self.references_substituted,
            },
        }
        payload["timings_ms"].update(timings_ms)  # extras (complete, dce, …)
        if self.incremental is not None:
            payload["store"] = {
                "mode": self.incremental.mode,
                **self.incremental.counters(),
            }
        return payload

    def resilience_diagnostics(self):
        """The RL5xx diagnostics for every degradation this run took
        (rendered by ``repro analyze`` so downgrades are never silent)."""
        return [record.diagnostic() for record in self.degradations]


#: The degradation ladder (DESIGN.md §7): each rung is strictly cheaper
#: than the one above it (§3.1.5 cost analysis), so a budget that one
#: rung exhausts may still suffice for the next.
_DEGRADATION_LADDER = (
    JumpFunctionKind.POLYNOMIAL,
    JumpFunctionKind.PASS_THROUGH,
    JumpFunctionKind.INTRAPROCEDURAL,
    JumpFunctionKind.LITERAL,
)


def _next_ladder_kind(kind: JumpFunctionKind) -> JumpFunctionKind | None:
    index = _DEGRADATION_LADDER.index(kind)
    if index + 1 < len(_DEGRADATION_LADDER):
        return _DEGRADATION_LADDER[index + 1]
    return None


def _attempt_solve(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    config: AnalysisConfig,
    budget: SolveBudget | None,
    degradations: list[DegradationRecord],
    warm: WarmStart | None = None,
) -> SolveResult:
    """Stage 3: the sparse solver, with the dense reference solver as a
    crash fallback (RL511). Budget exhaustion is *not* a crash — it
    propagates so the degradation ladder can pick a cheaper rung. The
    dense fallback always runs cold: a warm plan that provoked a crash
    must not poison the recovery path.

    ``config.parallel_regions`` first tries the wave-parallel schedule;
    any parallel failure (worker loss, pool breakage) degrades to this
    same sequential path with an RL540 record — never a crash. Parallel
    is skipped for warm starts (the wave scheduler is cold-only), for
    complete-mode rounds (DCE mutates the lowered program away from its
    source, which is what pool workers rebuild from), and for programs
    with no retained source text.
    """
    compiled = config.compiled_exprs
    try:
        if (
            config.parallel_regions
            and warm is None
            and not config.complete
            and lowered.program.source
        ):
            try:
                chaos_point(Stage.SOLVE, scope="parallel")
                return solve_parallel(
                    lowered,
                    graph,
                    forward,
                    workers=config.parallel_regions,
                    source=lowered.program.source,
                    config=config,
                    budget=budget,
                    compiled=compiled,
                )
            except BudgetExhaustedError:
                raise
            except ParallelSolveError as exc:
                degradations.append(
                    DegradationRecord(
                        code=CODE_PARALLEL_FALLBACK,
                        from_label="parallel",
                        to_label="sequential",
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                )
        chaos_point(Stage.SOLVE, scope="sparse")
        return solve(
            lowered, graph, forward, budget=budget, warm=warm,
            compiled=compiled, flat=config.flat_engine,
        )
    except (BudgetExhaustedError, CancelledError):
        # budget exhaustion feeds the ladder; cancellation aborts the
        # request — neither may be "recovered" by the dense fallback
        raise
    except Exception as exc:
        if not config.solver_fallback:
            raise
        degradations.append(
            DegradationRecord(
                code=CODE_DEGRADED_DENSE,
                from_label="sparse",
                to_label="dense",
                detail=f"{type(exc).__name__}: {exc}",
            )
        )
        chaos_point(Stage.SOLVE, scope="dense")
        return solve_dense(lowered, graph, forward, budget=budget)


def _plan_incremental(
    store,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref: ModRefInfo,
    forward: ForwardFunctions,
    degradations: list[DegradationRecord],
) -> tuple[WarmStart | None, IncrementalReport]:
    """The incremental pre-pass: load the latest snapshot, diff
    fingerprints, and plan the warm start. Any store problem degrades to
    a cold run (RL530/RL531) — never an analysis failure."""
    try:
        snapshot = store.load_snapshot(cfg_key, lowered.program.main)
    except StoreIndexError as exc:
        degradations.append(
            DegradationRecord(
                code=CODE_STORE_RESET,
                from_label="store",
                to_label="reset",
                counter="store",
                detail=str(exc),
            )
        )
        return None, IncrementalReport(mode="cold", detail="index reset")
    if snapshot is None:
        return None, IncrementalReport(mode="cold", detail="no snapshot")
    try:
        return plan_warm_start(
            store,
            snapshot,
            cfg_key=cfg_key,
            lowered=lowered,
            graph=graph,
            modref=modref,
            forward=forward,
        )
    except StoreError as exc:
        degradations.append(
            DegradationRecord(
                code=CODE_STORE_FALLBACK,
                from_label="warm",
                to_label="cold",
                counter="store",
                detail=str(exc),
            )
        )
        return None, IncrementalReport(
            mode="fallback", store_fallbacks=1, detail=str(exc)
        )


def _plan_slab(
    store,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref: ModRefInfo,
    forward: ForwardFunctions,
    degradations: list[DegradationRecord],
):
    """The flat engine's store pre-pass: load (or load-and-patch) the
    persistent slab. Any untrusted artifact degrades to a cold rebuild
    (RL532), an index reset to RL531 — never an analysis failure."""
    try:
        return plan_slab(
            store,
            cfg_key=cfg_key,
            lowered=lowered,
            graph=graph,
            modref=modref,
            forward=forward,
        )
    except StoreIndexError as exc:
        degradations.append(
            DegradationRecord(
                code=CODE_STORE_RESET,
                from_label="store",
                to_label="reset",
                counter="store",
                detail=str(exc),
            )
        )
        return None, IncrementalReport(mode="cold", detail="index reset")
    except StoreError as exc:
        degradations.append(
            DegradationRecord(
                code=CODE_SLAB_FALLBACK,
                from_label="slab",
                to_label="rebuild",
                counter="store",
                detail=str(exc),
            )
        )
        return None, IncrementalReport(
            mode="fallback", store_fallbacks=1, detail=str(exc)
        )


def _current_slab(forward: ForwardFunctions):
    """The slab the flat solve actually used, if any — a loaded one wins
    (that is what :func:`repro.core.slab.slab_for` returns first)."""
    loaded = getattr(forward, "_slab_loaded", None)
    if loaded is not None:
        return loaded
    cached = getattr(forward, "_slab", None)
    return cached[2] if cached is not None else None


def _config_stages(
    lowered: LoweredProgram,
    graph: CallGraph,
    modref: ModRefInfo,
    config: AnalysisConfig,
    timings: dict[str, float],
    ssa_cache: SSACache | None = None,
    degradations: list[DegradationRecord] | None = None,
    store=None,
    incremental: bool = False,
) -> _Artifacts:
    """Stages 1–3 for one configuration over prebuilt stage-0 artifacts.

    When the solve exhausts its :class:`SolveBudget` and the
    configuration allows degradation, the jump function walks one rung
    down :data:`_DEGRADATION_LADDER` (stages 1–2 rebuilt for the cheaper
    kind, RL510 recorded) and the solve retries with fresh fuel; below
    the last rung VAL floors to the always-sound intraprocedural
    baseline (RL512). Every step lands in ``degradations``.

    With a ``store``, a healthy solve publishes its snapshot (keyed by
    configuration and main program); with ``incremental`` too, the first
    ladder attempt warm-starts from the previous snapshot's clean
    regions. Degraded rungs always run cold, and degraded results are
    never published (only RL530/RL531 — store trouble itself — may
    accompany a publication, which is how a corrupt store self-heals).
    """
    if degradations is None:
        degradations = []
    effective = config
    if config.intraprocedural_only and config.use_return_jump_functions:
        # The baseline is *purely* intraprocedural: no information crosses
        # procedure boundaries in either direction.
        effective = replace(config, use_return_jump_functions=False)

    # A service request's cancel token rides on the budget hooks the
    # worklist loops already poll; outside the daemon this is a no-op.
    budget = cancellable_budget(SolveBudget.from_config(config))
    cfg_key = _store_config_key(effective) if store is not None else ""
    store_report: IncrementalReport | None = None
    kind = effective.jump_function
    while True:
        current = (
            effective
            if kind is effective.jump_function
            else replace(effective, jump_function=kind)
        )
        cancel_point()
        chaos_point(Stage.SSA)
        start = time.perf_counter()
        returns = build_return_jump_functions(
            lowered, graph, modref, current, ssa_cache=ssa_cache
        )
        timings["returns"] = (
            timings.get("returns", 0.0) + time.perf_counter() - start
        )

        cancel_point()
        chaos_point(Stage.JUMP_FUNCTIONS)
        start = time.perf_counter()
        forward = build_forward_jump_functions(
            lowered, modref, returns, current, ssa_cache=ssa_cache
        )
        timings["forward"] = (
            timings.get("forward", 0.0) + time.perf_counter() - start
        )

        warm: WarmStart | None = None
        if (
            store is not None
            and incremental
            and store_report is None
            and not current.intraprocedural_only
            and not current.flat_engine
            and kind is effective.jump_function
        ):
            warm, store_report = _plan_incremental(
                store, cfg_key, lowered, graph, modref, forward, degradations
            )
        if (
            store is not None
            and current.flat_engine
            and store_report is None
            and not current.intraprocedural_only
            and lowered.program.source
            and kind is effective.jump_function
        ):
            # The flat engine's warm path is the persistent slab, not the
            # boxed warm start (a warm start would route the solve back
            # to the object engine). Not gated on ``incremental``: a
            # loaded slab is bit-for-bit the slab a cold build produces,
            # so adopting it is a pure time saving, never a plan.
            start = time.perf_counter()
            slab, store_report = _plan_slab(
                store, cfg_key, lowered, graph, modref, forward, degradations
            )
            timings["slab_plan"] = (
                timings.get("slab_plan", 0.0) + time.perf_counter() - start
            )
            if slab is not None:
                try:
                    forward._slab_loaded = slab
                except AttributeError:
                    pass

        start = time.perf_counter()
        try:
            if current.intraprocedural_only:
                solved = _intraprocedural_solved(lowered)
            else:
                solved = _attempt_solve(
                    lowered, graph, forward, current, budget, degradations,
                    warm=warm,
                )
            break
        except BudgetExhaustedError as exc:
            if not config.degrade_on_budget:
                raise
            next_kind = _next_ladder_kind(kind)
            if next_kind is None:
                degradations.append(
                    DegradationRecord(
                        code=CODE_DEGRADED_FLOOR,
                        from_label=kind.value,
                        to_label="intraprocedural-baseline",
                        counter=exc.counter,
                    )
                )
                solved = _intraprocedural_solved(lowered)
                break
            degradations.append(
                DegradationRecord(
                    code=CODE_DEGRADED_LADDER,
                    from_label=kind.value,
                    to_label=next_kind.value,
                    counter=exc.counter,
                )
            )
            kind = next_kind
        finally:
            timings["solve"] = (
                timings.get("solve", 0.0) + time.perf_counter() - start
            )

    if (
        store is not None
        and not current.intraprocedural_only
        and all(
            record.code
            in (CODE_STORE_FALLBACK, CODE_STORE_RESET, CODE_SLAB_FALLBACK)
            for record in degradations
        )
    ):
        try:
            if current.flat_engine:
                # Flat runs persist the slab itself instead of the boxed
                # snapshot; a pure warm load ("slab") changed nothing, so
                # republishing would only rewrite identical artifacts.
                slab = _current_slab(forward)
                if (
                    slab is not None
                    and lowered.program.source
                    and not (
                        store_report is not None
                        and store_report.mode == "slab"
                    )
                ):
                    publish_slab(
                        store,
                        cfg_key=cfg_key,
                        lowered=lowered,
                        modref=modref,
                        forward=forward,
                        slab=slab,
                    )
            else:
                publish_snapshot(
                    store,
                    cfg_key=cfg_key,
                    lowered=lowered,
                    graph=graph,
                    modref=modref,
                    forward=forward,
                    returns_table=returns.table,
                    solved=solved,
                )
        except (StoreError, OSError, ValueError) as exc:
            degradations.append(
                DegradationRecord(
                    code=CODE_STORE_RESET,
                    from_label="publish",
                    to_label="skipped",
                    counter="store",
                    detail=str(exc),
                )
            )

    return _Artifacts(graph, modref, returns, forward, solved, store_report)


def _intraprocedural_solved(lowered: LoweredProgram) -> SolveResult:
    """The Table 3 baseline VAL: ⊥ at every entry key of every procedure
    (see :func:`repro.core.solver.bottom_val` for why DATA values are
    excluded too), and every procedure counted — the baseline measures
    each procedure alone, so reachability from the main program is moot."""
    result = SolveResult(val=bottom_val(lowered))
    result.reached.update(result.val)
    return result


def analyze(
    source: str | Program,
    config: AnalysisConfig | None = None,
    *,
    cache: Stage0Cache | None = GLOBAL_STAGE0_CACHE,
    store=None,
    incremental: bool = False,
) -> AnalysisResult:
    """Run the full analyzer over MiniFortran source (or a parsed Program).

    Stage 0 is fetched from ``cache`` (the module-level
    :data:`GLOBAL_STAGE0_CACHE` by default; pass ``cache=None`` to force a
    fresh build — the cache-correctness tests diff the two paths).

    ``store`` (an :class:`repro.store.artifacts.ArtifactStore` or
    :class:`~repro.store.artifacts.MemoryStore`) persists the run's
    jump functions and solution as a snapshot; with ``incremental=True``
    the solve warm-starts from the store's previous snapshot, re-solving
    only the regions the fingerprint diff invalidated. Complete
    propagation ignores the store entirely: its DCE loop rewrites the
    program between rounds, so there is no stable identity to key on.
    """
    config = config or AnalysisConfig()
    cancel_point()
    program = parse_program(source) if isinstance(source, str) else source
    chaos_point(Stage.FRONTEND)
    timings: dict[str, float] = {}
    degradations: list[DegradationRecord] = []

    complete_stats: CompleteStats | None = None
    stage0_cached = False
    chaos_point(Stage.LOWERING)
    if config.complete:
        # The DCE loop mutates the lowered program: give it a private
        # stage 0 and never publish the result to the cache.
        if cache is not None:
            cache.bypasses += 1
        stage0 = build_stage0(program)
        timings.update(stage0.timings)
        # Each DCE round may mutate the lowered CFGs, so SSA forms are only
        # shareable within a round: build a fresh cache per pipeline call.
        artifacts, complete_stats = run_complete_propagation(
            stage0.lowered,
            stage0.graph,
            stage0.modref,
            config,
            lambda lowered, graph, modref: _config_stages(
                lowered, graph, modref, config, timings,
                ssa_cache=SSACache(lowered, modref),
                degradations=degradations,
            ),
            timings=timings,
        )
    else:
        if cache is not None:
            hits_before = cache.hits
            stage0 = cache.get(program)
            stage0_cached = cache.hits > hits_before
            # chaos corruption clobbers the live cache entry, exactly
            # like a real poisoned cache would persist across fetches
            maybe_corrupt_stage0(stage0)
        else:
            stage0 = build_stage0(program)
        timings.update(stage0.timings)
        artifacts = _config_stages(
            stage0.lowered, stage0.graph, stage0.modref, config, timings,
            ssa_cache=stage0.ssa_cache,
            degradations=degradations,
            store=store,
            incremental=incremental,
        )

    cancel_point()
    chaos_point(Stage.SUBSTITUTE)
    start = time.perf_counter()
    substitutions = compute_substitutions(artifacts.forward, artifacts.solved)
    timings["record"] = time.perf_counter() - start
    timings["stage0_cached"] = 1.0 if stage0_cached else 0.0

    return AnalysisResult(
        program=stage0.program,
        config=config,
        lowered=stage0.lowered,
        call_graph=artifacts.graph,
        modref=artifacts.modref,
        returns=artifacts.returns,
        forward=artifacts.forward,
        solved=artifacts.solved,
        substitutions=substitutions,
        complete_stats=complete_stats,
        timings=timings,
        stage0_cached=stage0_cached,
        degradations=tuple(degradations),
        incremental=artifacts.incremental,
    )


class Analyzer:
    """Parse once, build stage 0 once, analyze under many configurations.

    Every run publishes its snapshot to ``store`` (an in-process
    :class:`~repro.store.artifacts.MemoryStore` by default, so nothing
    touches disk unless the caller passes an
    :class:`~repro.store.artifacts.ArtifactStore`), which is what makes
    :meth:`reanalyze` work out of the box: edit the source, and only the
    regions the fingerprint diff invalidates are re-solved.
    """

    def __init__(
        self,
        source: str | Program,
        cache: Stage0Cache | None = None,
        store=None,
    ):
        self.program = parse_program(source) if isinstance(source, str) else source
        self.cache = cache if cache is not None else GLOBAL_STAGE0_CACHE
        self.store = store if store is not None else MemoryStore()

    @property
    def stage0(self) -> Stage0Artifacts:
        """The shared configuration-independent artifacts."""
        return self.cache.get(self.program)

    def run(
        self,
        config: AnalysisConfig | None = None,
        *,
        incremental: bool = False,
    ) -> AnalysisResult:
        return analyze(
            self.program,
            config,
            cache=self.cache,
            store=self.store,
            incremental=incremental,
        )

    def reanalyze(
        self,
        new_source: str | Program,
        config: AnalysisConfig | None = None,
    ) -> AnalysisResult:
        """Swap in edited source and re-run incrementally.

        The previous :meth:`run` (or ``reanalyze``) left a snapshot in
        :attr:`store`; this run diffs procedure fingerprints against it,
        re-solves only the invalidated regions, and adopts the stored
        fixed points for everything clean. The result is equivalent to a
        from-scratch :func:`analyze` of ``new_source`` — the property
        tests assert byte-identical CONSTANTS sets and substitution
        counts — just cheaper (see ``result.incremental`` and the
        ``regions_warm`` solver counter).
        """
        self.program = (
            parse_program(new_source)
            if isinstance(new_source, str)
            else new_source
        )
        return self.run(config, incremental=True)

    def sweep(
        self, configs: dict[str, AnalysisConfig]
    ) -> dict[str, AnalysisResult]:
        """Run a named family of configurations (e.g. a table's columns).

        Every non-``complete`` configuration shares one stage-0 bundle;
        the whole Table 2 sweep lowers and summarizes the program once.
        """
        return {name: self.run(config) for name, config in configs.items()}


# -- multi-program sweeps ----------------------------------------------------


@dataclass(frozen=True)
class SweepSummary:
    """The picklable essence of one (program, configuration) cell."""

    constants_found: int
    references_substituted: int
    #: procedure → {pretty entry name → constant value}.
    constants: dict[str, dict[str, LatticeValue]]
    timings: dict[str, float]
    solver_counters: dict[str, int]
    #: RL5xx degradation descriptions (empty on a healthy run).
    degradations: tuple[str, ...] = ()
    #: stage-0 cache counter deltas observed while producing this cell,
    #: measured in whichever process actually ran it — so ``--stats`` is
    #: truthful in both in-process and worker-pool sweeps.
    cache_counters: dict[str, int] = field(default_factory=dict)


def summarize(
    result: AnalysisResult, *, cache_counters: dict[str, int] | None = None
) -> SweepSummary:
    return SweepSummary(
        constants_found=result.constants_found,
        references_substituted=result.references_substituted,
        constants=result.all_constants(),
        timings=dict(result.timings),
        solver_counters=result.solved.counters(),
        degradations=tuple(r.describe() for r in result.degradations),
        cache_counters=dict(cache_counters or {}),
    )


class SweepError(RuntimeError):
    """A :func:`sweep_programs` call finished with failed cells.

    Carries the full :class:`~repro.resilience.executor.SweepOutcome` so
    callers that want partial results can still render them; callers of
    the strict legacy API get an exception instead of silent holes.
    """

    def __init__(self, outcome):
        self.outcome = outcome
        programs = ", ".join(sorted({f.program for f in outcome.failures}))
        super().__init__(
            f"sweep finished with {len(outcome.failures)} failure(s) "
            f"({programs}); see SweepError.outcome for the records"
        )


def sweep_programs(
    sources: dict[str, str],
    configs: dict[str, AnalysisConfig],
    processes: int | None = None,
) -> dict[str, dict[str, SweepSummary]]:
    """Sweep many programs through many configurations.

    ``sources`` maps a display name to program text. With ``processes``
    unset the sweep runs in this process (sharing the global stage-0
    cache); with ``processes >= 1`` programs fan out across worker
    processes — each worker pays stage 0 once per program and ships back
    only the picklable :class:`SweepSummary` cells, which is how the
    12-program table regeneration parallelizes.

    This is the strict facade over the fault-tolerant executor
    (:func:`repro.resilience.executor.run_sweep`): every cell must
    succeed or the whole call raises :class:`SweepError`. Callers that
    want partial results, timeouts, retries, or the checkpoint journal
    use ``run_sweep`` directly.
    """
    # Late import: the executor imports this module.
    from repro.resilience.executor import SweepPolicy, run_sweep

    policy = SweepPolicy(
        processes=processes if processes and processes > 0 else None
    )
    outcome = run_sweep(sources, configs, policy)
    if outcome.failures:
        raise SweepError(outcome)
    return outcome.summaries
