"""The four-stage analyzer of §4.1, assembled.

::

    stage 0   parse, resolve, lower, call graph, MOD/REF
    stage 1   return jump functions       (bottom-up over the call graph)
    stage 2   forward jump functions      (per procedure, uses stage 1)
    stage 3   interprocedural propagation (worklist over the call graph)
    stage 4   record: CONSTANTS sets, substitution counts, transformed text

:func:`analyze` runs one configuration over one program;
:class:`Analyzer` parses once and runs many configurations (how the
benchmark harness sweeps Table 2/3 columns). Per-stage wall-clock timings
are captured for the §3.1.5 cost benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.ssa import ensure_global_symbols
from repro.callgraph.graph import CallGraph, build_call_graph
from repro.callgraph.modref import ModRefInfo, compute_modref
from repro.core.builder import ForwardFunctions, build_forward_jump_functions
from repro.core.complete import CompleteStats, run_complete_propagation
from repro.core.config import AnalysisConfig
from repro.core.lattice import BOTTOM, LatticeValue
from repro.core.returns import ReturnFunctionResult, build_return_jump_functions
from repro.core.solver import SolveResult, solve
from repro.core.substitute import (
    SubstitutionReport,
    compute_substitutions,
    transform_source,
)
from repro.frontend.astnodes import Type
from repro.frontend.symbols import Program, parse_program
from repro.ir.lower import LoweredProgram, lower_program


@dataclass
class _Artifacts:
    graph: CallGraph
    modref: ModRefInfo
    returns: ReturnFunctionResult
    forward: ForwardFunctions
    solved: SolveResult


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    program: Program
    config: AnalysisConfig
    lowered: LoweredProgram
    call_graph: CallGraph
    modref: ModRefInfo
    returns: ReturnFunctionResult
    forward: ForwardFunctions
    solved: SolveResult
    substitutions: SubstitutionReport
    complete_stats: CompleteStats | None = None
    timings: dict[str, float] = field(default_factory=dict)

    # -- the paper's numbers -------------------------------------------------

    @property
    def constants_found(self) -> int:
        """The Table 2/3 cell: (procedure, variable) pairs substituted."""
        return self.substitutions.pairs

    @property
    def references_substituted(self) -> int:
        return self.substitutions.references

    def constants(self, proc_name: str) -> dict[str, LatticeValue]:
        """CONSTANTS(p) with human-readable names."""
        pretty: dict[str, LatticeValue] = {}
        for key, value in self.solved.constants(proc_name.lower()).items():
            if isinstance(key, str):
                pretty[key] = value
            else:
                pretty[self.program.global_display(key)] = value
        return pretty

    def all_constants(self) -> dict[str, dict[str, LatticeValue]]:
        return {name: self.constants(name) for name in sorted(self.lowered.procedures)}

    def transformed_source(self) -> str:
        """The program text with substituted constants spliced in."""
        return transform_source(self.program.source, self.substitutions)


def _run_stages(
    lowered: LoweredProgram, config: AnalysisConfig, timings: dict[str, float]
) -> _Artifacts:
    start = time.perf_counter()
    graph = build_call_graph(lowered)
    modref = compute_modref(lowered, graph)
    timings["modref"] = timings.get("modref", 0.0) + time.perf_counter() - start

    effective = config
    if config.intraprocedural_only and config.use_return_jump_functions:
        # The baseline is *purely* intraprocedural: no information crosses
        # procedure boundaries in either direction.
        effective = AnalysisConfig(
            jump_function=config.jump_function,
            use_return_jump_functions=False,
            use_mod=config.use_mod,
            intraprocedural_only=True,
        )

    start = time.perf_counter()
    returns = build_return_jump_functions(lowered, graph, modref, effective)
    timings["returns"] = timings.get("returns", 0.0) + time.perf_counter() - start

    start = time.perf_counter()
    forward = build_forward_jump_functions(lowered, modref, returns, effective)
    timings["forward"] = timings.get("forward", 0.0) + time.perf_counter() - start

    start = time.perf_counter()
    if effective.intraprocedural_only:
        solved = _intraprocedural_solved(lowered)
    else:
        solved = solve(lowered, graph, forward)
    timings["solve"] = timings.get("solve", 0.0) + time.perf_counter() - start

    return _Artifacts(graph, modref, returns, forward, solved)


def _intraprocedural_solved(lowered: LoweredProgram) -> SolveResult:
    """A degenerate VAL: nothing is known on entry anywhere, and every
    procedure is counted (the baseline measures each procedure alone)."""
    from repro.core.solver import initial_val

    result = SolveResult(val=initial_val(lowered))
    for name, env in result.val.items():
        for key in env:
            env[key] = BOTTOM
        result.reached.add(name)
    return result


def analyze(
    source: str | Program, config: AnalysisConfig | None = None
) -> AnalysisResult:
    """Run the full analyzer over MiniFortran source (or a parsed Program)."""
    config = config or AnalysisConfig()
    program = parse_program(source) if isinstance(source, str) else source
    timings: dict[str, float] = {}

    start = time.perf_counter()
    lowered = lower_program(program)
    ensure_global_symbols(lowered)
    timings["lower"] = time.perf_counter() - start

    complete_stats: CompleteStats | None = None
    if config.complete:
        artifacts, complete_stats = run_complete_propagation(
            lowered,
            config,
            lambda lowered_now: _run_stages(lowered_now, config, timings),
        )
    else:
        artifacts = _run_stages(lowered, config, timings)

    start = time.perf_counter()
    substitutions = compute_substitutions(artifacts.forward, artifacts.solved)
    timings["record"] = time.perf_counter() - start

    return AnalysisResult(
        program=program,
        config=config,
        lowered=lowered,
        call_graph=artifacts.graph,
        modref=artifacts.modref,
        returns=artifacts.returns,
        forward=artifacts.forward,
        solved=artifacts.solved,
        substitutions=substitutions,
        complete_stats=complete_stats,
        timings=timings,
    )


class Analyzer:
    """Parse once, analyze under many configurations."""

    def __init__(self, source: str | Program):
        self.program = parse_program(source) if isinstance(source, str) else source

    def run(self, config: AnalysisConfig | None = None) -> AnalysisResult:
        return analyze(self.program, config)

    def sweep(
        self, configs: dict[str, AnalysisConfig]
    ) -> dict[str, AnalysisResult]:
        """Run a named family of configurations (e.g. a table's columns)."""
        return {name: self.run(config) for name, config in configs.items()}
