"""Forward jump function generation (stage 2 of the analyzer, §4.1).

For every call site, project the value-numbering expression of each actual
parameter — and of each implicitly passed global — onto the configured
jump-function kind. The stage-1 return jump functions feed the value
numbering, so constants surviving earlier calls are visible here (this is
the "second evaluation" of each return jump function the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.ssa import SSAProcedure, build_ssa
from repro.analysis.valuenum import ValueNumbering, value_number
from repro.callgraph.modref import ModRefInfo, make_call_effects
from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.engine import SupportIndex, build_support_index
from repro.core.jump_functions import CallSiteFunctions, project
from repro.core.returns import ReturnFunctionResult
from repro.frontend.astnodes import Type
from repro.frontend.symbols import SymbolKind
from repro.ir.instructions import ArgumentKind, Const
from repro.ir.lower import LoweredProgram


@dataclass
class ForwardFunctions:
    """Stage-2 output: jump functions per site, plus the analysis
    artifacts later stages reuse (SSA form, value numbering, and the
    support-dependency index the sparse solvers run on)."""

    sites: dict[int, CallSiteFunctions] = field(default_factory=dict)
    ssas: dict[str, SSAProcedure] = field(default_factory=dict)
    numberings: dict[str, ValueNumbering] = field(default_factory=dict)
    #: precomputed by :func:`build_forward_jump_functions`; built lazily
    #: for hand-assembled site tables (tests).
    index: SupportIndex | None = None

    def site(self, site_id: int) -> CallSiteFunctions:
        return self.sites[site_id]

    def support_index(self, lowered: LoweredProgram) -> SupportIndex:
        """The reverse dependency index over these jump functions."""
        if self.index is None:
            self.index = build_support_index(lowered, self.sites)
        return self.index

    def total_cost(self) -> int:
        return sum(site.total_cost() for site in self.sites.values())


def build_forward_jump_functions(
    lowered: LoweredProgram,
    modref: ModRefInfo,
    returns: ReturnFunctionResult,
    config: AnalysisConfig,
    ssa_cache=None,
) -> ForwardFunctions:
    """Stage 2: construct every call site's forward jump functions.

    ``ssa_cache`` (a :class:`repro.core.driver.SSACache`, or anything with
    its ``get(name, use_mod)`` shape) reuses the SSA forms stage 1 built —
    SSA depends only on MOD information, not on the jump-function kind.
    """
    result = ForwardFunctions()
    active_modref = modref if config.use_mod else None
    rjf_table = returns.table if config.use_return_jump_functions else {}

    scalar_globals = {
        gid: gvar
        for gid, gvar in lowered.program.globals.items()
        if not gvar.is_array and gvar.type in (Type.INTEGER, Type.LOGICAL)
    }

    for name, lowered_proc in lowered.procedures.items():
        if ssa_cache is not None:
            ssa = ssa_cache.get(name, config.use_mod)
        else:
            effects = make_call_effects(lowered, name, active_modref)
            ssa = build_ssa(lowered_proc, effects)
        numbering = value_number(
            ssa, lowered, rjf_table, config.compose_return_functions
        )
        result.ssas[name] = ssa
        result.numberings[name] = numbering

        global_symbols = {
            s.global_id: s
            for s in ssa.variables
            if s.kind is SymbolKind.GLOBAL and s.global_id in scalar_globals
        }

        for call in ssa.calls():
            site = CallSiteFunctions(
                site_id=call.site_id, caller=name, callee=call.callee
            )
            callee = lowered.procedures[call.callee].procedure
            for formal, arg in zip(callee.formals, call.args):
                if formal.is_array:
                    continue  # arrays carry no lattice value
                if formal.type not in (Type.INTEGER, Type.LOGICAL):
                    continue
                expr = numbering.argument_expr(arg)
                is_literal = (
                    arg.kind is ArgumentKind.VALUE
                    and isinstance(arg.value, Const)
                    and arg.value.type in (Type.INTEGER, Type.LOGICAL)
                )
                site.formals[formal.name] = project(
                    expr, config.jump_function, is_literal_actual=is_literal
                )
            for gid, symbol in global_symbols.items():
                expr = numbering.global_expr_at(call, symbol)
                site.globals[gid] = project(
                    expr, config.jump_function, is_global=True
                )
            result.sites[call.site_id] = site
    # Precompute the support-dependency index here, in stage 2, so the
    # sparse solvers only pay for propagation (and repeated solves over
    # one ForwardFunctions share the index).
    result.support_index(lowered)
    return result
