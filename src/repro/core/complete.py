"""Complete propagation (Table 3, column 3): iterate interprocedural
constant propagation with dead-code elimination.

Each round: analyze → fold branches on interprocedural constants → remove
unreachable code → delete dead stores → if anything changed, reset all
CONSTANTS to ⊤ and re-analyze the transformed program from scratch
("In each case, only one pass of dead code elimination was needed", §4.2
— the loop typically runs two analysis rounds, the second confirming a
fixpoint).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.dce import DCEStats, eliminate_dead_code
from repro.callgraph.graph import build_call_graph
from repro.callgraph.modref import compute_modref
from repro.ir.lower import LoweredProgram, refresh_call_sites


@dataclass
class CompleteStats:
    """Aggregate DCE activity across complete-propagation rounds."""

    rounds: int = 0
    dce_rounds_with_changes: int = 0
    folded_branches: int = 0
    removed_blocks: int = 0
    removed_stores: int = 0
    per_round: list[dict[str, DCEStats]] = field(default_factory=list)
    #: wall-clock spent rebuilding the call graph and MOD/REF after
    #: mutating rounds (the only stage-0 work complete mode repeats).
    rebuild_seconds: float = 0.0


def run_complete_propagation(
    lowered: LoweredProgram,
    graph,
    modref,
    config,
    run_pipeline,
    timings: dict[str, float] | None = None,
) -> tuple[object, CompleteStats]:
    """Drive the analyze/DCE loop over a private stage-0 bundle.

    ``run_pipeline(lowered, graph, modref)`` must run stages 1–3 and
    return an artifacts object with ``solved`` and ``forward`` attributes.
    The caller supplies the initial call graph and MOD/REF; they are
    rebuilt here only after a round whose DCE actually mutated the
    program, so stable rounds share the previous round's summaries.
    Returns the artifacts of the final (stable) round. Mutates ``lowered``
    in place."""
    stats = CompleteStats()
    while True:
        artifacts = run_pipeline(lowered, graph, modref)
        stats.rounds += 1
        if stats.rounds > config.max_complete_rounds:
            return artifacts, stats
        round_stats: dict[str, DCEStats] = {}
        any_change = False
        for name in sorted(artifacts.solved.reached):
            numbering = artifacts.forward.numberings.get(name)
            if numbering is None:
                continue
            proc_stats = eliminate_dead_code(
                lowered.procedures[name],
                numbering.expr_of,
                artifacts.solved.val[name],
            )
            round_stats[name] = proc_stats
            if proc_stats.any_change:
                any_change = True
            stats.folded_branches += proc_stats.folded_branches
            stats.removed_blocks += proc_stats.removed_blocks
            stats.removed_stores += proc_stats.removed_stores
        stats.per_round.append(round_stats)
        if not any_change:
            return artifacts, stats
        stats.dce_rounds_with_changes += 1
        start = time.perf_counter()
        refresh_call_sites(lowered)
        graph = build_call_graph(lowered)
        modref = compute_modref(lowered, graph)
        elapsed = time.perf_counter() - start
        stats.rebuild_seconds += elapsed
        if timings is not None:
            timings["modref"] = timings.get("modref", 0.0) + elapsed
