"""Complete propagation (Table 3, column 3): iterate interprocedural
constant propagation with dead-code elimination.

Each round: analyze → fold branches on interprocedural constants → remove
unreachable code → delete dead stores → if anything changed, reset all
CONSTANTS to ⊤ and re-analyze the transformed program from scratch
("In each case, only one pass of dead code elimination was needed", §4.2
— the loop typically runs two analysis rounds, the second confirming a
fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dce import DCEStats, eliminate_dead_code
from repro.ir.lower import LoweredProgram, refresh_call_sites


@dataclass
class CompleteStats:
    """Aggregate DCE activity across complete-propagation rounds."""

    rounds: int = 0
    dce_rounds_with_changes: int = 0
    folded_branches: int = 0
    removed_blocks: int = 0
    removed_stores: int = 0
    per_round: list[dict[str, DCEStats]] = field(default_factory=list)


def run_complete_propagation(
    lowered: LoweredProgram,
    config,
    run_pipeline,
) -> tuple[object, CompleteStats]:
    """Drive the analyze/DCE loop. ``run_pipeline(lowered)`` must run
    stages 1–3 and return an artifacts object with ``solved`` and
    ``forward`` attributes. Returns the artifacts of the final (stable)
    round. Mutates ``lowered`` in place."""
    stats = CompleteStats()
    while True:
        artifacts = run_pipeline(lowered)
        stats.rounds += 1
        if stats.rounds > config.max_complete_rounds:
            return artifacts, stats
        round_stats: dict[str, DCEStats] = {}
        any_change = False
        for name in sorted(artifacts.solved.reached):
            numbering = artifacts.forward.numberings.get(name)
            if numbering is None:
                continue
            proc_stats = eliminate_dead_code(
                lowered.procedures[name],
                numbering.expr_of,
                artifacts.solved.val[name],
            )
            round_stats[name] = proc_stats
            if proc_stats.any_change:
                any_change = True
            stats.folded_branches += proc_stats.folded_branches
            stats.removed_blocks += proc_stats.removed_blocks
            stats.removed_stores += proc_stats.removed_stores
        stats.per_round.append(round_stats)
        if not any_change:
            return artifacts, stats
        stats.dce_rounds_with_changes += 1
        refresh_call_sites(lowered)
