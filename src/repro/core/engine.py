"""Sparse delta-driven propagation engine — the shared stage-3 core.

Both stage-3 solvers (:func:`repro.core.solver.solve` at procedure
granularity, :func:`repro.core.binding_solver.solve_binding_graph` at
binding granularity) drive the same machinery:

- a :class:`SupportIndex`, precomputed by the stage-2 builder, that maps
  each caller entry key to the ``(site, callee key)`` jump-function
  bindings whose ``support()`` reads it — the reverse of the paper's §2
  support sets, in the spirit of Wegman–Zadeck SSA-edge-driven SCCP;
- a :class:`DeltaEngine` that seeds each procedure's call sites exactly
  once when the procedure is first reached, then re-evaluates a jump
  function only when one of its support keys actually *lowered* (a
  "delta"), memoizing evaluations by interned-expression identity plus
  the expression's support-slice of the environment.

The §3.1.5 cost model charges a propagation pass the sum of the
evaluated jump functions' costs; the delta discipline makes the engine's
``evaluations`` counter track that quantity instead of the dense
re-evaluate-everything upper bound. ⊥ jump functions contribute their
one ⊥ meet without ever being evaluated, and a binding that has already
fallen to ⊥ is never evaluated into again (both counted under
``bottom_skips``); callee keys no site binds are killed once at seed
time (counted under ``skipped``, not ``evaluations``).

The engine mutates a VAL mapping in place and reports through any object
carrying the counter attributes listed in :data:`ENGINE_COUNTERS`
(:class:`repro.core.solver.SolveResult` does). Because every evaluation
is a monotone function of the caller environment and every lowering is
re-propagated, any drain order reaches the same greatest fixpoint as the
dense reference solver — the suite cross-checks bit-identical VAL sets.

This module is the *object* engine: boxed lattice values in dicts keyed
by entry keys, :class:`BindingEdge` instances in dict-of-tuples. It
stays the semantic reference (and the only engine sanitizers and warm
starts run on). :mod:`repro.core.slab` flattens the same
:class:`SupportIndex` into integer-coded arrays for large corpora;
``build_slab`` consumes the ``seeds``/``kills``/``dependents``/
``callees`` structure produced here, so the two engines cannot drift on
which edges exist.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.exprs import (
    INTERN_TABLE,
    ConstExpr,
    EntryExpr,
    EntryKey,
    InternTable,
    ValueExpr,
    compile_expr,
)
from repro.core.jump_functions import CallSiteFunctions
from repro.core.lattice import BOTTOM, TOP, LatticeValue, meet
from repro.frontend.astnodes import Type
from repro.ir.lower import LoweredProgram

#: (procedure, entry key) — one node of the binding multi-graph.
Binding = tuple[str, EntryKey]

#: Counter attributes the engine increments on its stats object.
ENGINE_COUNTERS = (
    "evaluations",
    "meets",
    "deltas",
    "skipped",
    "memo_hits",
    "memo_misses",
    "bottom_skips",
    "kernel_compiles",
    "kernel_hits",
)

_MISSING = object()


def _memo_value(value: LatticeValue) -> tuple:
    """A memo-slice element: the value plus its class, so a LOGICAL
    ``.true.`` never aliases an INTEGER ``1`` (True == 1 in Python)."""
    return (value.__class__, value)


def entry_keys(lowered: LoweredProgram) -> dict[str, list[EntryKey]]:
    """Each procedure's propagated entry keys: scalar INTEGER/LOGICAL
    formals plus every scalar global (paper §2, footnote 1)."""
    scalar_gids = [
        gid
        for gid, gvar in lowered.program.globals.items()
        if not gvar.is_array and gvar.type in (Type.INTEGER, Type.LOGICAL)
    ]
    keys: dict[str, list[EntryKey]] = {}
    for name, lowered_proc in lowered.procedures.items():
        proc_keys: list[EntryKey] = [
            formal.name
            for formal in lowered_proc.procedure.formals
            if not formal.is_array
            and formal.type in (Type.INTEGER, Type.LOGICAL)
        ]
        proc_keys.extend(scalar_gids)
        keys[name] = proc_keys
    return keys


@dataclass(frozen=True, slots=True)
class BindingEdge:
    """One (call site, callee entry key) jump-function binding.

    ``const`` hoists a constant jump function's folded value to index
    construction (stage 2): §3.1.5 charges building such a function, not
    re-deriving its value every pass, so the engine transfers ``const``
    by meet alone — no solve-time evaluation at all. ``None`` means the
    function genuinely reads the environment (or is ⊥).
    """

    site_id: int
    caller: str
    callee: str
    key: EntryKey
    expr: ValueExpr
    #: the expression's support keys in deterministic first-use order —
    #: the environment slice that keys the evaluation memo.
    support: tuple[EntryKey, ...]
    #: folded value for build-time-constant jump functions, else None.
    const: LatticeValue | None


class SupportIndex:
    """The builder-precomputed dependency structure of one configuration's
    forward jump functions.

    ``seeds[p]``
        every binding edge at a call site inside ``p`` (evaluated once
        when ``p`` is first reached).
    ``kills[p]``
        ``(callee, key)`` pairs for callee entry keys some site in ``p``
        binds *no* jump function for — each is met with ⊥ once at seed.
    ``dependents[(p, k)]``
        the edges whose jump-function support reads ``p``'s entry key
        ``k`` — the fan-out of one delta.
    ``callees[p]``
        distinct callees of ``p``'s sites, for reachability.
    """

    __slots__ = ("seeds", "kills", "dependents", "callees")

    def __init__(
        self,
        seeds: dict[str, tuple[BindingEdge, ...]],
        kills: dict[str, tuple[Binding, ...]],
        dependents: dict[Binding, tuple[BindingEdge, ...]],
        callees: dict[str, tuple[str, ...]],
    ):
        self.seeds = seeds
        self.kills = kills
        self.dependents = dependents
        self.callees = callees

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self.seeds.values())


class RegionPartition:
    """The :class:`SupportIndex` split along region boundaries.

    Region-scheduled solves converge one SCC at a time, so a binding
    edge whose callee sits in a *different* region than its caller never
    needs to see an intermediate caller environment: every jump function
    is monotone, and the caller's region is converged before the
    callee's region starts, so evaluating the edge once with the
    caller's *final* environment meets the identical value into the
    callee that repeated intermediate evaluations would have (each
    intermediate result only re-lowers toward the final one). The
    partition therefore routes intra-region edges through the normal
    seed/delta discipline and defers every cross-region edge and kill to
    one :meth:`DeltaEngine.flush_region` call at region end.
    """

    __slots__ = (
        "internal_seeds",
        "external_seeds",
        "internal_kills",
        "external_kills",
        "internal_dependents",
        "region_of",
    )

    def __init__(self, index: SupportIndex, region_of: Mapping[str, int]):
        self.region_of = region_of
        self.internal_seeds: dict[str, tuple[BindingEdge, ...]] = {}
        self.external_seeds: dict[str, tuple[BindingEdge, ...]] = {}
        for proc, edges in index.seeds.items():
            home = region_of[proc]
            internal = tuple(
                edge for edge in edges if region_of[edge.callee] == home
            )
            external = tuple(
                edge for edge in edges if region_of[edge.callee] != home
            )
            if internal:
                self.internal_seeds[proc] = internal
            if external:
                self.external_seeds[proc] = external
        self.internal_kills: dict[str, tuple[Binding, ...]] = {}
        self.external_kills: dict[str, tuple[Binding, ...]] = {}
        for proc, pairs in index.kills.items():
            home = region_of[proc]
            internal = tuple(
                pair for pair in pairs if region_of[pair[0]] == home
            )
            external = tuple(
                pair for pair in pairs if region_of[pair[0]] != home
            )
            if internal:
                self.internal_kills[proc] = internal
            if external:
                self.external_kills[proc] = external
        self.internal_dependents: dict[Binding, tuple[BindingEdge, ...]] = {}
        for binding, edges in index.dependents.items():
            home = region_of[binding[0]]
            internal = tuple(
                edge for edge in edges if region_of[edge.callee] == home
            )
            if internal:
                self.internal_dependents[binding] = internal


def build_support_index(
    lowered: LoweredProgram, sites: Mapping[int, CallSiteFunctions]
) -> SupportIndex:
    """Precompute the support-dependency index for a site table (stage 2)."""
    keys_of = entry_keys(lowered)
    seeds: dict[str, list[BindingEdge]] = defaultdict(list)
    kills: dict[str, list[Binding]] = defaultdict(list)
    dependents: dict[Binding, list[BindingEdge]] = defaultdict(list)
    callees: dict[str, list[str]] = defaultdict(list)

    for site_id, site in sites.items():
        caller, callee = site.caller, site.callee
        if callee not in callees[caller]:
            callees[caller].append(callee)
        callee_keys = keys_of.get(callee, ())
        callee_key_set = set(callee_keys)
        bound: set[EntryKey] = set()
        for key, function in site.all_functions():
            if key not in callee_key_set:
                continue  # defensive: arrays/REALs carry no lattice value
            bound.add(key)
            expr = function.expr
            const = expr.value if expr.__class__ is ConstExpr else None
            edge = BindingEdge(
                site_id, caller, callee, key, expr,
                function.support_order(), const,
            )
            seeds[caller].append(edge)
            for support_key in edge.support:
                dependents[(caller, support_key)].append(edge)
        for key in callee_keys:
            if key not in bound:
                kills[caller].append((callee, key))

    return SupportIndex(
        {proc: tuple(edges) for proc, edges in seeds.items()},
        {proc: tuple(pairs) for proc, pairs in kills.items()},
        {binding: tuple(edges) for binding, edges in dependents.items()},
        {proc: tuple(names) for proc, names in callees.items()},
    )


class DeltaEngine:
    """Evaluate-and-meet over a :class:`SupportIndex`, with memoization.

    One engine serves one solve: it owns the evaluation memo and mutates
    ``val`` in place. The memo key — ``(generation, id(expr), support
    slice)`` — is sound because expressions are hash-consed (structural
    equality implies identity for smart-constructor-built trees) and
    ``evaluate`` reads nothing outside the support slice; the value class
    rides along in the slice so a LOGICAL ``.true.`` never aliases an
    INTEGER ``1``, and the intern table's generation counter rides along
    so a :func:`repro.core.exprs.clear_intern_table` mid-solve can never
    alias a recycled ``id`` to a stale entry.

    ``compiled=True`` routes polynomial evaluations through
    :func:`repro.core.exprs.compile_expr` closures instead of the
    ``evaluate`` tree walk (value-identical by construction); the engine
    counts top-level kernel cache misses/hits as
    ``kernel_compiles``/``kernel_hits`` on its stats object.

    ``sanitizer`` is the optional lattice-invariant observer (duck-typed
    to :class:`repro.diagnostics.sanitizer.LatticeSanitizer`; the engine
    deliberately does not import it): when attached, every transfer is
    reported through ``observe_transfer(site_id, callee, key, incoming)``
    and every VAL mutation — including seed-time kills — through
    ``observe_update(proc, key, old, new)``. Detached (the default), the
    hooks cost one ``is not None`` test per edge.

    ``budget`` (a :class:`repro.resilience.budgets.SolveBudget`, also
    duck-typed) caps evaluation/meet fuel, checked once per seed or
    delta batch — off the per-edge hot path, so a runaway solve overruns
    its cap by at most one batch before the
    :class:`~repro.resilience.errors.BudgetExhaustedError` fires.
    """

    __slots__ = (
        "_index",
        "_val",
        "_stats",
        "_memo",
        "_sanitizer",
        "_budget",
        "_partition",
        "_seeds",
        "_kills",
        "_dependents",
        "_compiled",
        "_table",
    )

    def __init__(
        self,
        index: SupportIndex,
        val: dict[str, dict[EntryKey, LatticeValue]],
        stats,
        sanitizer=None,
        budget=None,
        partition: RegionPartition | None = None,
        compiled: bool = False,
        table: InternTable | None = None,
    ):
        self._index = index
        self._val = val
        self._stats = stats
        self._memo: dict[tuple, LatticeValue] = {}
        self._sanitizer = sanitizer
        self._budget = budget
        self._partition = partition
        self._compiled = compiled
        self._table = INTERN_TABLE if table is None else table
        # With a partition, seed/delta traffic is intra-region only;
        # cross-region edges wait for flush_region. Without one (the
        # legacy schedule) the full index drives everything.
        if partition is None:
            self._seeds = index.seeds
            self._kills = index.kills
            self._dependents = index.dependents
        else:
            self._seeds = partition.internal_seeds
            self._kills = partition.internal_kills
            self._dependents = partition.internal_dependents

    def callees(self, caller: str) -> tuple[str, ...]:
        return self._index.callees.get(caller, ())

    def seed(self, caller: str) -> dict[str, dict[EntryKey, None]]:
        """First visit of ``caller``: evaluate every jump function at its
        sites once and kill unbound callee keys. Returns the lowered
        callee bindings grouped by callee, each callee's keys distinct
        and in evaluation order (insertion-ordered mappings).

        Every edge of every solve crosses this loop exactly once, so the
        edge transfer is inlined: counters accumulate in locals (flushed
        once at the end) and the ``meet(⊤, x) = x`` identity is applied
        without a call — at seed time nearly every binding still sits at
        ⊤. The delta path (:meth:`apply_deltas`) batches the same inlined
        transfer per callee; it only runs for jump functions whose
        support actually lowered.
        """
        val = self._val
        caller_env = val[caller]
        sanitizer = self._sanitizer
        changed: dict[str, dict[EntryKey, None]] = {}
        evaluations = meets = bottom_skips = 0
        for edge in self._seeds.get(caller, ()):
            callee = edge.callee
            env = val[callee]
            key = edge.key
            old = env[key]
            if old is BOTTOM:
                bottom_skips += 1  # already at the lattice floor
                continue
            incoming = edge.const
            if incoming is None:
                expr = edge.expr
                if expr.__class__ is EntryExpr:
                    # pass-through: the evaluation *is* the env fetch
                    evaluations += 1
                    incoming = caller_env.get(expr.key, BOTTOM)
                elif edge.support:
                    incoming = self._poly_value(expr, edge.support, caller_env)
                else:
                    # support-free and not constant ⇒ ⊥: its one ⊥
                    # contribution, applied without evaluation
                    bottom_skips += 1
                    incoming = BOTTOM
            if sanitizer is not None:
                sanitizer.observe_transfer(edge.site_id, callee, key, incoming)
            meets += 1
            new = incoming if old is TOP else meet(old, incoming)
            if new != old:
                if sanitizer is not None:
                    sanitizer.observe_update(callee, key, old, new)
                env[key] = new
                keys = changed.get(callee)
                if keys is None:
                    keys = changed[callee] = {}
                keys[key] = None
        stats = self._stats
        stats.evaluations += evaluations
        stats.meets += meets
        stats.bottom_skips += bottom_skips
        for callee, key in self._kills.get(caller, ()):
            stats.skipped += 1
            env = val[callee]
            old = env[key]
            if old is BOTTOM:
                continue
            stats.meets += 1
            if sanitizer is not None:
                sanitizer.observe_update(callee, key, old, BOTTOM)
            env[key] = BOTTOM  # meet(old, ⊥) is ⊥ for every old
            keys = changed.get(callee)
            if keys is None:
                keys = changed[callee] = {}
            keys[key] = None
        if self._budget is not None:
            self._budget.check_engine(stats)
        return changed

    def apply_deltas(
        self, proc: str, keys: Iterable[EntryKey]
    ) -> dict[str, dict[EntryKey, None]]:
        """Propagate lowered entry keys of ``proc`` to their dependent
        jump functions. An edge dependent on several keys of the batch is
        evaluated once. Returns the lowered callee bindings grouped by
        callee (same shape as :meth:`seed`).

        The batch is transferred per callee: unique dependent edges are
        grouped by callee (insertion order — deterministic), then each
        callee's environment is fetched once and its edges meet in as an
        array, with counters batched in locals like :meth:`seed`. Within
        a callee the edges keep their discovery order, so the ⊥-floor
        short-circuit fires identically to edge-at-a-time transfer.
        """
        changed: dict[str, dict[EntryKey, None]] = {}
        visited: set[int] = set()
        by_callee: dict[str, list[BindingEdge]] = {}
        dependents = self._dependents
        stats = self._stats
        for key in keys:
            stats.deltas += 1
            for edge in dependents.get((proc, key), ()):
                edge_id = id(edge)
                if edge_id in visited:
                    continue
                visited.add(edge_id)
                group = by_callee.get(edge.callee)
                if group is None:
                    group = by_callee[edge.callee] = []
                group.append(edge)
        if by_callee:
            val = self._val
            caller_env = val[proc]
            sanitizer = self._sanitizer
            evaluations = meets = bottom_skips = 0
            for callee, edges in by_callee.items():
                env = val[callee]
                lowered_keys = changed.get(callee)
                for edge in edges:
                    key = edge.key
                    old = env[key]
                    if old is BOTTOM:
                        bottom_skips += 1  # already at the lattice floor
                        continue
                    incoming = edge.const
                    if incoming is None:
                        expr = edge.expr
                        if expr.__class__ is EntryExpr:
                            # pass-through: the evaluation *is* the fetch
                            evaluations += 1
                            incoming = caller_env.get(expr.key, BOTTOM)
                        elif edge.support:
                            incoming = self._poly_value(
                                expr, edge.support, caller_env
                            )
                        else:
                            # support-free and not constant ⇒ ⊥
                            bottom_skips += 1
                            incoming = BOTTOM
                    if sanitizer is not None:
                        sanitizer.observe_transfer(
                            edge.site_id, callee, key, incoming
                        )
                    meets += 1
                    new = incoming if old is TOP else meet(old, incoming)
                    if new != old:
                        if sanitizer is not None:
                            sanitizer.observe_update(callee, key, old, new)
                        env[key] = new
                        if lowered_keys is None:
                            lowered_keys = changed[callee] = {}
                        lowered_keys[key] = None
            stats.evaluations += evaluations
            stats.meets += meets
            stats.bottom_skips += bottom_skips
        if self._budget is not None:
            self._budget.check_engine(stats)
        return changed

    def flush_region(
        self, caller: str, only: set[str] | None = None
    ) -> dict[str, dict[EntryKey, None]]:
        """Evaluate ``caller``'s cross-region binding edges (and apply
        its cross-region kills) exactly once, with the caller's — by now
        final — environment. Region-scheduled solves call this when the
        caller's region has converged; ``only`` restricts the flush to
        the named callees (the warm-start frontier from a clean caller
        into invalidated regions). Returns lowered callee bindings in
        the same shape as :meth:`seed`. Requires a partition.
        """
        partition = self._partition
        changed: dict[str, dict[EntryKey, None]] = {}
        sanitizer = self._sanitizer
        val = self._val
        caller_env = val[caller]
        # On DAG-shaped call graphs every region is a singleton, so this
        # loop — not seed() — carries nearly all of the propagation;
        # like seed() it inlines the edge transfer and batches counters
        # in locals instead of paying a method call per edge.
        evaluations = meets = bottom_skips = 0
        for edge in partition.external_seeds.get(caller, ()):
            callee = edge.callee
            if only is not None and callee not in only:
                continue
            env = val[callee]
            key = edge.key
            old = env[key]
            if old is BOTTOM:
                bottom_skips += 1  # already at the lattice floor
                continue
            incoming = edge.const
            if incoming is None:
                expr = edge.expr
                if expr.__class__ is EntryExpr:
                    # pass-through: the evaluation *is* the env fetch
                    evaluations += 1
                    incoming = caller_env.get(expr.key, BOTTOM)
                elif edge.support:
                    incoming = self._poly_value(expr, edge.support, caller_env)
                else:
                    # support-free and not constant ⇒ ⊥
                    bottom_skips += 1
                    incoming = BOTTOM
            if sanitizer is not None:
                sanitizer.observe_transfer(edge.site_id, callee, key, incoming)
            meets += 1
            new = incoming if old is TOP else meet(old, incoming)
            if new != old:
                if sanitizer is not None:
                    sanitizer.observe_update(callee, key, old, new)
                env[key] = new
                keys = changed.get(callee)
                if keys is None:
                    keys = changed[callee] = {}
                keys[key] = None
        stats = self._stats
        stats.evaluations += evaluations
        stats.meets += meets
        stats.bottom_skips += bottom_skips
        for callee, key in partition.external_kills.get(caller, ()):
            if only is not None and callee not in only:
                continue
            stats.skipped += 1
            env = val[callee]
            old = env[key]
            if old is BOTTOM:
                continue
            stats.meets += 1
            if sanitizer is not None:
                sanitizer.observe_update(callee, key, old, BOTTOM)
            env[key] = BOTTOM  # meet(old, ⊥) is ⊥ for every old
            keys = changed.get(callee)
            if keys is None:
                keys = changed[callee] = {}
            keys[key] = None
        if self._budget is not None:
            self._budget.check_engine(stats)
        return changed

    def _poly_value(
        self, expr: ValueExpr, support: tuple, caller_env: dict
    ) -> LatticeValue:
        """Memoized evaluation of a genuine polynomial jump function,
        keyed on interned-expression identity plus the support slice of
        the caller environment."""
        stats = self._stats
        if len(support) == 1:
            values = _memo_value(caller_env.get(support[0], BOTTOM))
        else:
            values = tuple(
                _memo_value(caller_env.get(key, BOTTOM)) for key in support
            )
        table = self._table
        memo_key = (table.generation, id(expr), values)
        incoming = self._memo.get(memo_key, _MISSING)
        if incoming is _MISSING:
            stats.memo_misses += 1
            stats.evaluations += 1
            if self._compiled:
                kernel = table.kernel_for(expr)
                if kernel is None:
                    kernel = compile_expr(expr, table)
                    stats.kernel_compiles += 1
                else:
                    stats.kernel_hits += 1
                incoming = kernel(caller_env)
            else:
                incoming = expr.evaluate(caller_env)
            self._memo[memo_key] = incoming
        else:
            stats.memo_hits += 1
        return incoming

