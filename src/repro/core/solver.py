"""Interprocedural propagation (stage 3, §4.1): a worklist iterative
solver over the call graph.

``VAL(p)`` maps each of ``p``'s entry keys (scalar formal names and every
scalar global id) to a lattice value, initially ⊤. The main program's
globals start at their DATA values (or ⊥ when uninitialized). Each call
edge transfers ``evaluate(jump function, VAL(caller))`` into the callee,
met with the callee's current approximation (Figure 1).

The worklist is a priority queue ordered by reverse postorder over the
call graph: callers are evaluated before their callees, so on an acyclic
graph one monotone sweep reaches the fixpoint, and on recursive cliques
each extra sweep is driven only by values that actually lowered. The
statistics distinguish ``pops`` (worklist extractions) from ``passes``
(monotone sweeps in priority order) — the quantity the §3.1.5 cost
analysis multiplies against per-pass jump-function evaluation cost.

:func:`solve` is **sparse and region-scheduled**: it condenses the call
graph into SCC regions (:mod:`repro.core.regions`) and converges each
region to its local fixed point exactly once, callers-first, before any
cross-region call site is evaluated — so every cross-region jump
function is evaluated exactly once, with its caller's final environment
(sound because jump functions are monotone: the deferred single
evaluation meets the same value the skipped intermediate ones would
have converged to). Within a region the shared
:class:`~repro.core.engine.DeltaEngine` applies the usual sparse
discipline: seed once at first reach, re-evaluate only on support
deltas. In region mode ``passes`` is the *maximum* per-region sweep
count — the worst-case number of times any single jump function is
re-evaluated, which is what §3.1.5 charges — while ``region_passes``
totals the per-region sweeps and ``regions`` counts converged regions.
``region_scheduled=False`` runs the PR-2 global-worklist schedule
(kept for comparison benchmarks and tests).

A :class:`WarmStart` lets an incremental re-analysis adopt stored
fixed-point environments for regions whose inputs provably did not
change: clean regions are never seeded, and only the frontier edges
from reached clean callers into invalidated regions are evaluated.

:func:`solve_dense` keeps the original re-evaluate-everything algorithm
as the reference implementation the sparse engine is cross-checked and
benchmarked against — all schedules compute the same greatest fixpoint,
so their VAL sets (and therefore CONSTANTS sets and Table 2/3 counts)
agree exactly.

Because the lattice has bounded depth (each value lowers at most twice),
the solver terminates after O(Σ |keys|) meets; the cost of each pass is
the cost of the jump-function evaluations, exactly as analyzed in §3.1.5.
Procedures never reached from the main program keep ⊤ (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.engine import DeltaEngine, RegionPartition, entry_keys
from repro.core.exprs import EntryKey
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet
from repro.core.regions import region_schedule
from repro.framework.driver import drive_global_schedule, drive_region_schedule
from repro.framework.worklist import PriorityWorklist
from repro.frontend.symbols import GlobalId
from repro.ir.lower import LoweredProgram

#: Compatibility alias — the worklist moved to the framework package
#: (PR 8); the binding-grain solver and the parallel scheduler import
#: it under this name.
_PriorityWorklist = PriorityWorklist


@dataclass(slots=True)
class SolveResult:
    """VAL sets plus solver statistics.

    ``pops`` counts worklist extractions (one procedure or binding
    re-evaluation each); ``passes`` counts completed monotone sweeps over
    the reverse-postorder schedule — a new pass begins whenever the solver
    pops a node that does not extend the current ascending run.

    ``evaluations`` counts jump-function expression evaluations actually
    performed — the quantity the §3.1.5 cost model charges a pass.
    The sparse engine's avoidance shows up in its own counters:
    ``skipped`` (callee keys with no jump function, killed without
    evaluating anything), ``deltas`` (changed-entry-key events
    propagated), ``memo_hits``/``memo_misses`` (identity-keyed evaluation
    memo), and ``bottom_skips`` (⊥ jump functions contributing their one
    ⊥ without evaluation, plus bindings already at ⊥ left untouched).
    The dense reference solver leaves the engine-only counters at zero.
    """

    val: dict[str, dict[EntryKey, LatticeValue]] = field(default_factory=dict)
    reached: set[str] = field(default_factory=set)
    passes: int = 0
    pops: int = 0
    evaluations: int = 0
    meets: int = 0
    deltas: int = 0
    skipped: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    bottom_skips: int = 0
    #: compiled-kernel cache misses/hits in the engine (0 unless the
    #: solve ran with ``compiled=True``).
    kernel_compiles: int = 0
    kernel_hits: int = 0
    #: SCC regions converged by this solve (0 under the legacy schedule).
    regions: int = 0
    #: total per-region sweeps — Σ of each region's local pass count.
    region_passes: int = 0
    #: regions adopted from a warm start instead of being converged.
    regions_warm: int = 0
    #: dependency levels processed by the parallel wave scheduler and
    #: regions it dispatched to pool workers (0 for sequential solves).
    waves: int = 0
    regions_parallel: int = 0
    #: flat slab engine (:mod:`repro.core.slab`) shape and drain counters
    #: (0 unless the solve ran with ``flat=True``).
    slab_slots: int = 0
    slab_bytes: int = 0
    batch_drains: int = 0
    #: slab provenance for this solve: seconds spent building the slab
    #: cold vs. loading (and possibly patching) a persistent slab from
    #: the artifact store, plus how much of the slab a patch re-slabbed.
    #: All zero when the slab came from the in-process cache or the
    #: solve did not run flat. The warm-run bench gate asserts
    #: ``slab_build_seconds == 0`` while ``slab_load_seconds > 0``.
    slab_build_seconds: float = 0.0
    slab_load_seconds: float = 0.0
    slab_patched_procs: int = 0
    slab_patched_slots: int = 0

    def constants(self, proc: str) -> dict[EntryKey, LatticeValue]:
        """CONSTANTS(p): the entry keys proven constant (paper §2)."""
        return {
            key: value
            for key, value in self.val.get(proc, {}).items()
            if is_constant(value)
        }

    def all_constants(self) -> dict[str, dict[EntryKey, LatticeValue]]:
        return {proc: self.constants(proc) for proc in self.val}

    def counters(self) -> dict[str, int | float]:
        """The solver statistics as a flat mapping (for reports/benchmarks)."""
        return {
            "passes": self.passes,
            "pops": self.pops,
            "evaluations": self.evaluations,
            "meets": self.meets,
            "deltas": self.deltas,
            "skipped": self.skipped,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "bottom_skips": self.bottom_skips,
            "kernel_compiles": self.kernel_compiles,
            "kernel_hits": self.kernel_hits,
            "regions": self.regions,
            "region_passes": self.region_passes,
            "regions_warm": self.regions_warm,
            "waves": self.waves,
            "regions_parallel": self.regions_parallel,
            "slab_slots": self.slab_slots,
            "slab_bytes": self.slab_bytes,
            "batch_drains": self.batch_drains,
            "slab_build_seconds": self.slab_build_seconds,
            "slab_load_seconds": self.slab_load_seconds,
            "slab_patched_procs": self.slab_patched_procs,
            "slab_patched_slots": self.slab_patched_slots,
        }


@dataclass(frozen=True, slots=True)
class WarmStart:
    """Stored region solutions an incremental re-analysis trusts.

    ``clean`` names the procedures whose jump functions, fingerprints,
    and entire caller cones are unchanged since the snapshot —
    cleanliness is closed under "all callers clean", so a clean
    procedure's entry environment is provably identical to the stored
    one. ``envs`` holds those stored environments and ``reached`` the
    clean procedures the snapshot's solve reached (reachability of a
    clean procedure cannot have changed either, for the same reason).
    The solver adopts clean regions wholesale and converges only the
    invalidated ones, evaluating each frontier edge (reached clean
    caller → invalid callee) exactly once.
    """

    clean: frozenset[str]
    envs: dict[str, dict[EntryKey, LatticeValue]]
    reached: frozenset[str]


def initial_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊤ everywhere, except the main program's entry environment.

    The key sets come from :func:`repro.core.engine.entry_keys`, the same
    enumeration the support-dependency index is built over — VAL and the
    index can never disagree about which bindings exist.
    """
    val: dict[str, dict[EntryKey, LatticeValue]] = {
        name: {key: TOP for key in keys}
        for name, keys in entry_keys(lowered).items()
    }
    main_env = val[lowered.program.main]
    for gid in list(main_env):
        if not isinstance(gid, GlobalId):
            continue
        data = lowered.program.globals[gid].data_value
        if isinstance(data, bool) or isinstance(data, int):
            main_env[gid] = data
        else:
            main_env[gid] = BOTTOM  # uninitialized storage: unknown
    return val


def bottom_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊥ everywhere: the entry environments of the purely intraprocedural
    baseline (Table 3, column 4).

    The baseline deliberately assumes *nothing* at procedure entry — not
    even the main program's DATA initializations, because asserting that a
    DATA value survives to a use point requires knowing which callees
    modify COMMON storage, i.e. interprocedural MOD reasoning. Flooring
    every key (rather than only non-main ones) keeps the baseline column
    invariant under DATA statements; only locally derived constants count.
    """
    val = initial_val(lowered)
    for env in val.values():
        for key in env:
            env[key] = BOTTOM
    return val


def _partition_for(
    forward: ForwardFunctions,
    lowered: LoweredProgram,
    region_of: dict[str, int],
) -> RegionPartition:
    """The forward functions' support index split along region
    boundaries, computed once per (ForwardFunctions, schedule) pair —
    repeated solves over one stage-2 output share the split."""
    index = forward.support_index(lowered)
    cached = getattr(forward, "_region_partition", None)
    if cached is not None:
        cached_index, cached_region_of, partition = cached
        if cached_index is index and cached_region_of is region_of:
            return partition
    partition = RegionPartition(index, region_of)
    try:
        # keyed by index identity: tampering with the site table and
        # clearing forward.index (tests do) must invalidate the split
        forward._region_partition = (index, region_of, partition)  # type: ignore[attr-defined]
    except AttributeError:
        pass  # slotted stand-ins simply rebuild per solve
    return partition


def solve(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
    region_scheduled: bool = True,
    warm: WarmStart | None = None,
    compiled: bool = False,
    flat: bool = False,
) -> SolveResult:
    """Sparse delta-driven propagation to a fixpoint (procedure-grained).

    By default the solve is region-scheduled: the call graph's SCC
    condensation is processed callers-first, each region converging to
    its local fixed point exactly once before any of its cross-region
    call sites is evaluated (see the module docstring for why that is
    sound and what it does to the counters). ``region_scheduled=False``
    selects the legacy global-worklist schedule; ``warm`` (region mode
    only) adopts stored fixed points for clean regions.

    ``sanitizer`` (e.g. a
    :class:`repro.diagnostics.sanitizer.LatticeSanitizer`) observes every
    transfer and VAL update for lattice-invariant checking; ``None`` —
    the default — solves at full speed.

    ``budget`` (a :class:`repro.resilience.budgets.SolveBudget`) caps
    passes here and evaluation/meet fuel inside the engine; exhaustion
    raises :class:`~repro.resilience.errors.BudgetExhaustedError`, which
    the driver's degradation ladder converts into a cheaper jump
    function rather than a dead result. In region mode the pass cap
    applies to each region's local sweep count — the same §3.1.5
    quantity the legacy global count approximated.

    ``compiled=True`` evaluates polynomial jump functions through
    compiled closure kernels (:func:`repro.core.exprs.compile_expr`)
    instead of the ``evaluate`` tree walk — value-identical, counted
    under ``kernel_compiles``/``kernel_hits``.

    ``flat=True`` routes the whole solve through the flat slab engine
    (:mod:`repro.core.slab`): integer-coded lattice slots, CSR fan-out,
    batched drains. Byte-identical VALs, different representation-level
    counters (see the slab module docstring). Sanitized solves need the
    boxed transfers to observe and warm starts adopt boxed
    environments, so either one falls back to the object engine.
    """
    if flat and sanitizer is None and warm is None:
        from repro.core.slab import solve_flat

        return solve_flat(lowered, graph, forward, budget=budget)
    if sanitizer is not None:
        # Sanitizing is about observability, not speed: the sanitizer's
        # monotone-descent check needs to see *every* transfer of an
        # iterating schedule, and region deferral evaluates cross-region
        # edges exactly once — which would hide, say, a non-monotone
        # jump function sitting on one. Sanitized solves therefore run
        # the fully iterating legacy schedule (and ignore warm starts).
        region_scheduled = False
    if not region_scheduled:
        return _solve_legacy(
            lowered,
            graph,
            forward,
            sanitizer=sanitizer,
            budget=budget,
            compiled=compiled,
        )
    schedule = region_schedule(graph)
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered),
        result.val,
        result,
        sanitizer,
        budget,
        partition=_partition_for(forward, lowered, schedule.region_of),
        compiled=compiled,
    )
    drive_region_schedule(
        engine,
        schedule,
        PriorityWorklist(graph.rpo_index()),
        result,
        roots=(lowered.program.main,),
        budget=budget,
        warm=warm,
    )
    return result


def _solve_legacy(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
    compiled: bool = False,
) -> SolveResult:
    """The PR-2 global-worklist schedule: one reverse-postorder priority
    queue over the whole call graph, cross-region edges re-evaluated
    whenever their support lowers. Kept for schedule-comparison tests
    and benchmarks; computes the identical fixpoint."""
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered),
        result.val,
        result,
        sanitizer,
        budget,
        compiled=compiled,
    )
    drive_global_schedule(
        engine,
        PriorityWorklist(graph.rpo_index()),
        result,
        roots=(lowered.program.main,),
        budget=budget,
    )
    return result


def solve_dense(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    budget=None,
) -> SolveResult:
    """The dense reference solver: re-evaluate every jump function at
    every site of a popped caller. Kept as the oracle the sparse engine
    is cross-checked against, the baseline it is benchmarked against,
    and the crash fallback the driver degrades to (``budget`` caps it
    the same way :func:`solve` is capped).
    """
    result = SolveResult(val=initial_val(lowered))
    val = result.val

    worklist = _PriorityWorklist(graph.rpo_index())
    worklist.push(lowered.program.main, lowered.program.main)
    while worklist:
        caller = worklist.pop()
        if budget is not None:
            budget.check_all(result, worklist.passes)
        result.reached.add(caller)
        env = val[caller]
        for callee_name, call in graph.call_sites_from(caller):
            site = forward.sites.get(call.site_id)
            if site is None:
                continue
            callee_env = val[callee_name]
            changed = False
            for key in callee_env:
                function = site.function_for(key)
                if function is None:
                    result.skipped += 1  # nothing to evaluate: key is killed
                    incoming: LatticeValue = BOTTOM
                else:
                    result.evaluations += 1
                    incoming = function.evaluate(env)
                result.meets += 1
                lowered_value = meet(callee_env[key], incoming)
                if lowered_value != callee_env[key]:
                    callee_env[key] = lowered_value
                    changed = True
            if changed or callee_name not in result.reached:
                worklist.push(callee_name, callee_name)
    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
