"""Interprocedural propagation (stage 3, §4.1): a worklist iterative
solver over the call graph.

``VAL(p)`` maps each of ``p``'s entry keys (scalar formal names and every
scalar global id) to a lattice value, initially ⊤. The main program's
globals start at their DATA values (or ⊥ when uninitialized). Each call
edge transfers ``evaluate(jump function, VAL(caller))`` into the callee,
met with the callee's current approximation (Figure 1).

The worklist is a priority queue ordered by reverse postorder over the
call graph: callers are evaluated before their callees, so on an acyclic
graph one monotone sweep reaches the fixpoint, and on recursive cliques
each extra sweep is driven only by values that actually lowered. The
statistics distinguish ``pops`` (worklist extractions) from ``passes``
(monotone sweeps in priority order) — the quantity the §3.1.5 cost
analysis multiplies against per-pass jump-function evaluation cost.

Because the lattice has bounded depth (each value lowers at most twice),
the solver terminates after O(Σ |keys|) meets; the cost of each pass is
the cost of the jump-function evaluations, exactly as analyzed in §3.1.5.
Procedures never reached from the main program keep ⊤ (paper §2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.exprs import EntryKey
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet
from repro.frontend.astnodes import Type
from repro.frontend.symbols import GlobalId
from repro.ir.lower import LoweredProgram


@dataclass
class SolveResult:
    """VAL sets plus solver statistics.

    ``pops`` counts worklist extractions (one procedure or binding
    re-evaluation each); ``passes`` counts completed monotone sweeps over
    the reverse-postorder schedule — a new pass begins whenever the solver
    pops a node that does not extend the current ascending run.
    """

    val: dict[str, dict[EntryKey, LatticeValue]] = field(default_factory=dict)
    reached: set[str] = field(default_factory=set)
    passes: int = 0
    pops: int = 0
    evaluations: int = 0
    meets: int = 0

    def constants(self, proc: str) -> dict[EntryKey, LatticeValue]:
        """CONSTANTS(p): the entry keys proven constant (paper §2)."""
        return {
            key: value
            for key, value in self.val.get(proc, {}).items()
            if is_constant(value)
        }

    def all_constants(self) -> dict[str, dict[EntryKey, LatticeValue]]:
        return {proc: self.constants(proc) for proc in self.val}

    def counters(self) -> dict[str, int]:
        """The solver statistics as a flat mapping (for reports/benchmarks)."""
        return {
            "passes": self.passes,
            "pops": self.pops,
            "evaluations": self.evaluations,
            "meets": self.meets,
        }


def initial_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊤ everywhere, except the main program's entry environment."""
    scalar_gids = [
        gid
        for gid, gvar in lowered.program.globals.items()
        if not gvar.is_array and gvar.type in (Type.INTEGER, Type.LOGICAL)
    ]
    val: dict[str, dict[EntryKey, LatticeValue]] = {}
    for name, lowered_proc in lowered.procedures.items():
        env: dict[EntryKey, LatticeValue] = {}
        for formal in lowered_proc.procedure.formals:
            if not formal.is_array and formal.type in (Type.INTEGER, Type.LOGICAL):
                env[formal.name] = TOP
        for gid in scalar_gids:
            env[gid] = TOP
        val[name] = env

    main_env = val[lowered.program.main]
    for gid in scalar_gids:
        data = lowered.program.globals[gid].data_value
        if isinstance(data, bool) or isinstance(data, int):
            main_env[gid] = data
        else:
            main_env[gid] = BOTTOM  # uninitialized storage: unknown
    return val


def bottom_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊥ everywhere: the entry environments of the purely intraprocedural
    baseline (Table 3, column 4).

    The baseline deliberately assumes *nothing* at procedure entry — not
    even the main program's DATA initializations, because asserting that a
    DATA value survives to a use point requires knowing which callees
    modify COMMON storage, i.e. interprocedural MOD reasoning. Flooring
    every key (rather than only non-main ones) keeps the baseline column
    invariant under DATA statements; only locally derived constants count.
    """
    val = initial_val(lowered)
    for env in val.values():
        for key in env:
            env[key] = BOTTOM
    return val


class _PriorityWorklist:
    """A worklist ordered by reverse-postorder priority, with membership
    dedup and monotone-sweep ("pass") accounting shared by both solvers."""

    def __init__(self, order: dict[str, int]):
        self._order = order
        self._heap: list[tuple[int, int, object]] = []
        self._queued: set[object] = set()
        self._seq = 0
        self._last_priority: int | None = None
        self.passes = 0
        self.pops = 0

    def __bool__(self) -> bool:
        return bool(self._heap)

    def priority_of(self, proc: str) -> int:
        # Procedures introduced after the order was computed (impossible
        # today, defensive) sort last.
        return self._order.get(proc, len(self._order))

    def push(self, item: object, proc: str) -> None:
        if item in self._queued:
            return
        self._queued.add(item)
        self._seq += 1
        heapq.heappush(self._heap, (self.priority_of(proc), self._seq, item))

    def pop(self) -> object:
        priority, _, item = heapq.heappop(self._heap)
        self._queued.discard(item)
        self.pops += 1
        if self._last_priority is None or priority <= self._last_priority:
            self.passes += 1  # the ascending run wrapped: a new sweep
        self._last_priority = priority
        return item


def solve(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
) -> SolveResult:
    """Run the priority-worklist propagation to a fixpoint."""
    result = SolveResult(val=initial_val(lowered))
    val = result.val

    worklist = _PriorityWorklist(graph.rpo_index())
    worklist.push(lowered.program.main, lowered.program.main)
    while worklist:
        caller = worklist.pop()
        result.reached.add(caller)
        env = val[caller]
        for callee_name, call in graph.call_sites_from(caller):
            site = forward.sites.get(call.site_id)
            if site is None:
                continue
            callee_env = val[callee_name]
            changed = False
            for key in callee_env:
                function = site.function_for(key)
                result.evaluations += 1
                incoming = function.evaluate(env) if function is not None else BOTTOM
                result.meets += 1
                lowered_value = meet(callee_env[key], incoming)
                if lowered_value is not callee_env[key] and lowered_value != callee_env[key]:
                    callee_env[key] = lowered_value
                    changed = True
            if changed or callee_name not in result.reached:
                worklist.push(callee_name, callee_name)
    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
