"""Interprocedural propagation (stage 3, §4.1): a worklist iterative
solver over the call graph.

``VAL(p)`` maps each of ``p``'s entry keys (scalar formal names and every
scalar global id) to a lattice value, initially ⊤. The main program's
globals start at their DATA values (or ⊥ when uninitialized). Each call
edge transfers ``evaluate(jump function, VAL(caller))`` into the callee,
met with the callee's current approximation (Figure 1).

The worklist is a priority queue ordered by reverse postorder over the
call graph: callers are evaluated before their callees, so on an acyclic
graph one monotone sweep reaches the fixpoint, and on recursive cliques
each extra sweep is driven only by values that actually lowered. The
statistics distinguish ``pops`` (worklist extractions) from ``passes``
(monotone sweeps in priority order) — the quantity the §3.1.5 cost
analysis multiplies against per-pass jump-function evaluation cost.

:func:`solve` is **sparse**: it drives the shared
:class:`~repro.core.engine.DeltaEngine` so each procedure's call sites
are evaluated once at first reach and thereafter only the jump functions
whose support keys actually lowered are re-evaluated.
:func:`solve_dense` keeps the original re-evaluate-everything algorithm
as the reference implementation the sparse engine is cross-checked and
benchmarked against — both compute the same greatest fixpoint, so their
VAL sets (and therefore CONSTANTS sets and Table 2/3 counts) agree
exactly.

Because the lattice has bounded depth (each value lowers at most twice),
the solver terminates after O(Σ |keys|) meets; the cost of each pass is
the cost of the jump-function evaluations, exactly as analyzed in §3.1.5.
Procedures never reached from the main program keep ⊤ (paper §2).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.engine import DeltaEngine, entry_keys
from repro.core.exprs import EntryKey
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet
from repro.frontend.symbols import GlobalId
from repro.ir.lower import LoweredProgram


@dataclass
class SolveResult:
    """VAL sets plus solver statistics.

    ``pops`` counts worklist extractions (one procedure or binding
    re-evaluation each); ``passes`` counts completed monotone sweeps over
    the reverse-postorder schedule — a new pass begins whenever the solver
    pops a node that does not extend the current ascending run.

    ``evaluations`` counts jump-function expression evaluations actually
    performed — the quantity the §3.1.5 cost model charges a pass.
    The sparse engine's avoidance shows up in its own counters:
    ``skipped`` (callee keys with no jump function, killed without
    evaluating anything), ``deltas`` (changed-entry-key events
    propagated), ``memo_hits``/``memo_misses`` (identity-keyed evaluation
    memo), and ``bottom_skips`` (⊥ jump functions contributing their one
    ⊥ without evaluation, plus bindings already at ⊥ left untouched).
    The dense reference solver leaves the engine-only counters at zero.
    """

    val: dict[str, dict[EntryKey, LatticeValue]] = field(default_factory=dict)
    reached: set[str] = field(default_factory=set)
    passes: int = 0
    pops: int = 0
    evaluations: int = 0
    meets: int = 0
    deltas: int = 0
    skipped: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    bottom_skips: int = 0

    def constants(self, proc: str) -> dict[EntryKey, LatticeValue]:
        """CONSTANTS(p): the entry keys proven constant (paper §2)."""
        return {
            key: value
            for key, value in self.val.get(proc, {}).items()
            if is_constant(value)
        }

    def all_constants(self) -> dict[str, dict[EntryKey, LatticeValue]]:
        return {proc: self.constants(proc) for proc in self.val}

    def counters(self) -> dict[str, int]:
        """The solver statistics as a flat mapping (for reports/benchmarks)."""
        return {
            "passes": self.passes,
            "pops": self.pops,
            "evaluations": self.evaluations,
            "meets": self.meets,
            "deltas": self.deltas,
            "skipped": self.skipped,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "bottom_skips": self.bottom_skips,
        }


def initial_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊤ everywhere, except the main program's entry environment.

    The key sets come from :func:`repro.core.engine.entry_keys`, the same
    enumeration the support-dependency index is built over — VAL and the
    index can never disagree about which bindings exist.
    """
    val: dict[str, dict[EntryKey, LatticeValue]] = {
        name: {key: TOP for key in keys}
        for name, keys in entry_keys(lowered).items()
    }
    main_env = val[lowered.program.main]
    for gid in list(main_env):
        if not isinstance(gid, GlobalId):
            continue
        data = lowered.program.globals[gid].data_value
        if isinstance(data, bool) or isinstance(data, int):
            main_env[gid] = data
        else:
            main_env[gid] = BOTTOM  # uninitialized storage: unknown
    return val


def bottom_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊥ everywhere: the entry environments of the purely intraprocedural
    baseline (Table 3, column 4).

    The baseline deliberately assumes *nothing* at procedure entry — not
    even the main program's DATA initializations, because asserting that a
    DATA value survives to a use point requires knowing which callees
    modify COMMON storage, i.e. interprocedural MOD reasoning. Flooring
    every key (rather than only non-main ones) keeps the baseline column
    invariant under DATA statements; only locally derived constants count.
    """
    val = initial_val(lowered)
    for env in val.values():
        for key in env:
            env[key] = BOTTOM
    return val


class _PriorityWorklist:
    """A worklist ordered by reverse-postorder priority, with membership
    dedup and monotone-sweep ("pass") accounting shared by both solvers."""

    def __init__(self, order: dict[str, int]):
        self._order = order
        self._heap: list[tuple[int, int, object]] = []
        self._queued: set[object] = set()
        self._seq = 0
        self._last_priority: int | None = None
        self.passes = 0
        self.pops = 0

    def __bool__(self) -> bool:
        return bool(self._heap)

    def priority_of(self, proc: str) -> int:
        # Procedures introduced after the order was computed (impossible
        # today, defensive) sort last.
        return self._order.get(proc, len(self._order))

    def push(self, item: object, proc: str) -> None:
        if item in self._queued:
            return
        self._queued.add(item)
        self._seq += 1
        heapq.heappush(self._heap, (self.priority_of(proc), self._seq, item))

    def pop(self) -> object:
        priority, _, item = heapq.heappop(self._heap)
        self._queued.discard(item)
        self.pops += 1
        if self._last_priority is None or priority <= self._last_priority:
            self.passes += 1  # the ascending run wrapped: a new sweep
        self._last_priority = priority
        return item


def solve(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
) -> SolveResult:
    """Sparse delta-driven propagation to a fixpoint (procedure-grained).

    Pops follow the same reverse-postorder priority schedule as the dense
    reference, but a popped procedure only evaluates (a) every jump
    function at its sites, once, when first reached, or (b) the jump
    functions whose support keys lowered since its last visit.

    ``sanitizer`` (e.g. a
    :class:`repro.diagnostics.sanitizer.LatticeSanitizer`) observes every
    transfer and VAL update for lattice-invariant checking; ``None`` —
    the default — solves at full speed.

    ``budget`` (a :class:`repro.resilience.budgets.SolveBudget`) caps
    passes here and evaluation/meet fuel inside the engine; exhaustion
    raises :class:`~repro.resilience.errors.BudgetExhaustedError`, which
    the driver's degradation ladder converts into a cheaper jump
    function rather than a dead result.
    """
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered), result.val, result, sanitizer, budget
    )

    worklist = _PriorityWorklist(graph.rpo_index())
    main = lowered.program.main
    worklist.push(main, main)
    #: procedure -> entry keys that lowered since its last visit
    #: (insertion-ordered so counter totals are run-to-run deterministic).
    pending: dict[str, dict[EntryKey, None]] = defaultdict(dict)
    seeded: set[str] = set()
    while worklist:
        caller = worklist.pop()
        if budget is not None:
            budget.check_passes(worklist.passes)
        result.reached.add(caller)
        if caller not in seeded:
            seeded.add(caller)
            pending.pop(caller, None)  # the seed evaluates everything
            changed = engine.seed(caller)
        else:
            deltas = pending.pop(caller, None)
            changed = engine.apply_deltas(caller, deltas) if deltas else {}
        for callee, keys in changed.items():
            pending[callee].update(keys)
            worklist.push(callee, callee)
        for callee in engine.callees(caller):
            if callee not in seeded:
                worklist.push(callee, callee)  # reach even without deltas
    result.passes = worklist.passes
    result.pops = worklist.pops
    return result


def solve_dense(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    budget=None,
) -> SolveResult:
    """The dense reference solver: re-evaluate every jump function at
    every site of a popped caller. Kept as the oracle the sparse engine
    is cross-checked against, the baseline it is benchmarked against,
    and the crash fallback the driver degrades to (``budget`` caps it
    the same way :func:`solve` is capped).
    """
    result = SolveResult(val=initial_val(lowered))
    val = result.val

    worklist = _PriorityWorklist(graph.rpo_index())
    worklist.push(lowered.program.main, lowered.program.main)
    while worklist:
        caller = worklist.pop()
        if budget is not None:
            budget.check_all(result, worklist.passes)
        result.reached.add(caller)
        env = val[caller]
        for callee_name, call in graph.call_sites_from(caller):
            site = forward.sites.get(call.site_id)
            if site is None:
                continue
            callee_env = val[callee_name]
            changed = False
            for key in callee_env:
                function = site.function_for(key)
                if function is None:
                    result.skipped += 1  # nothing to evaluate: key is killed
                    incoming: LatticeValue = BOTTOM
                else:
                    result.evaluations += 1
                    incoming = function.evaluate(env)
                result.meets += 1
                lowered_value = meet(callee_env[key], incoming)
                if lowered_value != callee_env[key]:
                    callee_env[key] = lowered_value
                    changed = True
            if changed or callee_name not in result.reached:
                worklist.push(callee_name, callee_name)
    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
