"""Interprocedural propagation (stage 3, §4.1): a worklist iterative
solver over the call graph.

``VAL(p)`` maps each of ``p``'s entry keys (scalar formal names and every
scalar global id) to a lattice value, initially ⊤. The main program's
globals start at their DATA values (or ⊥ when uninitialized). Each call
edge transfers ``evaluate(jump function, VAL(caller))`` into the callee,
met with the callee's current approximation (Figure 1).

Because the lattice has bounded depth (each value lowers at most twice),
the solver terminates after O(Σ |keys|) meets; the cost of each pass is
the cost of the jump-function evaluations, exactly as analyzed in §3.1.5.
Procedures never reached from the main program keep ⊤ (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.exprs import EntryKey
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet
from repro.frontend.astnodes import Type
from repro.frontend.symbols import GlobalId
from repro.ir.lower import LoweredProgram


@dataclass
class SolveResult:
    """VAL sets plus solver statistics."""

    val: dict[str, dict[EntryKey, LatticeValue]] = field(default_factory=dict)
    reached: set[str] = field(default_factory=set)
    passes: int = 0
    evaluations: int = 0
    meets: int = 0

    def constants(self, proc: str) -> dict[EntryKey, LatticeValue]:
        """CONSTANTS(p): the entry keys proven constant (paper §2)."""
        return {
            key: value
            for key, value in self.val.get(proc, {}).items()
            if is_constant(value)
        }

    def all_constants(self) -> dict[str, dict[EntryKey, LatticeValue]]:
        return {proc: self.constants(proc) for proc in self.val}


def initial_val(lowered: LoweredProgram) -> dict[str, dict[EntryKey, LatticeValue]]:
    """⊤ everywhere, except the main program's entry environment."""
    scalar_gids = [
        gid
        for gid, gvar in lowered.program.globals.items()
        if not gvar.is_array and gvar.type in (Type.INTEGER, Type.LOGICAL)
    ]
    val: dict[str, dict[EntryKey, LatticeValue]] = {}
    for name, lowered_proc in lowered.procedures.items():
        env: dict[EntryKey, LatticeValue] = {}
        for formal in lowered_proc.procedure.formals:
            if not formal.is_array and formal.type in (Type.INTEGER, Type.LOGICAL):
                env[formal.name] = TOP
        for gid in scalar_gids:
            env[gid] = TOP
        val[name] = env

    main_env = val[lowered.program.main]
    for gid in scalar_gids:
        data = lowered.program.globals[gid].data_value
        if isinstance(data, bool) or isinstance(data, int):
            main_env[gid] = data
        else:
            main_env[gid] = BOTTOM  # uninitialized storage: unknown
    return val


def solve(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
) -> SolveResult:
    """Run the worklist propagation to a fixpoint."""
    result = SolveResult(val=initial_val(lowered))
    val = result.val

    worklist: list[str] = [lowered.program.main]
    queued = {lowered.program.main}
    while worklist:
        caller = worklist.pop()
        queued.discard(caller)
        result.reached.add(caller)
        result.passes += 1
        env = val[caller]
        for callee_name, call in graph.call_sites_from(caller):
            site = forward.sites.get(call.site_id)
            if site is None:
                continue
            callee_env = val[callee_name]
            changed = False
            for key in callee_env:
                function = site.function_for(key)
                result.evaluations += 1
                incoming = function.evaluate(env) if function is not None else BOTTOM
                result.meets += 1
                lowered_value = meet(callee_env[key], incoming)
                if lowered_value is not callee_env[key] and lowered_value != callee_env[key]:
                    callee_env[key] = lowered_value
                    changed = True
            if (changed or callee_name not in result.reached) and (
                callee_name not in queued
            ):
                worklist.append(callee_name)
                queued.add(callee_name)
    return result
