"""The paper's primary contribution: jump functions and the
interprocedural constant propagation framework.

Public surface:

- :class:`~repro.core.lattice.Lattice` constants ``TOP`` / ``BOTTOM`` and
  :func:`~repro.core.lattice.meet` — the three-level lattice of Figure 1.
- :class:`~repro.core.config.JumpFunctionKind` and
  :class:`~repro.core.config.AnalysisConfig` — which jump function to use
  and which framework features (MOD, return jump functions, complete
  propagation) to enable.
- :func:`~repro.core.driver.analyze` / :class:`~repro.core.driver.Analyzer`
  — the four-stage analyzer of §4.1.
- :class:`~repro.core.driver.AnalysisResult` — CONSTANTS sets, substitution
  counts, and the transformed source.
"""

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet, meet_all


def __getattr__(name: str):
    # Deferred: repro.core.driver imports the analysis layer, which imports
    # repro.core.exprs; loading it lazily keeps the package import acyclic.
    if name in ("AnalysisResult", "Analyzer", "analyze"):
        from repro.core import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Analyzer",
    "BOTTOM",
    "JumpFunctionKind",
    "LatticeValue",
    "TOP",
    "analyze",
    "is_constant",
    "meet",
    "meet_all",
]
