"""Goal-directed procedure cloning (the §5 extension).

Metzger and Stroud's CONVEX Application Compiler used interprocedural
constants to guide procedure cloning, and found that cloning
"substantially increases the number of interprocedural constants
available" (paper §5; also Cooper–Hall–Kennedy [6]). The mechanism: when
two call sites feed a procedure *conflicting* constants, the meet drives
the parameter to ⊥ and both constants are lost. Cloning the procedure per
constant vector recovers them.

Implementation: analyze → group each procedure's call sites by the vector
of constants their jump functions produce under the final VAL sets →
clone the procedure's source text once per additional group (the first
group keeps the original) → rewrite the callee names at the cloned sites
(the IR remembers each call's name span) → re-analyze the transformed
program.

Cloning is bounded by ``max_clones_per_procedure`` and only triggered
when a group actually recovers at least one constant that the merged
analysis lost.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.core.config import AnalysisConfig
from repro.core.driver import AnalysisResult, analyze
from repro.core.lattice import is_constant
from repro.frontend.source import SourceSpan
from repro.frontend.unparse import unparse_procedure


@dataclass
class CloneGroup:
    """One set of call sites that agree on a constant vector."""

    callee: str
    clone_name: str | None  # None: the group keeps the original
    vector: tuple  # sorted (key, value) pairs the group agrees on
    site_ids: list[int] = field(default_factory=list)


@dataclass
class CloningReport:
    """What one cloning round did."""

    original: AnalysisResult
    cloned: AnalysisResult | None
    groups: list[CloneGroup] = field(default_factory=list)
    transformed_source: str = ""

    @property
    def clones_created(self) -> int:
        return sum(1 for g in self.groups if g.clone_name is not None)

    @property
    def constants_before(self) -> int:
        return self.original.constants_found

    @property
    def constants_after(self) -> int:
        if self.cloned is None:
            return self.original.constants_found
        return self.cloned.constants_found

    @property
    def constants_recovered(self) -> int:
        return self.constants_after - self.constants_before

    @property
    def code_growth(self) -> float:
        """Transformed / original non-blank line count."""
        if not self.transformed_source:
            return 1.0
        original_lines = _line_count(self.original.program.source)
        return _line_count(self.transformed_source) / max(1, original_lines)


def _line_count(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


def _site_vector(result: AnalysisResult, site_id: int, callee: str) -> tuple:
    """The constants this site would hand the callee, as a sorted tuple.

    Only keys the *merged* analysis failed to prove constant participate —
    those are the ones cloning can recover."""
    site = result.forward.sites.get(site_id)
    if site is None:
        return ()
    caller_env = result.solved.val.get(site.caller, {})
    merged = result.solved.val.get(callee, {})
    vector = []
    for key, function in site.all_functions():
        if is_constant(merged.get(key)):
            continue  # already constant everywhere; nothing to recover
        value = function.evaluate(caller_env)
        if is_constant(value):
            vector.append((str(key), value))
    return tuple(sorted(vector))


def plan_clone_groups(
    result: AnalysisResult, max_clones_per_procedure: int = 3
) -> list[CloneGroup]:
    """Group call sites by constant vector; assign clone names."""
    groups: list[CloneGroup] = []
    for callee in sorted(result.lowered.procedures):
        lowered_proc = result.lowered.procedures[callee]
        if lowered_proc.procedure.is_main:
            continue
        sites = result.call_graph.call_sites_into(callee)
        if len(sites) < 2:
            continue
        by_vector: dict[tuple, list[int]] = {}
        for caller, call in sites:
            if caller not in result.solved.reached:
                continue
            vector = _site_vector(result, call.site_id, callee)
            by_vector.setdefault(vector, []).append(call.site_id)
        interesting = {v: ids for v, ids in by_vector.items() if v}
        if len(by_vector) < 2 or not interesting:
            continue
        # Deterministic order: richest vectors first.
        ordered = sorted(
            by_vector.items(), key=lambda item: (-len(item[0]), item[0])
        )
        clone_index = 0
        for position, (vector, site_ids) in enumerate(ordered):
            if position == 0:
                groups.append(
                    CloneGroup(callee=callee, clone_name=None, vector=vector,
                               site_ids=sorted(site_ids))
                )
                continue
            if not vector or clone_index >= max_clones_per_procedure:
                continue  # nothing to gain / budget exhausted
            clone_index += 1
            groups.append(
                CloneGroup(
                    callee=callee,
                    clone_name=f"{callee}_c{clone_index}",
                    vector=vector,
                    site_ids=sorted(site_ids),
                )
            )
    return groups


def apply_clones(result: AnalysisResult, groups: list[CloneGroup]) -> str:
    """Rewrite the source: rename call sites and append clone bodies."""
    source = result.program.source
    replacements: list[tuple[SourceSpan, str]] = []
    cloned_procs: list[str] = []
    for group in groups:
        if group.clone_name is None:
            continue
        for site_id in group.site_ids:
            _, call = result.lowered.site(site_id)
            span = call.callee_span
            assert span.start.offset != span.end.offset, (
                f"call site {site_id} has no callee span"
            )
            replacements.append((span, group.clone_name))
        proc_ast = copy.deepcopy(
            result.lowered.procedures[group.callee].procedure.ast
        )
        proc_ast.name = group.clone_name
        cloned_procs.append(unparse_procedure(proc_ast))

    text = source
    for span, name in sorted(
        replacements, key=lambda pair: pair[0].start.offset, reverse=True
    ):
        start, end = span.text_range
        text = text[:start] + name + text[end:]
    if cloned_procs:
        text = text.rstrip("\n") + "\n\n" + "\n\n".join(cloned_procs) + "\n"
    return text


def clone_and_reanalyze(
    source: str,
    config: AnalysisConfig | None = None,
    max_clones_per_procedure: int = 3,
) -> CloningReport:
    """One full cloning round: analyze, clone, re-analyze."""
    config = config or AnalysisConfig()
    original = analyze(source, config)
    groups = plan_clone_groups(original, max_clones_per_procedure)
    if not any(g.clone_name for g in groups):
        return CloningReport(original=original, cloned=None, groups=groups)
    transformed = apply_clones(original, groups)
    cloned = analyze(transformed, config)
    return CloningReport(
        original=original,
        cloned=cloned,
        groups=groups,
        transformed_source=transformed,
    )
