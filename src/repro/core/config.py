"""Analysis configuration: which jump function, which framework features.

The study's experimental matrix is spanned by four axes:

- :class:`JumpFunctionKind` — the forward jump function (§3.1);
- ``use_return_jump_functions`` — §3.2 (Table 2, last two columns drop it);
- ``use_mod`` — interprocedural MOD information (Table 3, column 1 drops it);
- ``complete`` — iterate propagation with dead-code elimination
  (Table 3, column 3).

``intraprocedural_only`` selects the Table 3 column 4 baseline: no
propagation between procedures at all, MOD still honoured at call sites.

``compose_return_functions`` is an *extension* beyond the paper: return
jump functions are composed symbolically with the caller's expressions
instead of being evaluated with constant-only arguments.

The ``max_*`` fields are the resource budgets of the resilient execution
layer (DESIGN.md §7): caps on solver passes, jump-function evaluations,
and lattice meets. ``None`` (the default) is unlimited and costs nothing.
When a cap is hit, ``degrade_on_budget`` walks the jump-function
degradation ladder (polynomial → pass-through → intraprocedural →
literal, then the intraprocedural-baseline floor) instead of failing;
``solver_fallback`` retries a *crashed* sparse solve with the dense
reference solver. Both downgrades are recorded on the result and
surfaced as RL5xx diagnostics — never silent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class JumpFunctionKind(enum.Enum):
    """The four forward jump function implementations of §3.1."""

    LITERAL = "literal"
    INTRAPROCEDURAL = "intraprocedural"
    PASS_THROUGH = "pass_through"
    POLYNOMIAL = "polynomial"

    @property
    def propagates_through_bodies(self) -> bool:
        """Can this jump function carry constants along paths of length > 1
        in the call graph? (§3.1: only pass-through and polynomial can.)"""
        return self in (JumpFunctionKind.PASS_THROUGH, JumpFunctionKind.POLYNOMIAL)


@dataclass(frozen=True)
class AnalysisConfig:
    """One cell of the experimental matrix."""

    jump_function: JumpFunctionKind = JumpFunctionKind.PASS_THROUGH
    use_return_jump_functions: bool = True
    use_mod: bool = True
    complete: bool = False
    intraprocedural_only: bool = False
    compose_return_functions: bool = False
    max_complete_rounds: int = 5
    #: solver fuel (resilience layer): None = unlimited.
    max_solver_passes: int | None = None
    max_evaluations: int | None = None
    max_meets: int | None = None
    #: walk the jump-function ladder on budget exhaustion (vs. raise).
    degrade_on_budget: bool = True
    #: retry a crashed sparse solve with the dense reference solver.
    solver_fallback: bool = True
    #: solve stage 3 over a process pool of this many workers, wave by
    #: wave of the region condensation (None/0 = sequential). A failed
    #: parallel solve degrades to the sequential schedule (RL540).
    parallel_regions: int | None = None
    #: evaluate polynomial jump functions through compiled closure
    #: kernels instead of the tree walk (value-identical; see
    #: :func:`repro.core.exprs.compile_expr`).
    compiled_exprs: bool = False
    #: solve stage 3 over the flat slab engine — integer-coded lattice
    #: slots, CSR fan-out, batched drains (value-identical; see
    #: :mod:`repro.core.slab`). Default off until the bench gates for a
    #: deployment have been exercised; sanitized and warm-start solves
    #: fall back to the object engine regardless.
    flat_engine: bool = False

    def describe(self) -> str:
        parts = [self.jump_function.value]
        parts.append("rjf" if self.use_return_jump_functions else "no-rjf")
        parts.append("mod" if self.use_mod else "no-mod")
        if self.complete:
            parts.append("complete")
        if self.intraprocedural_only:
            parts.append("intraprocedural-only")
        if self.compose_return_functions:
            parts.append("composed")
        budgets = [
            f"{label}={cap}"
            for label, cap in (
                ("passes", self.max_solver_passes),
                ("evals", self.max_evaluations),
                ("meets", self.max_meets),
            )
            if cap is not None
        ]
        if budgets:
            parts.append("budget[" + ",".join(budgets) + "]")
        if self.parallel_regions:
            parts.append(f"parallel[{self.parallel_regions}]")
        if self.compiled_exprs:
            parts.append("compiled")
        if self.flat_engine:
            parts.append("flat")
        return "+".join(parts)


#: The configurations of Table 2, in column order.
TABLE2_CONFIGS: dict[str, AnalysisConfig] = {
    "polynomial": AnalysisConfig(jump_function=JumpFunctionKind.POLYNOMIAL),
    "pass_through": AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH),
    "intraprocedural": AnalysisConfig(
        jump_function=JumpFunctionKind.INTRAPROCEDURAL
    ),
    "literal": AnalysisConfig(jump_function=JumpFunctionKind.LITERAL),
    "polynomial_no_rjf": AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL,
        use_return_jump_functions=False,
    ),
    "pass_through_no_rjf": AnalysisConfig(
        jump_function=JumpFunctionKind.PASS_THROUGH,
        use_return_jump_functions=False,
    ),
}

#: The configurations of Table 3, in column order.
TABLE3_CONFIGS: dict[str, AnalysisConfig] = {
    "polynomial_no_mod": AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL, use_mod=False
    ),
    "polynomial_with_mod": AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL
    ),
    "complete": AnalysisConfig(
        jump_function=JumpFunctionKind.POLYNOMIAL, complete=True
    ),
    "intraprocedural_only": AnalysisConfig(intraprocedural_only=True),
}
