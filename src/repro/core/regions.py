"""SCC region scheduling for the stage-3 solvers.

The call graph's condensation is a DAG whose nodes — *regions* — are the
strongly connected components Tarjan finds. Interprocedural values only
flow along call edges, so once every region that can call into region R
has reached its local fixed point, R's entry environments are final: R
itself can then be converged *exactly once*, and its cross-region call
sites evaluated exactly once with final environments. The region
schedule is the topological order of the condensation that makes this
block-triangular solve legal (callers before callees — the direction
constants flow in stage 3, the mirror image of the bottom-up stage-1
walk over the same components).

Regions are ordered by the minimum reverse-postorder index of their
members. For components reachable from the main program this is a valid
topological order of the condensation: the minimum-rpo member of an SCC
is the first one the rpo DFS discovers, all other members finish inside
its subtree, and a condensation edge A->B forces B's root to finish
before A's. Components unreachable from the main program sort after the
reachable ones (rpo appends them in name order); their relative order is
name-based, not topological — harmless, because the solvers never seed
an unreached procedure, so no value ever crosses between them. The
solver loop still tolerates a flush into an earlier region defensively
(it re-queues the region) rather than relying on this argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.callgraph.graph import CallGraph


@dataclass(frozen=True, slots=True)
class Region:
    """One strongly connected component of the call graph."""

    index: int
    members: tuple[str, ...]
    #: True when the region can iterate: more than one member, or a
    #: single member that calls itself.
    recursive: bool


@dataclass(frozen=True, slots=True)
class RegionSchedule:
    """The condensation in caller-first topological order."""

    regions: tuple[Region, ...]
    #: procedure name -> index into :attr:`regions`.
    region_of: dict[str, int]

    def region(self, proc: str) -> Region:
        return self.regions[self.region_of[proc]]

    def order(self) -> list[tuple[str, ...]]:
        """The member tuples in schedule order (for tests/reports)."""
        return [region.members for region in self.regions]

    def procedures(self) -> tuple[str, ...]:
        """Every procedure, flattened in schedule order (callers first,
        SCC members adjacent). The slab builder lays out slot ids in this
        order so one region's slots are contiguous in the flat arrays."""
        return tuple(
            name for region in self.regions for name in region.members
        )


def build_region_schedule(graph: CallGraph) -> RegionSchedule:
    """Condense ``graph`` and order the components callers-first."""
    rpo = graph.rpo_index()
    components = sorted(
        graph.sccs(), key=lambda scc: min(rpo[name] for name in scc)
    )
    regions = []
    region_of: dict[str, int] = {}
    for index, members in enumerate(components):
        recursive = len(members) > 1 or any(
            callee == members[0] for callee in graph.callees(members[0])
        )
        regions.append(Region(index, tuple(members), recursive))
        for name in members:
            region_of[name] = index
    return RegionSchedule(tuple(regions), region_of)


def region_schedule(graph: CallGraph) -> RegionSchedule:
    """The graph's region schedule, computed once per graph instance.

    Stage 0 is shared across a whole configuration sweep, so every solve
    of every config reuses one condensation.
    """
    cached = getattr(graph, "_region_schedule", None)
    if cached is None:
        cached = build_region_schedule(graph)
        graph._region_schedule = cached  # type: ignore[attr-defined]
    return cached


@dataclass(frozen=True, slots=True)
class WaveSchedule:
    """The condensation's dependency levels, for parallel solving.

    ``level[i]`` is region ``i``'s longest caller-chain distance from a
    root of the condensation DAG: roots (regions no other region calls
    into) are level 0, and every cross-region call edge goes from a
    strictly lower level to a strictly higher one. All regions of one
    level — a *wave* — therefore have no call path between them: once
    every region of levels ``< L`` has converged, the activated regions
    of level ``L`` have final entry environments and can be converged
    independently, in any order, on any worker.
    """

    levels: tuple[int, ...]
    #: level -> region indices at that level, ascending (deterministic).
    waves: tuple[tuple[int, ...], ...]

    def level_of(self, region_index: int) -> int:
        return self.levels[region_index]


def build_wave_schedule(schedule: RegionSchedule, graph: CallGraph) -> WaveSchedule:
    """Longest-path levels of the condensation DAG.

    Computed by Kahn traversal over the region DAG rather than a dynamic
    program in region-index order: indices of *unreachable* components
    are ordered by name, not topologically (see the module docstring),
    so an index-order DP could read a successor's level before it is
    final. The Kahn order is correct for any DAG.
    """
    region_of = schedule.region_of
    count = len(schedule.regions)
    successors: list[set[int]] = [set() for _ in range(count)]
    indegree = [0] * count
    for caller in graph.nodes:
        home = region_of[caller]
        for callee in graph.callees(caller):
            target = region_of[callee]
            if target != home and target not in successors[home]:
                successors[home].add(target)
                indegree[target] += 1
    levels = [0] * count
    ready = [index for index in range(count) if indegree[index] == 0]
    processed = 0
    while ready:
        next_ready: list[int] = []
        for index in ready:
            processed += 1
            level = levels[index] + 1
            for target in successors[index]:
                if levels[target] < level:
                    levels[target] = level
                indegree[target] -= 1
                if indegree[target] == 0:
                    next_ready.append(target)
        ready = next_ready
    # The condensation of any digraph is acyclic; every region drains.
    assert processed == count, "condensation DAG had a cycle"
    waves: dict[int, list[int]] = {}
    for index in range(count):
        waves.setdefault(levels[index], []).append(index)
    return WaveSchedule(
        tuple(levels),
        tuple(
            tuple(waves[level]) for level in range(max(levels) + 1)
        )
        if count
        else (),
    )


def wave_schedule(graph: CallGraph) -> WaveSchedule:
    """The graph's wave schedule, computed once per graph instance (like
    :func:`region_schedule`, which it derives from)."""
    cached = getattr(graph, "_wave_schedule", None)
    if cached is None:
        cached = build_wave_schedule(region_schedule(graph), graph)
        graph._wave_schedule = cached  # type: ignore[attr-defined]
    return cached
