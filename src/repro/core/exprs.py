"""Symbolic value expressions over procedure-entry values.

A :class:`ValueExpr` describes the value of something inside a procedure
as a function of the values its formals and globals had *on entry* — which
is precisely what a jump function is (paper §2). The same representation
serves:

- the polynomial parameter jump function (the expression itself),
- the pass-through parameter jump function (an expression that *is* an
  :class:`EntryExpr`),
- the intraprocedural constant jump function (an expression that folds to
  a constant with every entry value unknown), and
- the polynomial return jump function.

``EntryKey`` identifies an entry value: a formal parameter by name (``str``)
or a COMMON global by :class:`~repro.frontend.symbols.GlobalId`. The paper
extends "parameter" to cover globals (footnote 1); so do we.

Expressions are immutable and hashable. Construction simplifies eagerly:
constant operands fold (using the FORTRAN semantics in
:mod:`repro.semantics`), algebraic identities are applied, and any ⊥
operand collapses the whole expression to ⊥ (except multiplication by a
literal zero, which is 0 regardless). The paper observes that in practice
polynomial jump functions stay small (§3.1.5); the ``MAX_NODES`` guard
turns pathological growth into ⊥ rather than letting it slow the solver.

Expressions are also **hash-consed**: the smart constructors intern every
node in the process-wide :data:`INTERN_TABLE`, so structurally equal
expressions built through them share identity across call sites, across
procedures, and across analysis configurations. Identity sharing is what
makes the sparse solver's evaluation memo (keyed on ``id(expr)`` plus the
expression's support-slice of the environment) hit across sites, and it
lets every node cache its ``size`` and ``support`` once at construction.
The table's lifetime is the process (like
:data:`repro.core.driver.GLOBAL_STAGE0_CACHE`); call
:func:`clear_intern_table` to drop it. Equality stays structural, so
expressions constructed directly (e.g. in tests) still compare equal to
interned ones — they just don't share storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro import semantics
from repro.core.lattice import BOTTOM, TOP, LatticeValue
from repro.frontend.symbols import GlobalId

EntryKey = Union[str, GlobalId]

MAX_NODES = 200

_EMPTY_SUPPORT: frozenset = frozenset()


class InternTable:
    """A hash-consing table for :class:`ValueExpr` nodes.

    Keys are built by the smart constructors: constants and entry keys by
    value (and value *class* — ``ConstExpr(True)`` must never unify with
    ``ConstExpr(1)``), operator nodes by operator plus the identities of
    their already-interned operands, which makes interning O(1) per node
    instead of O(size). Operand identities stay valid because the table
    holds the parent, the parent holds the operands, and entries are only
    ever dropped all at once by :meth:`clear`.

    The table carries a **generation counter** that :meth:`clear` bumps.
    Any cache that keys on ``id(expr)`` (the sparse engine's evaluation
    memo, the compiled-kernel cache below) must include the generation in
    its keys: after a clear, CPython may recycle a dropped expression's id
    for a brand-new node, and a generation-less cache would silently serve
    the old entry for it.

    The table also owns the **compiled-kernel cache** for
    :func:`compile_expr`: one closure per interned node, keyed by
    ``(generation, id(expr))`` and holding a strong reference to the
    expression (so the id cannot be recycled while the entry lives).
    Kernels are dropped together with the expressions by :meth:`clear`.
    """

    __slots__ = (
        "_table",
        "hits",
        "misses",
        "generation",
        "_kernels",
        "kernel_compiles",
        "kernel_hits",
    )

    def __init__(self) -> None:
        self._table: dict[object, ValueExpr] = {}
        self.hits = 0
        self.misses = 0
        self.generation = 0
        self._kernels: dict[object, tuple[ValueExpr, object]] = {}
        self.kernel_compiles = 0
        self.kernel_hits = 0

    def __len__(self) -> int:
        return len(self._table)

    def get(self, key: object) -> "ValueExpr | None":
        expr = self._table.get(key)
        if expr is not None:
            self.hits += 1
        return expr

    def put(self, key: object, expr: "ValueExpr") -> "ValueExpr":
        self.misses += 1
        self._table[key] = expr
        return expr

    def clear(self) -> None:
        self._table.clear()
        self._kernels.clear()
        self.generation += 1

    def kernel_for(self, expr: "ValueExpr") -> "object | None":
        """The cached compiled kernel for ``expr`` in the current
        generation, or ``None``. Counts a hit only when found."""
        entry = self._kernels.get((self.generation, id(expr)))
        if entry is None:
            return None
        self.kernel_hits += 1
        return entry[1]

    def counters(self) -> dict[str, int]:
        return {
            "expr_intern_hits": self.hits,
            "expr_intern_misses": self.misses,
            "expr_intern_entries": len(self._table),
            "expr_intern_generation": self.generation,
            "expr_kernel_compiles": self.kernel_compiles,
            "expr_kernel_hits": self.kernel_hits,
            "expr_kernel_entries": len(self._kernels),
        }


#: The process-wide hash-consing table the smart constructors use.
INTERN_TABLE = InternTable()


def clear_intern_table() -> None:
    """Drop every interned expression (counters survive)."""
    INTERN_TABLE.clear()


def intern_counters() -> dict[str, int]:
    """Observability for the process-wide table (``--stats`` prints it)."""
    return INTERN_TABLE.counters()


class ValueExpr:
    """Base class; concrete kinds below. Immutable."""

    __slots__ = ()

    def support(self) -> frozenset[EntryKey]:
        """The exact set of entry values this expression reads (paper §2)."""
        return _EMPTY_SUPPORT

    def support_order(self) -> tuple[EntryKey, ...]:
        """The support keys in first-use order — a deterministic tuple the
        sparse engine uses to slice environments for memo keys."""
        return ()

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        """Evaluate over the lattice given entry-value approximations.

        Missing keys count as ⊥. Any ⊥ operand yields ⊥; otherwise any ⊤
        operand yields ⊤ (optimism — the value may still become constant);
        otherwise the operator folds.
        """
        raise NotImplementedError

    @property
    def size(self) -> int:
        return 1

    @property
    def is_bottom(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class ConstExpr(ValueExpr):
    """An integer or logical constant."""

    value: int | bool

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return self.value

    @property
    def is_constant(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class EntryExpr(ValueExpr):
    """The entry value of a formal parameter or global."""

    key: EntryKey

    def support(self) -> frozenset[EntryKey]:
        return frozenset({self.key})

    def support_order(self) -> tuple[EntryKey, ...]:
        return (self.key,)

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return env.get(self.key, BOTTOM)

    def __str__(self) -> str:
        return f"entry({self.key})"


@dataclass(frozen=True, slots=True)
class OpExpr(ValueExpr):
    """``op`` applied to sub-expressions. ``arity`` tags the operator
    family: 'bin', 'un', or 'intrinsic'. Size and support are computed
    once at construction (hash-consing makes every node long-lived and
    shared, so the caches amortize across every consumer)."""

    op: str
    args: tuple[ValueExpr, ...]
    arity: str = "bin"
    _size: int = field(default=1, init=False, repr=False, compare=False)
    _support: frozenset = field(
        default=_EMPTY_SUPPORT, init=False, repr=False, compare=False
    )
    _order: tuple = field(default=(), init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        size = 1
        order: list[EntryKey] = []
        seen: set[EntryKey] = set()
        for arg in self.args:
            size += arg.size
            for key in arg.support_order():
                if key not in seen:
                    seen.add(key)
                    order.append(key)
        object.__setattr__(self, "_size", size)
        object.__setattr__(self, "_order", tuple(order))
        object.__setattr__(self, "_support", frozenset(order))

    def support(self) -> frozenset[EntryKey]:
        return self._support

    def support_order(self) -> tuple[EntryKey, ...]:
        return self._order

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        if self.op == "*" and self.arity == "bin":
            # Multiplication absorbs through the whole lattice: 0 * x is 0
            # for x ∈ {⊤, c, ⊥} alike (paper §3.1.5's folding discipline —
            # ``make_binary`` applies the same rule at construction time,
            # so evaluation must agree for trees built around a computed
            # zero). INTEGER zero only: .FALSE. == 0 in Python.
            left = self.args[0].evaluate(env)
            right = self.args[1].evaluate(env)
            if (left.__class__ is int and left == 0) or (
                right.__class__ is int and right == 0
            ):
                return 0
            if left is BOTTOM or right is BOTTOM:
                return BOTTOM
            if left is TOP or right is TOP:
                return TOP
            return _fold("*", "bin", [left, right])
        values = []
        saw_top = False
        for arg in self.args:
            value = arg.evaluate(env)
            if value is BOTTOM:
                return BOTTOM
            if value is TOP:
                saw_top = True
            values.append(value)
        if saw_top:
            return TOP
        return _fold(self.op, self.arity, values)

    @property
    def size(self) -> int:
        return self._size

    def __str__(self) -> str:
        if self.arity == "bin":
            return f"({self.args[0]} {self.op} {self.args[1]})"
        if self.arity == "un":
            return f"({self.op}{self.args[0]})"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


class _BottomExpr(ValueExpr):
    """The unknown value. Singleton."""

    __slots__ = ()

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return BOTTOM

    @property
    def is_bottom(self) -> bool:
        return True

    def __str__(self) -> str:
        return "⊥"

    def __repr__(self) -> str:
        return "BOTTOM_EXPR"


BOTTOM_EXPR = _BottomExpr()


def _fold(op: str, arity: str, values: list) -> LatticeValue:
    try:
        if arity == "bin":
            result = semantics.apply_binary(op, values[0], values[1])
        elif arity == "un":
            result = semantics.apply_unary(op, values[0])
        else:
            result = semantics.apply_intrinsic(op, values)
    except (semantics.EvalError, OverflowError, ValueError):
        return BOTTOM
    if isinstance(result, bool):
        return result
    if isinstance(result, int):
        return result
    return BOTTOM  # REAL results are never constants (paper §4)


# --------------------------------------------------------------------------
# Smart constructors
# --------------------------------------------------------------------------


def const_expr(value: int | bool) -> ConstExpr:
    # value *class* is part of the key: True == 1 in Python, but the
    # lattice (and FORTRAN) distinguish LOGICAL from INTEGER constants.
    key = ("const", value.__class__, value)
    cached = INTERN_TABLE.get(key)
    if cached is None:
        cached = INTERN_TABLE.put(key, ConstExpr(value))
    return cached  # type: ignore[return-value]


def entry_expr(key: EntryKey) -> EntryExpr:
    table_key = ("entry", key)
    cached = INTERN_TABLE.get(table_key)
    if cached is None:
        cached = INTERN_TABLE.put(table_key, EntryExpr(key))
    return cached  # type: ignore[return-value]


def _op_expr(op: str, args: tuple[ValueExpr, ...], arity: str) -> ValueExpr:
    """Intern an operator node. Operand *identities* key the table — after
    bottom-up construction through the smart constructors every operand is
    already interned, so identical identity tuples mean identical trees."""
    key = ("op", op, arity, tuple(map(id, args)))
    cached = INTERN_TABLE.get(key)
    if cached is None:
        cached = INTERN_TABLE.put(key, OpExpr(op, args, arity))
    return cached


def _is_zero(expr: ValueExpr) -> bool:
    return isinstance(expr, ConstExpr) and expr.value == 0 and not isinstance(
        expr.value, bool
    )


def _is_one(expr: ValueExpr) -> bool:
    return isinstance(expr, ConstExpr) and expr.value == 1 and not isinstance(
        expr.value, bool
    )


def make_binary(op: str, left: ValueExpr, right: ValueExpr) -> ValueExpr:
    """Construct ``left op right`` with folding and identities."""
    if op == "*" and (_is_zero(left) or _is_zero(right)):
        return const_expr(0)  # 0 * ⊥ is still 0
    if left.is_bottom or right.is_bottom:
        return BOTTOM_EXPR
    if isinstance(left, ConstExpr) and isinstance(right, ConstExpr):
        folded = _fold(op, "bin", [left.value, right.value])
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    # Algebraic identities (sound over the integers).
    if op == "+":
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
    elif op == "-":
        if _is_zero(right):
            return left
        if left == right:
            return const_expr(0)
    elif op == "*":
        if _is_one(left):
            return right
        if _is_one(right):
            return left
    elif op == "/":
        if _is_one(right):
            return left
    elif op == "**":
        if _is_one(right):
            return left
    elif op in ("==", "<=", ">="):
        if left == right:
            return const_expr(True)
    elif op in ("/=", "<", ">"):
        if left == right:
            return const_expr(False)
    if 1 + left.size + right.size > MAX_NODES:
        return BOTTOM_EXPR
    return _op_expr(op, (left, right), "bin")


def make_unary(op: str, operand: ValueExpr) -> ValueExpr:
    if operand.is_bottom:
        return BOTTOM_EXPR
    if isinstance(operand, ConstExpr):
        folded = _fold(op, "un", [operand.value])
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    if op == "+":
        return operand
    # --x == x
    if (
        op == "-"
        and isinstance(operand, OpExpr)
        and operand.arity == "un"
        and operand.op == "-"
    ):
        return operand.args[0]
    return _op_expr(op, (operand,), "un")


def make_intrinsic(name: str, args: list[ValueExpr]) -> ValueExpr:
    if any(arg.is_bottom for arg in args):
        return BOTTOM_EXPR
    if all(isinstance(arg, ConstExpr) for arg in args):
        folded = _fold(name, "intrinsic", [a.value for a in args])  # type: ignore[union-attr]
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    if 1 + sum(arg.size for arg in args) > MAX_NODES:
        return BOTTOM_EXPR
    return _op_expr(name, tuple(args), "intrinsic")


def substitute(expr: ValueExpr, bindings: Mapping[EntryKey, ValueExpr]) -> ValueExpr:
    """Replace entry keys with expressions (used by the
    ``compose_return_functions`` extension). Missing keys become ⊥."""
    if isinstance(expr, EntryExpr):
        return bindings.get(expr.key, BOTTOM_EXPR)
    if isinstance(expr, OpExpr):
        new_args = [substitute(arg, bindings) for arg in expr.args]
        if expr.arity == "bin":
            return make_binary(expr.op, new_args[0], new_args[1])
        if expr.arity == "un":
            return make_unary(expr.op, new_args[0])
        return make_intrinsic(expr.op, new_args)
    return expr


def constant_only_value(expr: ValueExpr) -> LatticeValue:
    """Evaluate with every entry value unknown — the paper's ``gcp``:
    the constant value derivable from purely intraprocedural information."""
    return expr.evaluate({})


# --------------------------------------------------------------------------
# Compiled kernels
# --------------------------------------------------------------------------
#
# ``evaluate`` tree-walks: one method dispatch, one loop, and one list
# allocation per operator node, every single evaluation. Jump functions are
# tiny but *hot* — the sparse engine re-evaluates the same interned
# expression for every support delta — so ``compile_expr`` flattens each
# node once into a chain of closures: leaves become constant/dict-lookup
# lambdas and operator nodes become closures over their operand kernels
# with the lattice short-circuits inlined. Hash-consing makes the cache
# pay twice: structurally shared subtrees compile once and the compiled
# kernel is shared by every parent. Kernels fold through ``_fold``, so
# compiled and tree-walk evaluation are value-identical by construction
# (including the multiplicative absorption rule above).


def _compile_node(expr: ValueExpr, table: InternTable):
    if isinstance(expr, ConstExpr):
        value = expr.value
        return lambda env: value
    if isinstance(expr, EntryExpr):
        key = expr.key
        return lambda env: env.get(key, BOTTOM)
    if isinstance(expr, _BottomExpr):
        return lambda env: BOTTOM
    assert isinstance(expr, OpExpr)
    kernels = tuple(compile_expr(arg, table) for arg in expr.args)
    return _compile_op(expr, kernels)


def _compile_op(expr: OpExpr, kernels):
    """Build the operator closure over already-compiled operand kernels.

    The closures are *carrier-agnostic*: they call their operand kernels
    with whatever single argument they themselves received and only touch
    the lattice values those return. The same bodies therefore serve both
    the boxed-environment kernels (``kernel(env)``) and the slab kernels
    (``kernel(codes)``) — only the leaves differ between the two targets.
    """
    op, arity = expr.op, expr.arity
    if arity == "bin":
        ka, kb = kernels
        if op == "*":

            def mul_kernel(env):
                a = ka(env)
                b = kb(env)
                if (a.__class__ is int and a == 0) or (
                    b.__class__ is int and b == 0
                ):
                    return 0
                if a is BOTTOM or b is BOTTOM:
                    return BOTTOM
                if a is TOP or b is TOP:
                    return TOP
                return a * b

            return mul_kernel
        if op == "+":
            # On lattice constants (int/bool only) ``+`` and ``-`` cannot
            # raise and always produce int, so the ``_fold`` dispatch
            # inlines away — most of the kernel speedup comes from here.

            def add_kernel(env):
                a = ka(env)
                if a is BOTTOM:
                    return BOTTOM
                b = kb(env)
                if b is BOTTOM:
                    return BOTTOM
                if a is TOP or b is TOP:
                    return TOP
                return a + b

            return add_kernel
        if op == "-":

            def sub_kernel(env):
                a = ka(env)
                if a is BOTTOM:
                    return BOTTOM
                b = kb(env)
                if b is BOTTOM:
                    return BOTTOM
                if a is TOP or b is TOP:
                    return TOP
                return a - b

            return sub_kernel

        def bin_kernel(env):
            a = ka(env)
            if a is BOTTOM:
                return BOTTOM
            b = kb(env)
            if b is BOTTOM:
                return BOTTOM
            if a is TOP or b is TOP:
                return TOP
            return _fold(op, "bin", [a, b])

        return bin_kernel
    if arity == "un":
        (ku,) = kernels

        def un_kernel(env):
            a = ku(env)
            if a is BOTTOM:
                return BOTTOM
            if a is TOP:
                return TOP
            return _fold(op, "un", [a])

        return un_kernel

    def intrinsic_kernel(env):
        values = []
        saw_top = False
        for kernel in kernels:
            value = kernel(env)
            if value is BOTTOM:
                return BOTTOM
            if value is TOP:
                saw_top = True
            values.append(value)
        if saw_top:
            return TOP
        return _fold(op, arity, values)

    return intrinsic_kernel


def compile_expr(expr: ValueExpr, table: InternTable = INTERN_TABLE):
    """Compile ``expr`` into a ``kernel(env) -> LatticeValue`` closure.

    Kernels are cached per table and per generation (see
    :class:`InternTable`); repeated calls for the same interned node (or a
    shared subtree of a larger one) return the same closure. The cache
    entry pins the expression itself, so an ``id``-recycling collision
    within a generation is impossible, and :func:`clear_intern_table`
    drops the kernels together with the expressions they close over.
    """
    key = (table.generation, id(expr))
    entry = table._kernels.get(key)
    if entry is not None:
        table.kernel_hits += 1
        return entry[1]
    kernel = _compile_node(expr, table)
    table.kernel_compiles += 1
    table._kernels[key] = (expr, kernel)
    return kernel


def compile_slab_expr(expr: ValueExpr, slots: Mapping[EntryKey, int], constants):
    """Compile ``expr`` into a ``kernel(codes) -> LatticeValue`` closure
    that reads a flat slab (``codes[slot]`` tagged ints) instead of a
    boxed environment dict.

    ``slots`` maps the owning procedure's entry keys to slot *offsets
    within the codes carrier the kernel will be handed* and ``constants``
    is the live constant-pool value list (captured by reference, so values
    interned after compilation still decode). Entry keys outside ``slots``
    are ⊥, mirroring ``env.get(key, BOTTOM)``. Operator nodes reuse the
    exact closure bodies of :func:`compile_expr` via ``_compile_op`` —
    the two kernel families are value-identical by construction.

    Unlike ``compile_expr`` these kernels close over plain ints and the
    pool list, never over interned expressions, so they are immune to
    :func:`clear_intern_table`; the slab caches them itself, keyed by
    structure at build time.
    """
    if isinstance(expr, ConstExpr):
        value = expr.value
        return lambda codes: value
    if isinstance(expr, EntryExpr):
        slot = slots.get(expr.key)
        if slot is None:
            return lambda codes: BOTTOM

        def leaf(codes, _slot=slot, _constants=constants):
            code = codes[_slot]
            if code >= 2:
                return _constants[code - 2]
            return TOP if code == 0 else BOTTOM

        return leaf
    if isinstance(expr, _BottomExpr):
        return lambda codes: BOTTOM
    assert isinstance(expr, OpExpr)
    kernels = tuple(
        compile_slab_expr(arg, slots, constants) for arg in expr.args
    )
    return _compile_op(expr, kernels)
