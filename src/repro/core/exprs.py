"""Symbolic value expressions over procedure-entry values.

A :class:`ValueExpr` describes the value of something inside a procedure
as a function of the values its formals and globals had *on entry* — which
is precisely what a jump function is (paper §2). The same representation
serves:

- the polynomial parameter jump function (the expression itself),
- the pass-through parameter jump function (an expression that *is* an
  :class:`EntryExpr`),
- the intraprocedural constant jump function (an expression that folds to
  a constant with every entry value unknown), and
- the polynomial return jump function.

``EntryKey`` identifies an entry value: a formal parameter by name (``str``)
or a COMMON global by :class:`~repro.frontend.symbols.GlobalId`. The paper
extends "parameter" to cover globals (footnote 1); so do we.

Expressions are immutable and hashable. Construction simplifies eagerly:
constant operands fold (using the FORTRAN semantics in
:mod:`repro.semantics`), algebraic identities are applied, and any ⊥
operand collapses the whole expression to ⊥ (except multiplication by a
literal zero, which is 0 regardless). The paper observes that in practice
polynomial jump functions stay small (§3.1.5); the ``MAX_NODES`` guard
turns pathological growth into ⊥ rather than letting it slow the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro import semantics
from repro.core.lattice import BOTTOM, TOP, LatticeValue
from repro.frontend.symbols import GlobalId

EntryKey = Union[str, GlobalId]

MAX_NODES = 200


class ValueExpr:
    """Base class; concrete kinds below. Immutable."""

    def support(self) -> frozenset[EntryKey]:
        """The exact set of entry values this expression reads (paper §2)."""
        return frozenset()

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        """Evaluate over the lattice given entry-value approximations.

        Missing keys count as ⊥. Any ⊥ operand yields ⊥; otherwise any ⊤
        operand yields ⊤ (optimism — the value may still become constant);
        otherwise the operator folds.
        """
        raise NotImplementedError

    @property
    def size(self) -> int:
        return 1

    @property
    def is_bottom(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return False


@dataclass(frozen=True)
class ConstExpr(ValueExpr):
    """An integer or logical constant."""

    value: int | bool

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return self.value

    @property
    def is_constant(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class EntryExpr(ValueExpr):
    """The entry value of a formal parameter or global."""

    key: EntryKey

    def support(self) -> frozenset[EntryKey]:
        return frozenset({self.key})

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return env.get(self.key, BOTTOM)

    def __str__(self) -> str:
        return f"entry({self.key})"


@dataclass(frozen=True)
class OpExpr(ValueExpr):
    """``op`` applied to sub-expressions. ``arity`` tags the operator
    family: 'bin', 'un', or 'intrinsic'."""

    op: str
    args: tuple[ValueExpr, ...]
    arity: str = "bin"

    def support(self) -> frozenset[EntryKey]:
        keys: frozenset[EntryKey] = frozenset()
        for arg in self.args:
            keys |= arg.support()
        return keys

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        values = []
        saw_top = False
        for arg in self.args:
            value = arg.evaluate(env)
            if value is BOTTOM:
                return BOTTOM
            if value is TOP:
                saw_top = True
            values.append(value)
        if saw_top:
            return TOP
        return _fold(self.op, self.arity, values)

    @property
    def size(self) -> int:
        return 1 + sum(arg.size for arg in self.args)

    def __str__(self) -> str:
        if self.arity == "bin":
            return f"({self.args[0]} {self.op} {self.args[1]})"
        if self.arity == "un":
            return f"({self.op}{self.args[0]})"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op}({inner})"


class _BottomExpr(ValueExpr):
    """The unknown value. Singleton."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return BOTTOM

    @property
    def is_bottom(self) -> bool:
        return True

    def __str__(self) -> str:
        return "⊥"

    def __repr__(self) -> str:
        return "BOTTOM_EXPR"


BOTTOM_EXPR = _BottomExpr()


def _fold(op: str, arity: str, values: list) -> LatticeValue:
    try:
        if arity == "bin":
            result = semantics.apply_binary(op, values[0], values[1])
        elif arity == "un":
            result = semantics.apply_unary(op, values[0])
        else:
            result = semantics.apply_intrinsic(op, values)
    except (semantics.EvalError, OverflowError, ValueError):
        return BOTTOM
    if isinstance(result, bool):
        return result
    if isinstance(result, int):
        return result
    return BOTTOM  # REAL results are never constants (paper §4)


# --------------------------------------------------------------------------
# Smart constructors
# --------------------------------------------------------------------------


def const_expr(value: int | bool) -> ConstExpr:
    return ConstExpr(value)


def entry_expr(key: EntryKey) -> EntryExpr:
    return EntryExpr(key)


def _is_zero(expr: ValueExpr) -> bool:
    return isinstance(expr, ConstExpr) and expr.value == 0 and not isinstance(
        expr.value, bool
    )


def _is_one(expr: ValueExpr) -> bool:
    return isinstance(expr, ConstExpr) and expr.value == 1 and not isinstance(
        expr.value, bool
    )


def make_binary(op: str, left: ValueExpr, right: ValueExpr) -> ValueExpr:
    """Construct ``left op right`` with folding and identities."""
    if op == "*" and (_is_zero(left) or _is_zero(right)):
        return const_expr(0)  # 0 * ⊥ is still 0
    if left.is_bottom or right.is_bottom:
        return BOTTOM_EXPR
    if isinstance(left, ConstExpr) and isinstance(right, ConstExpr):
        folded = _fold(op, "bin", [left.value, right.value])
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    # Algebraic identities (sound over the integers).
    if op == "+":
        if _is_zero(left):
            return right
        if _is_zero(right):
            return left
    elif op == "-":
        if _is_zero(right):
            return left
        if left == right:
            return const_expr(0)
    elif op == "*":
        if _is_one(left):
            return right
        if _is_one(right):
            return left
    elif op == "/":
        if _is_one(right):
            return left
    elif op == "**":
        if _is_one(right):
            return left
    elif op in ("==", "<=", ">="):
        if left == right:
            return const_expr(True)
    elif op in ("/=", "<", ">"):
        if left == right:
            return const_expr(False)
    result = OpExpr(op, (left, right), "bin")
    if result.size > MAX_NODES:
        return BOTTOM_EXPR
    return result


def make_unary(op: str, operand: ValueExpr) -> ValueExpr:
    if operand.is_bottom:
        return BOTTOM_EXPR
    if isinstance(operand, ConstExpr):
        folded = _fold(op, "un", [operand.value])
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    if op == "+":
        return operand
    # --x == x
    if (
        op == "-"
        and isinstance(operand, OpExpr)
        and operand.arity == "un"
        and operand.op == "-"
    ):
        return operand.args[0]
    return OpExpr(op, (operand,), "un")


def make_intrinsic(name: str, args: list[ValueExpr]) -> ValueExpr:
    if any(arg.is_bottom for arg in args):
        return BOTTOM_EXPR
    if all(isinstance(arg, ConstExpr) for arg in args):
        folded = _fold(name, "intrinsic", [a.value for a in args])  # type: ignore[union-attr]
        if folded is BOTTOM:
            return BOTTOM_EXPR
        return const_expr(folded)  # type: ignore[arg-type]
    result = OpExpr(name, tuple(args), "intrinsic")
    if result.size > MAX_NODES:
        return BOTTOM_EXPR
    return result


def substitute(expr: ValueExpr, bindings: Mapping[EntryKey, ValueExpr]) -> ValueExpr:
    """Replace entry keys with expressions (used by the
    ``compose_return_functions`` extension). Missing keys become ⊥."""
    if isinstance(expr, EntryExpr):
        return bindings.get(expr.key, BOTTOM_EXPR)
    if isinstance(expr, OpExpr):
        new_args = [substitute(arg, bindings) for arg in expr.args]
        if expr.arity == "bin":
            return make_binary(expr.op, new_args[0], new_args[1])
        if expr.arity == "un":
            return make_unary(expr.op, new_args[0])
        return make_intrinsic(expr.op, new_args)
    return expr


def constant_only_value(expr: ValueExpr) -> LatticeValue:
    """Evaluate with every entry value unknown — the paper's ``gcp``:
    the constant value derivable from purely intraprocedural information."""
    return expr.evaluate({})
