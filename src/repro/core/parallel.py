"""Parallel stage-3 solving over the condensation's dependency waves.

The SCC condensation (:mod:`repro.core.regions`) is a DAG: once every
region that can call into region R has converged, R's entry environments
are final. :func:`repro.core.regions.wave_schedule` stratifies the DAG
into *waves* — levels of regions with no call path between them — and
this module's :class:`ParallelRegionSolver` converges all activated
regions of one wave concurrently on a process pool, then merges their
fixed points deterministically (ascending region index) before the next
wave starts.

Correctness rests on the same argument as the sequential region
schedule: a region's local fixed point is a function of its members'
final entry environments only, and cross-region contributions are meets
of monotone-function values — associative and commutative, so merging a
wave's contributions in any fixed order meets the identical values the
interleaved sequential flushes would have. VAL sets are therefore
byte-identical to :func:`repro.core.solver.solve`'s (the property suite
asserts it). Counters are deterministic for a fixed worker count, but
``evaluations``/``bottom_skips`` may differ from the sequential
schedule's: a task flushes into private all-⊤ scratch environments, so
it cannot see that a sibling region already lowered a shared callee
binding to ⊥ and skip the evaluation.

Under ``--flat`` the same wave schedule runs over the slab engine
instead: the worker state carries the configuration's
:class:`~repro.core.slab.SlabProgram` (store-loaded and possibly
patched in the parent, rebuilt deterministically in spawned workers —
tasks exchange only name/key-addressed segments, so the processes never
need byte-identical slabs), and each region task replays its members'
precomputed firing-stream blocks with drains confined to the region's
contiguous slot range (:func:`_solve_region_task_flat`).

Worker processes rebuild stages 0–2 from ``(source, config)`` in their
initializer — every stage is deterministic, so the rebuilt region
indices, support index, and expression identities line up with the
parent's. Under the default ``fork`` start method the rebuild is skipped
entirely: the module-level worker state is stamped before the pool is
created, and forked children inherit the parent's structures
copy-on-write. Tasks ship only ``(region index, reached members, entry
environments)`` and return a picklable :class:`RegionOutcome` whose
environments are :class:`~repro.core.slab.SlabSegment`-encoded —
tagged-int code arrays plus a self-contained constant pool per
segment, far smaller on the wire than boxed dicts of lattice values;
the lattice singletons ⊤/⊥ reduce to themselves across the boundary
where they do still travel (inside ship-side entry environments).

Failure contract: any pool- or task-level failure (a worker killed
mid-wave, a pickling error, a schedule violation) raises
:class:`ParallelSolveError`, which the driver converts into an RL540
degradation and a sequential re-solve — never a crash and never a
partial result. :class:`~repro.resilience.errors.BudgetExhaustedError`
is the one exception that must *not* degrade to a sequential retry (the
ladder owns it); workers return it as a structured marker (the
exception's ``__reduce__`` does not survive pickling) and the parent
re-raises it.
"""

from __future__ import annotations

from array import array
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Mapping

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.config import AnalysisConfig
from repro.core.engine import (
    ENGINE_COUNTERS,
    DeltaEngine,
    RegionPartition,
    SupportIndex,
    entry_keys,
)
from repro.core.exprs import EntryKey
from repro.core.lattice import TOP, LatticeValue, meet
from repro.core.regions import (
    RegionSchedule,
    WaveSchedule,
    region_schedule,
    wave_schedule,
)
from repro.core.slab import (
    CONST_BASE,
    SlabProgram,
    SlabSegment,
    encode_env,
    slab_for,
)
from repro.core.solver import (
    SolveResult,
    _partition_for,
    _PriorityWorklist,
    initial_val,
)
from repro.ir.lower import LoweredProgram
from repro.resilience import chaos
from repro.resilience.budgets import SolveBudget
from repro.resilience.errors import (
    BudgetExhaustedError,
    ResilienceError,
    Stage,
)

__all__ = ["ParallelRegionSolver", "ParallelSolveError", "solve_parallel"]


class ParallelSolveError(ResilienceError):
    """The parallel schedule could not complete — worker loss, pool
    breakage, a task crash, or a wave-order violation. The driver
    degrades to the sequential schedule (RL540); the analysis itself is
    not implicated."""

    stage = Stage.SOLVE


@dataclass(slots=True)
class _WorkerState:
    """Stages 0–2, as one process (parent or worker) sees them."""

    source: str | None
    config: AnalysisConfig | None
    lowered: LoweredProgram
    graph: CallGraph
    forward: ForwardFunctions
    index: SupportIndex
    schedule: RegionSchedule
    partition: RegionPartition
    keys_of: dict[str, list[EntryKey]]
    rpo: dict[str, int]
    compiled: bool
    #: the flat engine's slab (and its name→pid map) when the config
    #: runs ``--flat``: region tasks then replay firing-stream blocks
    #: instead of running the object DeltaEngine
    slab: SlabProgram | None = None
    slab_pids: dict[str, int] | None = None


@dataclass(frozen=True, slots=True)
class RegionOutcome:
    """One region's converged fixed point, ready to merge.

    ``member_envs`` hold the final entry environments of the processed
    members; ``contributions`` the cross-region flush results — per
    callee, the keys the region's edges lowered *from ⊤ in private
    scratch*, i.e. exactly the meet of this region's incoming values,
    for the parent to meet into the shared VAL. Both are shipped as
    :class:`~repro.core.slab.SlabSegment`s (key tuple + tagged-int
    codes + per-segment constant pool) rather than boxed dicts: the
    pickle payload shrinks to a few machine words per binding and the
    parent decodes lazily while merging. ``activations`` are the
    cross-region callees reached (with or without lowered keys).
    """

    index: int
    processed: tuple[str, ...]
    member_envs: dict[str, SlabSegment]
    activations: tuple[str, ...]
    contributions: dict[str, SlabSegment]
    counters: dict[str, int]
    local_passes: int
    pops: int


def _make_state(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    source: str | None,
    config: AnalysisConfig | None,
    compiled: bool,
) -> _WorkerState:
    schedule = region_schedule(graph)
    slab = (
        slab_for(forward, lowered, graph)
        if config is not None and config.flat_engine
        else None
    )
    return _WorkerState(
        source=source,
        config=config,
        lowered=lowered,
        graph=graph,
        forward=forward,
        index=forward.support_index(lowered),
        schedule=schedule,
        partition=_partition_for(forward, lowered, schedule.region_of),
        keys_of=entry_keys(lowered),
        rpo=graph.rpo_index(),
        compiled=compiled,
        slab=slab,
        slab_pids=(
            {name: pid for pid, name in enumerate(slab.proc_names)}
            if slab is not None
            else None
        ),
    )


#: The per-process stage-0–2 bundle tasks run against. In the parent it
#: doubles as the inline-execution state; forked workers inherit it and
#: skip the rebuild, spawned workers rebuild from (source, config).
_WORKER_STATE: _WorkerState | None = None


def _build_worker_state(source: str, config: AnalysisConfig) -> _WorkerState:
    # Late imports: the driver imports this module at top level.
    from repro.core.builder import build_forward_jump_functions
    from repro.core.driver import build_stage0
    from repro.core.returns import build_return_jump_functions
    from repro.frontend.symbols import parse_program

    stage0 = build_stage0(parse_program(source))
    returns = build_return_jump_functions(
        stage0.lowered, stage0.graph, stage0.modref, config,
        ssa_cache=stage0.ssa_cache,
    )
    forward = build_forward_jump_functions(
        stage0.lowered, stage0.modref, returns, config,
        ssa_cache=stage0.ssa_cache,
    )
    return _make_state(
        stage0.lowered,
        stage0.graph,
        forward,
        source=source,
        config=config,
        compiled=config.compiled_exprs,
    )


def _worker_init(
    source: str,
    config: AnalysisConfig,
    chaos_spec: "chaos.ChaosSpec | None",
) -> None:
    """Process-pool initializer: arm chaos (tests) and ensure the worker
    has the right stage-0–2 state — inherited via fork, or rebuilt.

    The injector is labelled ``"region-worker"`` so a chaos fault can
    target pool workers specifically (``Fault(program="region-worker")``)
    without also firing on the parent's inline single-region waves."""
    global _WORKER_STATE
    if chaos_spec is not None:
        chaos.install(chaos_spec, label="region-worker", in_worker=True)
    state = _WORKER_STATE
    if (
        state is not None
        and state.source == source
        and state.config == config
    ):
        return
    _WORKER_STATE = _build_worker_state(source, config)


def _segment_of(
    keys: tuple[EntryKey, ...], codes: array, pool_values: list
) -> SlabSegment:
    """Re-pool a codes slice into a self-contained :class:`SlabSegment`:
    the slab's global pool numbering is process-private, so wire
    segments carry their own constant tuple exactly like
    :func:`~repro.core.slab.encode_env`'s output."""
    local: list[LatticeValue] = []
    remap: dict[int, int] = {}
    out = array("i", codes)
    for i, code in enumerate(out):
        if code >= CONST_BASE:
            new = remap.get(code)
            if new is None:
                new = len(local) + CONST_BASE
                remap[code] = new
                local.append(pool_values[code - CONST_BASE])
            out[i] = new
    return SlabSegment(keys, out, tuple(local))


def _solve_region_task_flat(
    state: _WorkerState,
    index: int,
    reached: tuple[str, ...],
    envs: Mapping[str, dict[EntryKey, LatticeValue]],
    budget: SolveBudget | None,
) -> RegionOutcome:
    """Flat-engine variant of :func:`_solve_region_task`: replay the
    region members' precomputed firing-stream blocks against a private
    codes array instead of running the object :class:`DeltaEngine`.

    Soundness mirrors the sequential flat solve restricted to one
    region. Slots are assigned in region-schedule order, so a region's
    members occupy one contiguous pid (and therefore slot) range — the
    guard below re-checks that and raises :class:`ParallelSolveError`
    (→ RL540, sequential re-solve) rather than trusting it. The
    members replayed are exactly those the global sweep reached
    (``pid_rank >= 0``): by the wave invariant every activation into
    this region is already recorded when its wave runs, so the global
    reach of a member equals its in-region reachability from
    ``reached``. The stream's baked ``enq`` flag ("owner seeded before
    this firing?") keeps its meaning under the restriction because
    members replay in global sweep-rank order; drains are confined to
    the region's slot range, and everything lowered outside it reads
    off as this region's pure contribution — external scratch starts
    all-⊤ exactly like the object task's."""
    slab = state.slab
    pids_of = state.slab_pids
    assert slab is not None and pids_of is not None
    region = state.schedule.regions[index]
    pids = sorted(pids_of[member] for member in region.members)
    lo_pid, hi_pid = pids[0], pids[-1] + 1
    if pids != list(range(lo_pid, hi_pid)):
        raise ParallelSolveError(
            f"region {index} members are not slot-contiguous in the slab"
        )
    slot_base = slab.slot_base
    slot_lo, slot_hi = slot_base[lo_pid], slot_base[hi_pid]
    nslots = slab.nslots
    codes = array("i", bytes(4 * nslots)) if nslots else array("i")
    pool = slab.pool
    encode = pool.encode
    for member in reached:
        env = envs.get(member)
        if env is None:
            continue
        base = slot_base[pids_of[member]]
        if len(env) != slot_base[pids_of[member] + 1] - base:
            raise ParallelSolveError(
                f"entry environment for {member} does not match the slab"
            )
        # dict order is entry_keys order on both sides (initial_val and
        # build_slab share it), so offsets line up without key lookups
        for offset, value in enumerate(env.values()):
            if value is not TOP:
                codes[base + offset] = encode(value)

    pid_rank = slab.pid_rank
    replay = [pid for pid in range(lo_pid, hi_pid) if pid_rank[pid] >= 0]
    replay.sort(key=pid_rank.__getitem__)
    block_starts = slab.p1_block_starts
    p1_target = slab.p1_target
    p1_kind = slab.p1_kind
    p1_payload = slab.p1_payload
    p1_enq = slab.p1_enq
    kernels = slab.kernels
    in_queue = array("i", bytes(4 * nslots)) if nslots else array("i")
    queue: list[int] = []
    fill_gen = 1
    stats = SolveResult(val={})
    evaluations = meets = bottom_skips = skipped = 0
    for pid in replay:
        rank = pid_rank[pid]
        for e in range(block_starts[rank], block_starts[rank + 1]):
            target = p1_target[e]
            old = codes[target]
            kind = p1_kind[e]
            if old == 1:
                if kind == 4:
                    skipped += 1
                else:
                    bottom_skips += 1
                continue
            if kind == 1:
                evaluations += 1
                payload = p1_payload[e]
                inc = codes[payload] if payload >= 0 else 1
            elif kind == 0:
                inc = p1_payload[e]
            elif kind == 4:
                skipped += 1
                meets += 1
                codes[target] = 1
                if (
                    p1_enq[e]
                    and slot_lo <= target < slot_hi
                    and in_queue[target] != fill_gen
                ):
                    in_queue[target] = fill_gen
                    queue.append(target)
                continue
            elif kind == 2:
                evaluations += 1
                inc = encode(kernels[p1_payload[e]](codes))
            else:
                bottom_skips += 1
                inc = 1
            meets += 1
            if old == 0:
                new = inc
            elif inc == 0 or old == inc:
                continue
            else:
                new = 1
            if new != old:
                codes[target] = new
                if (
                    p1_enq[e]
                    and slot_lo <= target < slot_hi
                    and in_queue[target] != fill_gen
                ):
                    in_queue[target] = fill_gen
                    queue.append(target)
    stats.evaluations += evaluations
    stats.meets += meets
    stats.bottom_skips += bottom_skips
    stats.skipped += skipped
    if budget is not None:
        budget.check_engine(stats)

    dep_indptr = slab.dep_indptr
    dep_edges = slab.dep_edges
    batch_drains = 0
    pops = len(replay)
    while queue:
        batch = queue
        queue = []
        fill_gen += 1
        batch_drains += 1
        evaluations = meets = bottom_skips = 0
        for slot in batch:
            for i in range(dep_indptr[slot], dep_indptr[slot + 1]):
                e = dep_edges[i]
                target = p1_target[e]
                old = codes[target]
                if old == 1:
                    bottom_skips += 1
                    continue
                kind = p1_kind[e]
                if kind == 0:
                    inc = p1_payload[e]
                elif kind == 1:
                    evaluations += 1
                    source = p1_payload[e]
                    inc = codes[source] if source >= 0 else 1
                elif kind == 2:
                    evaluations += 1
                    inc = encode(kernels[p1_payload[e]](codes))
                else:
                    bottom_skips += 1
                    inc = 1
                meets += 1
                if old == 0:
                    new = inc
                elif inc == 0 or old == inc:
                    continue
                else:
                    new = 1
                if new != old:
                    codes[target] = new
                    if (
                        slot_lo <= target < slot_hi
                        and in_queue[target] != fill_gen
                    ):
                        in_queue[target] = fill_gen
                        queue.append(target)
        pops += len(batch)
        stats.evaluations += evaluations
        stats.meets += meets
        stats.bottom_skips += bottom_skips
        stats.deltas += len(batch)
        if budget is not None:
            budget.check_engine(stats)
            budget.check_passes(1 + batch_drains)

    keys_flat = slab.keys_flat
    pool_values = pool.values
    member_envs: dict[str, SlabSegment] = {}
    for pid in replay:
        base, end = slot_base[pid], slot_base[pid + 1]
        member_envs[slab.proc_names[pid]] = _segment_of(
            keys_flat[base:end], codes[base:end], pool_values
        )
    callee_indptr = slab.callee_indptr
    callee_ids = slab.callee_ids
    external: dict[int, None] = {}
    for pid in replay:
        for i in range(callee_indptr[pid], callee_indptr[pid + 1]):
            callee = callee_ids[i]
            if not lo_pid <= callee < hi_pid and callee not in external:
                external[callee] = None
    contributions: dict[str, SlabSegment] = {}
    for callee in external:
        keys: list[EntryKey] = []
        touched = array("i")
        for slot in range(slot_base[callee], slot_base[callee + 1]):
            code = codes[slot]
            if code:  # lowered from ⊤ by this region's edges
                keys.append(keys_flat[slot])
                touched.append(code)
        if keys:
            contributions[slab.proc_names[callee]] = _segment_of(
                tuple(keys), touched, pool_values
            )
    return RegionOutcome(
        index=index,
        processed=tuple(slab.proc_names[pid] for pid in replay),
        member_envs=member_envs,
        activations=tuple(
            sorted(slab.proc_names[callee] for callee in external)
        ),
        contributions=contributions,
        counters={name: getattr(stats, name) for name in ENGINE_COUNTERS},
        local_passes=1 + batch_drains,
        pops=pops,
    )


def _solve_region_task(
    state: _WorkerState,
    index: int,
    reached: tuple[str, ...],
    envs: Mapping[str, dict[EntryKey, LatticeValue]],
    budget: SolveBudget | None,
) -> RegionOutcome:
    """Converge one region against private scratch environments.

    ``reached`` are the members activated by earlier waves (sorted);
    ``envs`` their — final — entry environments. Members never reached
    stay at ⊤ exactly as in the sequential schedule. Cross-region
    callees get all-⊤ scratch environments, so the flush results read
    off as pure contributions for the parent to meet in. When the
    worker state carries a slab (``--flat``), the firing-stream replay
    variant runs instead of the object engine.
    """
    chaos.chaos_point(Stage.SOLVE, scope="region-worker")
    if state.slab is not None:
        return _solve_region_task_flat(state, index, reached, envs, budget)
    schedule = state.schedule
    region = schedule.regions[index]
    region_of = schedule.region_of
    keys_of = state.keys_of

    scratch: dict[str, dict[EntryKey, LatticeValue]] = {}
    for member in region.members:
        env: dict[EntryKey, LatticeValue] = {
            key: TOP for key in keys_of[member]
        }
        given = envs.get(member)
        if given is not None:
            env.update(given)
        scratch[member] = env
    external: dict[str, None] = {}
    for member in region.members:
        for callee in state.index.callees.get(member, ()):
            if region_of[callee] != index and callee not in external:
                external[callee] = None
    for callee in external:
        scratch[callee] = {key: TOP for key in keys_of[callee]}

    stats = SolveResult(val=scratch)
    engine = DeltaEngine(
        state.index,
        scratch,
        stats,
        None,
        budget,
        partition=state.partition,
        compiled=state.compiled,
    )

    processed: dict[str, None] = {}
    activations: dict[str, None] = {}
    local_passes = 0
    pops = 0
    if not region.recursive and len(reached) == 1:
        # Singleton fast path, mirroring the sequential solver.
        (proc,) = reached
        if budget is not None:
            budget.check_passes(1)
        pops = 1
        processed[proc] = None
        engine.seed(proc)  # a singleton has no internal edges
        local_passes = 1
        for callee in engine.callees(proc):
            activations[callee] = None  # all cross-region for a singleton
    else:
        worklist = _PriorityWorklist(state.rpo)
        pending: dict[str, dict[EntryKey, None]] = {}
        seeded: set[str] = set()
        for proc in reached:
            worklist.push(proc, proc)
        mark = worklist.begin_segment()
        while worklist:
            caller = worklist.pop()
            if budget is not None:
                budget.check_passes(worklist.passes - mark)
            processed[caller] = None
            if caller not in seeded:
                seeded.add(caller)
                pending.pop(caller, None)
                changed = engine.seed(caller)
            else:
                deltas = pending.pop(caller, None)
                changed = engine.apply_deltas(caller, deltas) if deltas else {}
            for callee, keys in changed.items():
                slot = pending.get(callee)
                if slot is None:
                    slot = pending[callee] = {}
                slot.update(keys)
                worklist.push(callee, callee)
            for callee in engine.callees(caller):
                if region_of[callee] == index:
                    if callee not in seeded:
                        worklist.push(callee, callee)
                else:
                    activations[callee] = None
        local_passes = worklist.passes - mark
        pops = worklist.pops

    # Flush every cross-region edge once, with final member environments;
    # the scratch callee envs accumulate the region's contribution.
    touched: dict[str, dict[EntryKey, None]] = {}
    for caller in processed:
        for callee, keys in engine.flush_region(caller).items():
            slot = touched.get(callee)
            if slot is None:
                slot = touched[callee] = {}
            slot.update(keys)
    contributions = {
        callee: encode_env({key: scratch[callee][key] for key in keys})
        for callee, keys in touched.items()
    }
    return RegionOutcome(
        index=index,
        processed=tuple(processed),
        member_envs={proc: encode_env(scratch[proc]) for proc in processed},
        activations=tuple(sorted(activations)),
        contributions=contributions,
        counters={name: getattr(stats, name) for name in ENGINE_COUNTERS},
        local_passes=local_passes,
        pops=pops,
    )


def _run_region_remote(
    index: int,
    reached: tuple[str, ...],
    envs: dict[str, dict[EntryKey, LatticeValue]],
    budget: SolveBudget | None,
):
    """Pool entry point. Budget exhaustion returns as a structured
    marker: :class:`BudgetExhaustedError` does not round-trip pickling
    (its ``__init__`` signature differs from ``args``), and it must not
    be conflated with a pool failure."""
    try:
        state = _WORKER_STATE
        if state is None:
            raise ParallelSolveError("worker state was never initialized")
        return ("ok", _solve_region_task(state, index, reached, envs, budget))
    except BudgetExhaustedError as exc:
        return ("budget", exc.counter, exc.limit, exc.observed)


class ParallelRegionSolver:
    """Wave-scheduled stage-3 solve over a process pool.

    One instance serves one solve. ``workers`` is the requested pool
    width; waves with a single activated region (and the whole solve,
    when ``workers <= 1``) execute inline through the exact same task
    function, so pooled and inline runs are structurally identical.
    """

    def __init__(
        self,
        lowered: LoweredProgram,
        graph: CallGraph,
        forward: ForwardFunctions,
        *,
        workers: int,
        source: str | None = None,
        config: AnalysisConfig | None = None,
        budget: SolveBudget | None = None,
        compiled: bool = False,
    ):
        # Captured before _make_state so the slab's origin (store-loaded,
        # freshly built, or an in-process cache hit) can be told apart —
        # slab_for stamps forward._slab as a side effect of building.
        loaded = getattr(forward, "_slab_loaded", None)
        cached = getattr(forward, "_slab", None)
        self._state = _make_state(
            lowered,
            graph,
            forward,
            source=source,
            config=config,
            compiled=compiled,
        )
        slab = self._state.slab
        if slab is None:
            self._slab_origin = None
        elif loaded is not None and slab is loaded:
            self._slab_origin = "load"
        elif cached is None or cached[2] is not slab:
            self._slab_origin = "build"
        else:
            self._slab_origin = "cache"
        self._workers = max(1, workers)
        self._budget = budget

    def solve(self) -> SolveResult:
        """Run the wave schedule to the global fixed point.

        Raises :class:`ParallelSolveError` on any pool or task failure
        (the caller re-solves sequentially) and re-raises
        :class:`BudgetExhaustedError` untouched (the ladder owns it).
        """
        global _WORKER_STATE
        state = self._state
        lowered, graph = state.lowered, state.graph
        schedule = state.schedule
        waves = wave_schedule(graph)
        region_of = schedule.region_of
        result = SolveResult(val=initial_val(lowered))
        main = lowered.program.main
        activated: dict[int, set[str]] = {region_of[main]: {main}}
        done: set[int] = set()
        max_local = 0

        pool: ProcessPoolExecutor | None = None
        use_pool = (
            self._workers > 1
            and state.source is not None
            and state.config is not None
            and len(schedule.regions) > 1
        )
        try:
            if use_pool:
                # Stamp the parent's state before forking so workers
                # inherit it; spawned workers rebuild from the initargs.
                _WORKER_STATE = state
                injector = chaos._ACTIVE
                pool = ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=_worker_init,
                    initargs=(
                        state.source,
                        state.config,
                        injector.spec if injector is not None else None,
                    ),
                )
            for level, wave in enumerate(waves.waves):
                todo = [index for index in wave if index in activated]
                if not todo:
                    continue
                result.waves += 1
                tasks = []
                for index in todo:
                    reached = tuple(sorted(activated.pop(index)))
                    envs = {
                        member: result.val[member] for member in reached
                    }
                    tasks.append((index, reached, envs))
                outcomes = self._execute(pool, tasks, result)
                for outcome in outcomes:  # ascending region index
                    self._merge(result, outcome, level, waves, region_of,
                                activated, done)
                    if outcome.local_passes > max_local:
                        max_local = outcome.local_passes
                if self._budget is not None:
                    self._budget.check_all(result, max_local)
        except (BudgetExhaustedError, ParallelSolveError):
            raise
        except Exception as exc:
            raise ParallelSolveError(
                f"parallel region solve failed: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            if pool is not None:
                _terminate_pool(pool)
        result.passes = max_local
        slab = state.slab
        if slab is not None:
            result.slab_slots = slab.nslots
            result.slab_bytes = slab.nbytes()
            if self._slab_origin == "load":
                result.slab_load_seconds = slab.load_seconds
                result.slab_patched_procs = slab.patched_procs
                result.slab_patched_slots = slab.patched_slots
            elif self._slab_origin == "build":
                result.slab_build_seconds = slab.build_seconds
        return result

    def _execute(self, pool, tasks, result: SolveResult) -> list[RegionOutcome]:
        """Run one wave's tasks — pooled when the wave is genuinely
        parallel, inline otherwise — returning outcomes in submission
        (ascending region index) order."""
        budget = self._budget
        if pool is not None and len(tasks) > 1:
            futures = [
                pool.submit(_run_region_remote, index, reached, envs, budget)
                for index, reached, envs in tasks
            ]
            result.regions_parallel += len(tasks)
            outcomes = []
            for future in futures:
                reply = future.result()
                if reply[0] == "budget":
                    raise BudgetExhaustedError(reply[1], reply[2], reply[3])
                outcomes.append(reply[1])
            return outcomes
        return [
            _solve_region_task(self._state, index, reached, envs, budget)
            for index, reached, envs in tasks
        ]

    @staticmethod
    def _merge(
        result: SolveResult,
        outcome: RegionOutcome,
        level: int,
        waves: WaveSchedule,
        region_of: Mapping[str, int],
        activated: dict[int, set[str]],
        done: set[int],
    ) -> None:
        """Fold one region's outcome into the shared VAL — adopt member
        environments, meet cross-region contributions, record
        activations. Deterministic: callers merge outcomes in ascending
        region index, and meet is associative/commutative, so the result
        is independent of which worker finished first."""
        result.regions += 1
        done.add(outcome.index)
        result.reached.update(outcome.processed)
        for member, segment in outcome.member_envs.items():
            result.val[member].update(segment.items())
        counters = outcome.counters
        for name in ENGINE_COUNTERS:
            setattr(result, name, getattr(result, name) + counters[name])
        result.region_passes += outcome.local_passes
        result.pops += outcome.pops
        for callee, segment in outcome.contributions.items():
            target = result.val[callee]
            for key, incoming in segment.items():
                old = target[key]
                new = incoming if old is TOP else meet(old, incoming)
                if new != old:
                    target[key] = new
        for callee in outcome.activations:
            target_index = region_of[callee]
            if target_index in done or waves.level_of(target_index) <= level:
                # Every condensation edge goes to a strictly higher
                # level; reaching backward means the schedule (or the
                # worker's rebuilt structures) is corrupt.
                raise ParallelSolveError(
                    f"wave-order violation: region {outcome.index} at "
                    f"level {level} activated region {target_index} at "
                    f"level {waves.level_of(target_index)}"
                )
            activated.setdefault(target_index, set()).add(callee)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without leaking workers: terminate-then-join,
    escalating to kill — the same discipline as the sweep executor."""
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def solve_parallel(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    workers: int,
    source: str | None = None,
    config: AnalysisConfig | None = None,
    budget: SolveBudget | None = None,
    compiled: bool = False,
) -> SolveResult:
    """Convenience wrapper: one :class:`ParallelRegionSolver` run."""
    return ParallelRegionSolver(
        lowered,
        graph,
        forward,
        workers=workers,
        source=source,
        config=config,
        budget=budget,
        compiled=compiled,
    ).solve()
