"""The constant propagation lattice of Figure 1.

Three levels: ⊤ (TOP, "as yet unknown / never called"), constants, and
⊥ (BOTTOM, "not known to be constant"). The meet rules::

    T    ∧ any  = any
    ⊥    ∧ any  = ⊥
    ci   ∧ cj   = ci   if ci == cj
    ci   ∧ cj   = ⊥    if ci /= cj

The lattice is infinite (one element per integer) but has bounded depth:
a value can be lowered at most twice (⊤ → c → ⊥), which is what bounds
the iterative propagation (paper §2 and §3.1.5).

Only INTEGER and LOGICAL constants participate (paper §4, limitation 1);
REAL values are mapped to ⊥ at creation time by the evaluators.
"""

from __future__ import annotations

from typing import Iterable, Union


class _Top:
    """⊤ — optimistic initial value. Singleton."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊤"

    def __reduce__(self):
        return (_Top, ())


class _Bottom:
    """⊥ — known to be non-constant. Singleton."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


TOP = _Top()
BOTTOM = _Bottom()

#: A lattice element: ⊤, ⊥, or a constant (int; bool for LOGICALs).
LatticeValue = Union[_Top, _Bottom, int, bool]


def is_constant(value: LatticeValue) -> bool:
    """True for the constant band of the lattice (not ⊤, not ⊥)."""
    return value is not TOP and value is not BOTTOM


def meet(a: LatticeValue, b: LatticeValue) -> LatticeValue:
    """The ∧ operation of Figure 1."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    if a is BOTTOM or b is BOTTOM:
        return BOTTOM
    if a == b and isinstance(a, bool) == isinstance(b, bool):
        return a
    return BOTTOM


def meet_all(values: Iterable[LatticeValue]) -> LatticeValue:
    """Meet of a sequence; the meet of nothing is ⊤.

    ⊥ is absorbing, so the fold short-circuits on the first ⊥ *input*
    without spending a :func:`meet` call on it — reductions over wide
    fan-in (SCCP phi joins, sweep merges) stop at the first unknown.
    """
    result: LatticeValue = TOP
    for value in values:
        if value is BOTTOM:
            return BOTTOM
        result = meet(result, value)
        if result is BOTTOM:
            return BOTTOM
    return result


def height_remaining(value: LatticeValue) -> int:
    """How many more times this value can be lowered (2, 1, or 0)."""
    if value is TOP:
        return 2
    if value is BOTTOM:
        return 0
    return 1


def constant_from_python(value) -> LatticeValue:
    """Map a runtime Python value into the lattice.

    Integers and booleans are constants; floats (REAL) and everything else
    fall to ⊥, per the paper's integers-only policy.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    return BOTTOM
