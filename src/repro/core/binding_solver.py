"""Binding-graph propagation — the alternative solver formulation.

§2 notes that "alternative formulations based on the binding multi-graph
are possible [Cooper & Kennedy 1988]". This module implements one: nodes
are (procedure, entry key) *bindings*; a directed edge connects caller
binding (p, a) to callee binding (q, b) when some call site in p has a
jump function for b whose support includes a. Propagation then runs at
the granularity of individual bindings instead of whole procedures — the
classic trade: finer worklist, more bookkeeping.

Because both solvers compute the same greatest fixpoint over the same
jump functions, their VAL sets must agree exactly; the test suite
cross-checks them on every workload. (That agreement is also a strong
regression net over the main solver.)
"""

from __future__ import annotations

from collections import defaultdict

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.exprs import EntryKey
from repro.core.lattice import BOTTOM, LatticeValue, meet
from repro.core.solver import SolveResult, _PriorityWorklist, initial_val
from repro.ir.lower import LoweredProgram

Binding = tuple[str, EntryKey]


def solve_binding_graph(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
) -> SolveResult:
    """Propagate VAL sets over the binding multi-graph."""
    result = SolveResult(val=initial_val(lowered))
    val = result.val

    # site-level views: (site, callee key) pairs to evaluate, and the
    # reverse dependency map from caller bindings to those pairs.
    site_caller: dict[int, str] = {}
    site_callee: dict[int, str] = {}
    dependents: dict[Binding, list[tuple[int, EntryKey]]] = defaultdict(list)
    site_pairs: dict[int, list[EntryKey]] = defaultdict(list)
    for site_id, site in forward.sites.items():
        site_caller[site_id] = site.caller
        site_callee[site_id] = site.callee
        for key, function in site.all_functions():
            site_pairs[site_id].append(key)
            for support_key in function.support:
                dependents[(site.caller, support_key)].append((site_id, key))

    sites_of_caller: dict[str, list[int]] = defaultdict(list)
    for site_id in forward.sites:
        sites_of_caller[site_caller[site_id]].append(site_id)

    def evaluate(site_id: int, key: EntryKey) -> bool:
        """Evaluate one jump function and meet into the callee binding.
        Returns True if the callee's value lowered."""
        site = forward.sites[site_id]
        caller_env = val[site_caller[site_id]]
        callee_env = val[site_callee[site_id]]
        if key not in callee_env:
            return False
        function = site.function_for(key)
        result.evaluations += 1
        incoming = function.evaluate(caller_env) if function else BOTTOM
        lowered_value = meet(callee_env[key], incoming)
        result.meets += 1
        old = callee_env[key]
        if lowered_value is old or (
            lowered_value == old and type(lowered_value) is type(old)
        ):
            return False
        callee_env[key] = lowered_value
        return True

    # Reachability-driven seeding: when a procedure is first reached,
    # evaluate every jump function at every site it contains. The
    # incremental phase then drains bindings in reverse-postorder priority
    # of their procedure, like the main solver.
    worklist = _PriorityWorklist(graph.rpo_index())

    def push(binding: Binding) -> None:
        worklist.push(binding, binding[0])

    main = lowered.program.main
    # Iterative reach to avoid deep recursion on long call chains; every
    # callee key lacking a jump function at a reached site is killed once.
    pending = [main]
    reach_seen: set[str] = set()
    while pending:
        proc = pending.pop()
        if proc in reach_seen:
            continue
        reach_seen.add(proc)
        result.reached.add(proc)
        for site_id in sites_of_caller[proc]:
            callee = site_callee[site_id]
            for key in site_pairs[site_id]:
                if evaluate(site_id, key):
                    push((callee, key))
            for key in val[callee]:
                if forward.sites[site_id].function_for(key) is None:
                    lowered_value = meet(val[callee][key], BOTTOM)
                    if lowered_value is not val[callee][key]:
                        val[callee][key] = lowered_value
                        push((callee, key))
            pending.append(callee)

    # Incremental propagation along binding edges.
    while worklist:
        binding = worklist.pop()
        for site_id, key in dependents.get(binding, ()):
            if site_caller[site_id] not in result.reached:
                continue
            if evaluate(site_id, key):
                push((site_callee[site_id], key))

    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
