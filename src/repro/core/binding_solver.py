"""Binding-graph propagation — the alternative solver formulation.

§2 notes that "alternative formulations based on the binding multi-graph
are possible [Cooper & Kennedy 1988]". This module implements one: nodes
are (procedure, entry key) *bindings*; a directed edge connects caller
binding (p, a) to callee binding (q, b) when some call site in p has a
jump function for b whose support includes a. Propagation then runs at
the granularity of individual bindings instead of whole procedures — the
classic trade: finer worklist, more bookkeeping.

The dependency structure and the evaluate-and-meet machinery are the
shared sparse :class:`~repro.core.engine.DeltaEngine`; the only thing
this module adds over :func:`repro.core.solver.solve` is the worklist
granularity (one binding per pop instead of one procedure's batched
deltas per pop). It follows the same SCC region schedule: each region's
bindings are drained to a local fixed point before the region's
cross-region call sites are evaluated — once, with final caller
environments — and a :class:`~repro.core.solver.WarmStart` adopts
stored solutions for clean regions exactly as the procedure-grained
solver does.

Because both solvers compute the same greatest fixpoint over the same
jump functions, their VAL sets must agree exactly; the test suite
cross-checks them (and the dense reference solver) on every workload.
"""

from __future__ import annotations

import heapq
from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.engine import Binding, DeltaEngine
from repro.core.regions import region_schedule
from repro.core.solver import (
    SolveResult,
    WarmStart,
    _partition_for,
    _PriorityWorklist,
    initial_val,
)
from repro.ir.lower import LoweredProgram

__all__ = ["Binding", "solve_binding_graph"]


def solve_binding_graph(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
    region_scheduled: bool = True,
    warm: WarmStart | None = None,
    compiled: bool = False,
    flat: bool = False,
) -> SolveResult:
    """Propagate VAL sets over the binding multi-graph.

    ``sanitizer``, ``budget``, ``region_scheduled``, ``warm``,
    ``compiled``, and ``flat`` mean exactly what they mean for
    :func:`repro.core.solver.solve` — in particular an attached
    sanitizer forces the fully iterating legacy schedule so every
    transfer stays observable. The flat slab engine *is* a
    binding-granular schedule (its queue holds individual slots), so
    ``flat=True`` routes to the same :func:`repro.core.slab.solve_flat`
    the procedure-grained solver uses.
    """
    if flat and sanitizer is None and warm is None:
        from repro.core.slab import solve_flat

        return solve_flat(lowered, graph, forward, budget=budget)
    if sanitizer is not None:
        region_scheduled = False
    if not region_scheduled:
        return _solve_binding_legacy(
            lowered,
            graph,
            forward,
            sanitizer=sanitizer,
            budget=budget,
            compiled=compiled,
        )
    schedule = region_schedule(graph)
    region_of = schedule.region_of
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered),
        result.val,
        result,
        sanitizer,
        budget,
        partition=_partition_for(forward, lowered, region_of),
        compiled=compiled,
    )
    worklist = _PriorityWorklist(graph.rpo_index())
    seeded: set[str] = set()
    active: dict[int, set[str]] = {}
    #: region index -> bindings to re-drain (defensive, see solver.py).
    inbox: dict[int, list[Binding]] = {}
    dirty: list[int] = []
    queued: set[int] = set()

    def activate(proc: str) -> None:
        index = region_of[proc]
        active.setdefault(index, set()).add(proc)
        if index not in queued:
            queued.add(index)
            heapq.heappush(dirty, index)

    def deliver(proc: str, keys) -> None:
        if proc in seeded:
            inbox.setdefault(region_of[proc], []).extend(
                (proc, key) for key in keys
            )
        activate(proc)

    main = lowered.program.main
    if warm is not None:
        clean_regions = {region_of[proc] for proc in warm.clean}
        result.regions_warm = len(clean_regions)
        for proc in warm.clean:
            env = warm.envs.get(proc)
            if env:
                result.val[proc].update(env)
            seeded.add(proc)
        result.reached.update(warm.reached)
        for proc in sorted(warm.reached, key=worklist.priority_of):
            invalid = {
                callee
                for callee in engine.callees(proc)
                if callee not in warm.clean
            }
            if not invalid:
                continue
            for callee in sorted(invalid):
                activate(callee)
            for callee, keys in engine.flush_region(proc, only=invalid).items():
                deliver(callee, keys)
    if warm is None or main not in warm.clean:
        activate(main)

    max_local = 0
    while dirty:
        index = heapq.heappop(dirty)
        queued.discard(index)
        members = active.pop(index, set())
        box = inbox.pop(index, [])
        if not members and not box:
            continue
        result.regions += 1
        mark = worklist.begin_segment()
        #: members whose environments changed this round — they carry
        #: the region's outgoing flush.
        touched: dict[str, None] = {}
        # Reachability-driven seeding, closed within the region: when a
        # member is first reached, evaluate every jump function at every
        # site it contains, once. Iterative to avoid deep recursion.
        stack = sorted(members, reverse=True)
        while stack:
            proc = stack.pop()
            if proc in seeded:
                continue
            seeded.add(proc)
            result.reached.add(proc)
            touched[proc] = None
            for callee, keys in engine.seed(proc).items():
                touched[callee] = None
                for key in keys:
                    worklist.push((callee, key), callee)
            for callee in engine.callees(proc):
                if region_of[callee] == index:
                    if callee not in seeded:
                        stack.append(callee)
                else:
                    activate(callee)  # cross-region reach
        for binding in box:
            touched[binding[0]] = None
            worklist.push(binding, binding[0])
        # Incremental propagation along intra-region binding edges, one
        # delta per pop, in reverse-postorder priority of the binding's
        # procedure.
        while worklist:
            proc, key = worklist.pop()
            if budget is not None:
                budget.check_passes(worklist.passes - mark)
            for callee, keys in engine.apply_deltas(proc, (key,)).items():
                touched[callee] = None
                for lowered_key in keys:
                    worklist.push((callee, lowered_key), callee)
        local = worklist.passes - mark
        result.region_passes += local
        if local > max_local:
            max_local = local
        for caller in touched:
            for callee, keys in engine.flush_region(caller).items():
                deliver(callee, keys)
    result.passes = max_local
    result.pops = worklist.pops
    return result


def _solve_binding_legacy(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
    compiled: bool = False,
) -> SolveResult:
    """The PR-2 global schedule over the binding multi-graph (kept for
    schedule-comparison tests; computes the identical fixpoint)."""
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered),
        result.val,
        result,
        sanitizer,
        budget,
        compiled=compiled,
    )
    worklist = _PriorityWorklist(graph.rpo_index())

    # Reachability-driven seeding: when a procedure is first reached,
    # evaluate every jump function at every site it contains, once.
    # Iterative to avoid deep recursion on long call chains.
    pending = [lowered.program.main]
    while pending:
        proc = pending.pop()
        if proc in result.reached:
            continue
        result.reached.add(proc)
        for callee, keys in engine.seed(proc).items():
            for key in keys:
                worklist.push((callee, key), callee)
        pending.extend(engine.callees(proc))

    # Incremental propagation along binding edges, one delta per pop,
    # drained in reverse-postorder priority of the binding's procedure.
    while worklist:
        proc, key = worklist.pop()
        if budget is not None:
            budget.check_passes(worklist.passes)
        for callee, lowered_keys in engine.apply_deltas(proc, (key,)).items():
            for lowered_key in lowered_keys:
                worklist.push((callee, lowered_key), callee)

    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
