"""Binding-graph propagation — the alternative solver formulation.

§2 notes that "alternative formulations based on the binding multi-graph
are possible [Cooper & Kennedy 1988]". This module implements one: nodes
are (procedure, entry key) *bindings*; a directed edge connects caller
binding (p, a) to callee binding (q, b) when some call site in p has a
jump function for b whose support includes a. Propagation then runs at
the granularity of individual bindings instead of whole procedures — the
classic trade: finer worklist, more bookkeeping.

The dependency structure and the evaluate-and-meet machinery are the
shared sparse :class:`~repro.core.engine.DeltaEngine`; the only thing
this module adds over :func:`repro.core.solver.solve` is the worklist
granularity (one binding per pop instead of one procedure's batched
deltas per pop).

Because both solvers compute the same greatest fixpoint over the same
jump functions, their VAL sets must agree exactly; the test suite
cross-checks them (and the dense reference solver) on every workload.
"""

from __future__ import annotations

from repro.callgraph.graph import CallGraph
from repro.core.builder import ForwardFunctions
from repro.core.engine import Binding, DeltaEngine
from repro.core.solver import SolveResult, _PriorityWorklist, initial_val
from repro.ir.lower import LoweredProgram

__all__ = ["Binding", "solve_binding_graph"]


def solve_binding_graph(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward: ForwardFunctions,
    *,
    sanitizer=None,
    budget=None,
) -> SolveResult:
    """Propagate VAL sets over the binding multi-graph.

    ``sanitizer`` and ``budget`` are the same optional lattice-invariant
    observer and solver fuel :func:`repro.core.solver.solve` accepts.
    """
    result = SolveResult(val=initial_val(lowered))
    engine = DeltaEngine(
        forward.support_index(lowered), result.val, result, sanitizer, budget
    )
    worklist = _PriorityWorklist(graph.rpo_index())

    # Reachability-driven seeding: when a procedure is first reached,
    # evaluate every jump function at every site it contains, once.
    # Iterative to avoid deep recursion on long call chains.
    pending = [lowered.program.main]
    while pending:
        proc = pending.pop()
        if proc in result.reached:
            continue
        result.reached.add(proc)
        for callee, keys in engine.seed(proc).items():
            for key in keys:
                worklist.push((callee, key), callee)
        pending.extend(engine.callees(proc))

    # Incremental propagation along binding edges, one delta per pop,
    # drained in reverse-postorder priority of the binding's procedure.
    while worklist:
        proc, key = worklist.pop()
        if budget is not None:
            budget.check_passes(worklist.passes)
        for callee, lowered_keys in engine.apply_deltas(proc, (key,)).items():
            for lowered_key in lowered_keys:
                worklist.push((callee, lowered_key), callee)

    result.passes = worklist.passes
    result.pops = worklist.pops
    return result
