"""Flat slab engine: stage 3 over preallocated integer arrays.

The object engine (:mod:`repro.core.engine` + :mod:`repro.core.solver`)
spends its time in CPython object machinery: every VAL cell is a dict
entry holding a boxed ``_Top``/``_Bottom`` sentinel or a boxed int,
every meet is attribute dispatch, every delta fans out through
dict-of-tuples lookups keyed by ``(proc, key)`` hashes, and the region
scheduler pays heaps and sets per procedure. None of that is the
algorithm — it is representation overhead, and at the 1k–10k-procedure
corpus tier the ROADMAP targets it dominates wall-clock and memory.

This module re-represents one solve as flat arrays ("slabs"):

``slots``
    Every ``(procedure, formal/global)`` binding gets a dense integer
    id, assigned at build time in region-schedule order so one SCC's
    slots are contiguous. ``slot_base[pid] + offset`` addresses a cell.

``codes``
    The 3-level lattice is tagged ints in an ``array('q')``: ``0`` = ⊤,
    ``1`` = ⊥, ``k >= 2`` = index ``k - 2`` into a :class:`ConstPool`.
    The pool interns by ``(class, value)`` — a LOGICAL ``.true.`` never
    aliases an INTEGER ``1`` — and keeps arbitrary-precision constants
    (a folded ``**`` can exceed 64 bits) out of the arrays: the slab
    stores only pool indices. The meet collapses to integer compares::

        new = inc if old == 0 else (old if inc == 0 or old == inc else 1)

``edges / CSR``
    :class:`~repro.core.engine.SupportIndex`'s dict-of-tuples becomes
    CSR-style ``(indptr, indices)`` arrays. The retained edge store is
    the *phase-1 stream*: the structural sweep from the main program is
    value-independent, so its pop order, every seed/kill firing, and
    each firing's "owner already seeded?" test are computed once at
    build time and flattened into four parallel arrays (int32 target
    slot, int8 kind, int32 payload, int8 enqueue flag). Kinds are
    0 const / 1 pass-through / 2 polynomial / 3 bottom / 4 kill;
    payloads are a pool code, a caller slot id (-1 for a missing key),
    or a kernel index. The dependent CSR maps a slot id to the stream
    positions of the edges whose jump-function support reads it, so
    delta fan-out is a slice walk with no hashing — and the build-time
    seed/kill/callee CSR views are dropped once the stream is baked.

``kernels``
    Polynomial jump functions are compiled once per (caller, expr) at
    build time via :func:`repro.core.exprs.compile_slab_expr` —
    closures that read slot codes directly and decode through the pool,
    sharing the operator bodies of the PR-6 boxed kernels. They close
    over plain ints, never interned expressions, so a mid-solve
    :func:`~repro.core.exprs.clear_intern_table` cannot invalidate them.

:func:`solve_flat` then runs two phases. Phase 1 walks reachability
from the main program over the callee CSR (depth-first, callees in
site order) and performs each procedure's seed sweep when it is
popped; a slot that lowers is queued for delta propagation only if its
owning procedure's seed already ran (an unseeded procedure's later
sweep reads the updated codes anyway). Phase 2 drains the queue in
batches: the whole queue is swapped out, each drained slot's dependent
edges re-transfer, and a generation-stamped ``in_queue`` array dedups
slots per batch — no membership hashing anywhere. Every transfer is a monotone
function of the caller slots and every lowering re-propagates, so this
chaotic iteration reaches the same greatest fixpoint as every other
schedule; the suite cross-checks byte-identical VALs against the
object engine. Counter semantics differ in the small: the flat engine
has no evaluation memo (``memo_hits``/``memo_misses`` stay 0 and
``evaluations`` may exceed the object engine's memoized count), and
``passes`` reports ``1 + batch_drains`` — the structural sweep plus
each drain batch.

:class:`SlabSegment` is the wire format the parallel solver ships
instead of boxed environment dicts: keys, codes and a self-contained
constant pool, so worker and parent never need to agree on pool
numbering.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Iterator, Mapping

from repro.callgraph.graph import CallGraph
from repro.core.engine import SupportIndex, entry_keys
from repro.core.exprs import EntryExpr, EntryKey, compile_slab_expr
from repro.core.lattice import BOTTOM, TOP, LatticeValue
from repro.core.regions import region_schedule
from repro.frontend.symbols import GlobalId
from repro.ir.lower import LoweredProgram

#: Lattice tags in the codes array.
TOP_CODE = 0
BOTTOM_CODE = 1
#: First constant-pool code; code ``k`` decodes to ``pool.values[k - 2]``.
CONST_BASE = 2

#: Edge kinds.
KIND_CONST = 0  # payload: pool code of the build-time-folded constant
KIND_PASS = 1  # payload: caller slot id, or -1 for a missing key (⊥)
KIND_POLY = 2  # payload: index into the slab's kernel table
KIND_BOTTOM = 3  # payload unused: one ⊥ contribution, never evaluated
KIND_KILL = 4  # phase-1 stream only: unconditional lower to ⊥ (MOD kill)


class ConstPool:
    """Interned constant values, numbered from :data:`CONST_BASE`.

    Interning is per-class — exactly the engine's ``_memo_value``
    discipline — so ``True`` and ``1`` get distinct codes and equal
    codes imply lattice-equal values (the integer meet relies on that
    implication). Each class keys its own dict by the value object
    itself, so an entry's intern overhead is one dict slot: the
    obvious single dict keyed on ``(class, value)`` tuples costs 56
    more bytes per entry, which adds up once a large corpus's solve
    interns its result constants into a retained slab.
    """

    __slots__ = ("values", "_codes")

    def __init__(self) -> None:
        self.values: list[LatticeValue] = []
        self._codes: dict[type, dict[LatticeValue, int]] = {}

    def encode(self, value: LatticeValue) -> int:
        if value is TOP:
            return TOP_CODE
        if value is BOTTOM:
            return BOTTOM_CODE
        by_cls = self._codes.get(value.__class__)
        if by_cls is None:
            by_cls = self._codes[value.__class__] = {}
        code = by_cls.get(value)
        if code is None:
            code = len(self.values) + CONST_BASE
            by_cls[value] = code
            self.values.append(value)
        return code

    def decode(self, code: int) -> LatticeValue:
        if code >= CONST_BASE:
            return self.values[code - CONST_BASE]
        return TOP if code == TOP_CODE else BOTTOM


class SlabProgram:
    """One configuration's support index, flattened (see module docs).

    Built once per ``(forward functions, call graph)`` pair by
    :func:`slab_for` and shared by every flat solve over it, exactly
    like the object engine's cached :class:`RegionPartition`.
    """

    __slots__ = (
        "proc_names",
        "main_id",
        "slot_base",
        "keys_flat",
        "nslots",
        "pool",
        "kernels",
        "kernel_pids",
        "kernel_exprs",
        "dep_indptr",
        "dep_edges",
        "init_slots",
        "init_vals",
        "p1_target",
        "p1_kind",
        "p1_payload",
        "p1_enq",
        "p1_block_starts",
        "pid_rank",
        "callee_indptr",
        "callee_ids",
        "reached_pids",
        "build_seconds",
        "load_seconds",
        "patched_procs",
        "patched_slots",
        "_nbytes",
    )

    def __init__(self) -> None:
        # int32 is plenty for slot/firing/pool numbering (the
        # 10k-procedure tier tops out around 10^5 slots) and int8 for
        # kinds/flags — half to an eighth the resident bytes of the
        # obvious int64. Only the structures a *solve* reads survive the
        # build: the seed/kill/callee CSR, the slot→proc map, and the
        # raw edge table exist as build locals and are baked into the
        # phase-1 stream, which doubles as the edge store the dependent
        # CSR indexes into.
        self.proc_names: tuple[str, ...] = ()
        self.main_id: int = 0
        self.slot_base = array("i")
        #: every procedure's entry keys, concatenated in slot order —
        #: slot ``s`` of proc ``pid`` is ``keys_flat[slot_base[pid] + o]``
        self.keys_flat: tuple[EntryKey, ...] = ()
        self.nslots: int = 0
        self.pool = ConstPool()
        self.kernels: list = []
        #: per-kernel provenance — ``kernel_pids[k]`` owns kernel ``k``
        #: and ``kernel_exprs[k]`` is its interned expression. Closures
        #: are not picklable, so persistence encodes the expression at
        #: publish time and recompiles against the owner's slot map on
        #: load. Parallel array + list rather than a list of tuples:
        #: the expressions are stage-2 objects the jump functions
        #: retain either way, so the slab's own cost per kernel is one
        #: int32 and one pointer instead of a 56-byte tuple.
        self.kernel_pids = array("i")
        self.kernel_exprs: list = []
        self.dep_indptr = array("i")
        self.dep_edges = array("i")
        self.init_slots = array("i")
        self.init_vals = array("i")
        self.p1_target = array("i")
        self.p1_kind = array("b")
        self.p1_payload = array("i")
        self.p1_enq = array("b")
        #: stream offset where sweep rank ``r``'s block begins;
        #: ``len(reached_pids) + 1`` entries, so rank ``r`` owns the
        #: half-open range ``[p1_block_starts[r], p1_block_starts[r+1])``.
        #: Retained (with ``pid_rank`` and the callee CSR) for slab
        #: patching and the parallel replay path.
        self.p1_block_starts = array("i")
        self.pid_rank = array("i")
        self.callee_indptr = array("i")
        self.callee_ids = array("i")
        self.reached_pids = array("i")
        #: provenance accounting surfaced through SolveResult.counters()
        self.build_seconds: float = 0.0
        self.load_seconds: float = 0.0
        self.patched_procs: int = 0
        self.patched_slots: int = 0
        self._nbytes: int | None = None

    @property
    def nedges(self) -> int:
        """Firings in the phase-1 stream (reached seed edges + kills)."""
        return len(self.p1_target)

    def nbytes(self) -> int:
        """Resident bytes of the flattened structure: the arrays, the
        constant pool, the compiled kernel closures, and one pointer per
        retained name/key reference (the strings themselves are shared
        with the frontend either way). This is what ``slab_bytes``
        reports and what the memory gate compares against a deep walk
        of the object engine's index + environments. Memoized: the
        structure is immutable after build (the pool only ever grows by
        interned result constants, a few machine words)."""
        if self._nbytes is not None:
            return self._nbytes
        total = 0
        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, array):
                total += sys.getsizeof(value)
        total += sys.getsizeof(self.pool.values)
        total += sum(sys.getsizeof(v) for v in self.pool.values)
        # the intern side owns the per-class dict shells; their keys
        # are the value objects counted just above, so counting the
        # shells covers the pool's full per-entry overhead
        total += sys.getsizeof(self.pool._codes)
        total += sum(sys.getsizeof(d) for d in self.pool._codes.values())
        total += sys.getsizeof(self.kernels)
        total += sum(sys.getsizeof(k) for k in self.kernels)
        # kernel_pids is an array (counted above); kernel_exprs costs
        # its pointer slots — the expressions are interned stage-2
        # objects the jump functions retain whichever engine solves
        total += sys.getsizeof(self.kernel_exprs)
        # tuple sizes include their reference slots; each *unique*
        # retained name/key costs one more pointer (the objects
        # themselves are shared with the frontend either way)
        total += sys.getsizeof(self.proc_names)
        total += sys.getsizeof(self.keys_flat)
        unique = {id(item) for item in self.proc_names}
        unique.update(id(item) for item in self.keys_flat)
        total += 8 * len(unique)
        self._nbytes = total
        return total


def build_slab(
    lowered: LoweredProgram, graph: CallGraph, index: SupportIndex
) -> SlabProgram:
    """Flatten ``index`` into a :class:`SlabProgram`.

    Procedures are numbered in region-schedule order (callers first,
    SCC members adjacent) so one region's slots are contiguous;
    procedures the schedule does not know (defensive) go last, in
    ``entry_keys`` order. Edges are stored grouped by caller in the
    site-iteration order of :func:`build_support_index`, making every
    per-procedure structure a contiguous slice.
    """
    started = perf_counter()
    keys_of = entry_keys(lowered)
    order = [
        name
        for name in region_schedule(graph).procedures()
        if name in keys_of
    ]
    if len(order) < len(keys_of):
        known = set(order)
        order.extend(name for name in keys_of if name not in known)

    slab = SlabProgram()
    slab.proc_names = tuple(order)
    proc_id = {name: pid for pid, name in enumerate(order)}
    slab.main_id = proc_id[lowered.program.main]

    # Build-time-only structures: the per-proc CSR views (seed/kill/
    # callee slices) and the slot→proc map are consumed by the phase-1
    # stream construction below and then dropped — solves never read
    # them, so the retained slab does not pay for them.
    key_index: list[dict[EntryKey, int]] = []
    keys_flat: list[EntryKey] = []
    slot_proc: list[int] = []
    slab.slot_base.append(0)
    for name in order:
        base = len(slot_proc)
        keys = tuple(keys_of[name])
        keys_flat.extend(keys)
        key_index.append(
            {key: base + offset for offset, key in enumerate(keys)}
        )
        slot_proc.extend([len(key_index) - 1] * len(keys))
        slab.slot_base.append(base + len(keys))
    slab.keys_flat = tuple(keys_flat)
    slab.nslots = len(slot_proc)

    pool = slab.pool
    edge_target: list[int] = []
    edge_kind: list[int] = []
    edge_payload: list[int] = []
    edge_ids: dict[int, int] = {}
    kernel_ids: dict[tuple[int, int], int] = {}
    seed_indptr = [0]
    kill_indptr = [0]
    kill_slots: list[int] = []
    callee_indptr = [0]
    callee_ids: list[int] = []
    for pid, name in enumerate(order):
        caller_slots = key_index[pid]
        for edge in index.seeds.get(name, ()):
            target_pid = proc_id[edge.callee]
            target = key_index[target_pid][edge.key]
            if edge.const is not None:
                kind, payload = KIND_CONST, pool.encode(edge.const)
            else:
                expr = edge.expr
                if expr.__class__ is EntryExpr:
                    kind = KIND_PASS
                    payload = caller_slots.get(expr.key, -1)
                elif edge.support:
                    kind = KIND_POLY
                    kernel_key = (pid, id(expr))
                    payload = kernel_ids.get(kernel_key, -1)
                    if payload < 0:
                        payload = len(slab.kernels)
                        kernel_ids[kernel_key] = payload
                        slab.kernels.append(
                            compile_slab_expr(expr, caller_slots, pool.values)
                        )
                        slab.kernel_pids.append(pid)
                        slab.kernel_exprs.append(expr)
                else:
                    kind, payload = KIND_BOTTOM, 0
            edge_ids[id(edge)] = len(edge_target)
            edge_target.append(target)
            edge_kind.append(kind)
            edge_payload.append(payload)
        seed_indptr.append(len(edge_target))
        for callee, key in index.kills.get(name, ()):
            kill_slots.append(key_index[proc_id[callee]][key])
        kill_indptr.append(len(kill_slots))
        for callee in index.callees.get(name, ()):
            target_pid = proc_id.get(callee)
            if target_pid is not None:
                callee_ids.append(target_pid)
        callee_indptr.append(len(callee_ids))
    # Retained: patching needs each procedure's callee slice to decide
    # whether a splice is structure-preserving, and the parallel replay
    # path walks it for activations.
    slab.callee_indptr = array("i", callee_indptr)
    slab.callee_ids = array("i", callee_ids)

    # Phase-1 stream. The structural sweep is value-independent: its
    # DFS pop order, every seed/kill firing, and even each firing's
    # "owning procedure already seeded?" test (which decides whether a
    # lowered slot enters the drain queue) are fixed by the callee CSR
    # alone. Replay it here once and flatten the whole sweep into four
    # parallel arrays so solve_flat runs one contiguous loop — no
    # stack, no pushed/processed bookkeeping, no per-procedure slices.
    # The stream also *is* the retained edge store: ``p1_pos`` maps each
    # reached seed edge to its stream position so the dependent CSR can
    # point phase-2 re-transfers at the same cells.
    sweep: list[int] = []
    pushed = bytearray(len(order))
    pushed[slab.main_id] = 1
    stack = [slab.main_id]
    while stack:
        pid = stack.pop()
        sweep.append(pid)
        # Push callees in reverse so they pop in site order.
        for i in range(callee_indptr[pid + 1] - 1, callee_indptr[pid] - 1, -1):
            callee = callee_ids[i]
            if not pushed[callee]:
                pushed[callee] = 1
                stack.append(callee)
    seed_rank = [-1] * len(order)
    for rank, pid in enumerate(sweep):
        seed_rank[pid] = rank
    slab.pid_rank = array("i", seed_rank)
    p1_pos = [-1] * len(edge_target)
    for rank, pid in enumerate(sweep):
        slab.p1_block_starts.append(len(slab.p1_target))
        for e in range(seed_indptr[pid], seed_indptr[pid + 1]):
            target = edge_target[e]
            owner = seed_rank[slot_proc[target]]
            p1_pos[e] = len(slab.p1_target)
            slab.p1_target.append(target)
            slab.p1_kind.append(edge_kind[e])
            slab.p1_payload.append(edge_payload[e])
            slab.p1_enq.append(1 if 0 <= owner <= rank else 0)
        for i in range(kill_indptr[pid], kill_indptr[pid + 1]):
            target = kill_slots[i]
            owner = seed_rank[slot_proc[target]]
            slab.p1_target.append(target)
            slab.p1_kind.append(KIND_KILL)
            slab.p1_payload.append(0)
            slab.p1_enq.append(1 if 0 <= owner <= rank else 0)
    slab.p1_block_starts.append(len(slab.p1_target))
    slab.reached_pids.extend(sweep)

    dep_lists: list[list[int]] = [[] for _ in range(slab.nslots)]
    for (caller, key), edges in index.dependents.items():
        caller_pid = proc_id.get(caller)
        if caller_pid is None:
            continue
        slot = key_index[caller_pid].get(key)
        if slot is None:
            # A support key that is not a propagated entry key of the
            # caller never lowers (it is ⊥ from the first evaluation on),
            # so the object engine never fires these edges as deltas.
            continue
        deps = dep_lists[slot]
        for edge in edges:
            pos = p1_pos[edge_ids[id(edge)]]
            if pos >= 0:
                # an unreached caller's slots never lower, so edges the
                # sweep never fired can never re-fire as deltas either
                deps.append(pos)
    slab.dep_indptr.append(0)
    for deps in dep_lists:
        slab.dep_edges.extend(deps)
        slab.dep_indptr.append(len(slab.dep_edges))

    # Initial codes are almost all ⊤ (solve_flat zero-fills); only the
    # main program's DATA-initialized globals start elsewhere.
    main_base = slab.slot_base[slab.main_id]
    main_keys = slab.keys_flat[main_base:slab.slot_base[slab.main_id + 1]]
    for offset, key in enumerate(main_keys):
        if not isinstance(key, GlobalId):
            continue
        data = lowered.program.globals[key].data_value
        if isinstance(data, bool) or isinstance(data, int):
            code = pool.encode(data)
        else:
            code = BOTTOM_CODE
        slab.init_slots.append(main_base + offset)
        slab.init_vals.append(code)
    slab.build_seconds = perf_counter() - started
    return slab


def patch_slab(
    slab: SlabProgram,
    lowered: LoweredProgram,
    index: SupportIndex,
    changed: list[str],
) -> bool:
    """Splice the ``changed`` procedures' firing-stream blocks and
    dependent-CSR rows in place, leaving everything else untouched.

    A patch is *structure-preserving* re-slabbing: slot numbering, the
    reachability sweep, and every other procedure's blocks survive
    byte-identical; only the changed procedures' outgoing seed/kill
    firings (and the dep rows over their own slots, which are the only
    rows that can reference them) are rebuilt from the fresh support
    ``index``. That is sound exactly when, for every changed procedure,
    its entry-key tuple and callee list match the slab — the caller
    (:func:`repro.store.slabs.plan_slab`) has already established that
    the procedure set and the globals table are unchanged, and unchanged
    procedures have byte-identical fingerprints and jump-function
    payloads, so their keys and blocks cannot have drifted.

    Returns ``False`` — with the slab untouched — when any precondition
    fails (a changed procedure gained/lost entry keys or callees, or the
    slab does not describe this program); the caller then rebuilds cold.
    Old kernels orphaned by a splice stay in the kernel table: nothing
    references them, and the equivalence property is VAL identity, not
    slab byte identity.
    """
    from bisect import bisect_right

    keys_of = entry_keys(lowered)
    name_to_pid = {name: pid for pid, name in enumerate(slab.proc_names)}
    if set(name_to_pid) != set(lowered.procedures):
        return False
    slot_base = slab.slot_base
    pid_rank = slab.pid_rank
    # -- validate every precondition before mutating anything ---------------
    for name in changed:
        pid = name_to_pid.get(name)
        if pid is None:
            return False
        sb, se = slot_base[pid], slot_base[pid + 1]
        if tuple(keys_of.get(name, ())) != slab.keys_flat[sb:se]:
            return False
        new_callees = tuple(
            name_to_pid[c]
            for c in index.callees.get(name, ())
            if c in name_to_pid
        )
        stored = tuple(
            slab.callee_ids[slab.callee_indptr[pid]:slab.callee_indptr[pid + 1]]
        )
        if new_callees != stored:
            return False
    key_index_cache: dict[int, dict[EntryKey, int]] = {}

    def key_index(pid: int) -> dict[EntryKey, int]:
        ki = key_index_cache.get(pid)
        if ki is None:
            base, end = slot_base[pid], slot_base[pid + 1]
            ki = {
                slab.keys_flat[slot]: slot for slot in range(base, end)
            }
            key_index_cache[pid] = ki
        return ki

    pool = slab.pool
    for name in changed:
        pid = name_to_pid[name]
        sb, se = slot_base[pid], slot_base[pid + 1]
        rank = pid_rank[pid]
        slab.patched_procs += 1
        slab.patched_slots += se - sb
        if rank < 0:
            # unreached: the sweep never fired this procedure's edges, so
            # there is no block to splice and its slots have no dep rows
            continue
        lo = slab.p1_block_starts[rank]
        hi = slab.p1_block_starts[rank + 1]
        caller_slots = key_index(pid)
        new_target = array("i")
        new_kind = array("b")
        new_payload = array("i")
        new_enq = array("b")
        dep_rows: list[list[int]] = [[] for _ in range(se - sb)]
        kernel_ids: dict[int, int] = {}
        pos = lo
        for edge in index.seeds.get(name, ()):
            target = key_index(name_to_pid[edge.callee])[edge.key]
            if edge.const is not None:
                kind, payload = KIND_CONST, pool.encode(edge.const)
            else:
                expr = edge.expr
                if expr.__class__ is EntryExpr:
                    kind = KIND_PASS
                    payload = caller_slots.get(expr.key, -1)
                elif edge.support:
                    kind = KIND_POLY
                    payload = kernel_ids.get(id(expr), -1)
                    if payload < 0:
                        payload = len(slab.kernels)
                        kernel_ids[id(expr)] = payload
                        slab.kernels.append(
                            compile_slab_expr(expr, caller_slots, pool.values)
                        )
                        slab.kernel_pids.append(pid)
                        slab.kernel_exprs.append(expr)
                else:
                    kind, payload = KIND_BOTTOM, 0
            owner = pid_rank[bisect_right(slot_base, target) - 1]
            new_target.append(target)
            new_kind.append(kind)
            new_payload.append(payload)
            new_enq.append(1 if 0 <= owner <= rank else 0)
            for support_key in edge.support:
                slot = caller_slots.get(support_key)
                if slot is not None:
                    dep_rows[slot - sb].append(pos)
            pos += 1
        for callee, key in index.kills.get(name, ()):
            target = key_index(name_to_pid[callee])[key]
            owner = pid_rank[bisect_right(slot_base, target) - 1]
            new_target.append(target)
            new_kind.append(KIND_KILL)
            new_payload.append(0)
            new_enq.append(1 if 0 <= owner <= rank else 0)
            pos += 1
        delta = len(new_target) - (hi - lo)
        slab.p1_target = slab.p1_target[:lo] + new_target + slab.p1_target[hi:]
        slab.p1_kind = slab.p1_kind[:lo] + new_kind + slab.p1_kind[hi:]
        slab.p1_payload = (
            slab.p1_payload[:lo] + new_payload + slab.p1_payload[hi:]
        )
        slab.p1_enq = slab.p1_enq[:lo] + new_enq + slab.p1_enq[hi:]
        if delta:
            for r in range(rank + 1, len(slab.p1_block_starts)):
                slab.p1_block_starts[r] += delta
        # Dep rows: positions inside [lo, hi) occur only in this
        # procedure's own slot rows (dependents are keyed by the
        # *caller's* support keys), so those rows are replaced wholesale
        # and every other row only needs the post-block shift.
        old_edges, old_indptr = slab.dep_edges, slab.dep_indptr
        out_edges = array("i")
        out_indptr = array("i", [0])
        for slot in range(slab.nslots):
            if sb <= slot < se:
                out_edges.extend(dep_rows[slot - sb])
            elif delta:
                for j in range(old_indptr[slot], old_indptr[slot + 1]):
                    e = old_edges[j]
                    out_edges.append(e + delta if e >= hi else e)
            else:
                out_edges.extend(
                    old_edges[old_indptr[slot]:old_indptr[slot + 1]]
                )
            out_indptr.append(len(out_edges))
        slab.dep_edges = out_edges
        slab.dep_indptr = out_indptr
    slab._nbytes = None
    return True


def slab_for(forward, lowered: LoweredProgram, graph: CallGraph) -> SlabProgram:
    """The forward functions' slab, built once per (support index,
    schedule) pair — repeated flat solves over one stage-2 output share
    one slab, mirroring the object engine's partition cache.

    A slab the store tier already loaded (or loaded-and-patched) wins
    outright: ``forward._slab_loaded`` is stamped by the driver after
    :func:`repro.store.slabs.plan_slab` verifies fingerprints, and
    honoring it here is what lets a warm run skip ``build_slab`` and
    the phase-1 precompute entirely."""
    loaded = getattr(forward, "_slab_loaded", None)
    if loaded is not None:
        return loaded
    index = forward.support_index(lowered)
    schedule = region_schedule(graph)
    cached = getattr(forward, "_slab", None)
    if cached is not None:
        cached_index, cached_schedule, slab = cached
        if cached_index is index and cached_schedule is schedule:
            return slab
    slab = build_slab(lowered, graph, index)
    try:
        # keyed by index identity: invalidating forward.index (tests
        # tamper with site tables) must invalidate the slab too
        forward._slab = (index, schedule, slab)  # type: ignore[attr-defined]
    except AttributeError:
        pass  # slotted stand-ins simply rebuild per solve
    return slab


def solve_flat(
    lowered: LoweredProgram,
    graph: CallGraph,
    forward,
    *,
    budget=None,
):
    """Sparse propagation to the fixpoint over the flat slab.

    Computes VALs byte-identical to :func:`repro.core.solver.solve`
    (see the module docstring for the phase structure and the counter
    caveats). ``budget`` is checked after the structural sweep and after
    every drain batch — the same off-the-hot-path cadence as the object
    engine's per-batch checks.
    """
    from repro.core.solver import SolveResult

    loaded = getattr(forward, "_slab_loaded", None)
    cached = getattr(forward, "_slab", None)
    slab = slab_for(forward, lowered, graph)
    result = SolveResult(val={})
    # Provenance accounting: report only the slab work *this* solve
    # paid for — a cache hit from an earlier solve reports zeros, a
    # fresh build reports its build wall, a store-loaded (possibly
    # patched) slab reports the load/patch wall and patch extent.
    if loaded is not None and slab is loaded:
        result.slab_load_seconds = slab.load_seconds
        result.slab_patched_procs = slab.patched_procs
        result.slab_patched_slots = slab.patched_slots
    elif cached is None or cached[2] is not slab:
        result.slab_build_seconds = slab.build_seconds

    nslots = slab.nslots
    # zero-filled is ⊤-filled (TOP_CODE == 0); only DATA-initialized
    # globals start elsewhere
    codes = array("i", bytes(4 * nslots)) if nslots else array("i")
    for slot, code in zip(slab.init_slots, slab.init_vals):
        codes[slot] = code
    # Generation stamps instead of sets: one int compare per membership
    # test, reset by bumping the generation — never cleared.
    in_queue = array("i", bytes(4 * nslots)) if nslots else array("i")

    edge_target = slab.p1_target
    edge_kind = slab.p1_kind
    edge_payload = slab.p1_payload
    kernels = slab.kernels
    encode = slab.pool.encode
    dep_indptr = slab.dep_indptr
    dep_edges = slab.dep_edges

    queue: list[int] = []
    fill_gen = 1
    pops = len(slab.reached_pids)
    evaluations = meets = bottom_skips = skipped = 0

    # Phase 1 — replay the precomputed structural sweep (see
    # build_slab): one C-level zip over the flattened seed/kill stream.
    # ``enq`` is the build-time answer to "was the target's owning
    # procedure already seeded when this firing ran?" — a lowered slot
    # only needs a drain if so; an unseeded procedure's later sweep
    # reads the updated codes anyway.
    for target, kind, payload, enq in zip(
        slab.p1_target, slab.p1_kind, slab.p1_payload, slab.p1_enq
    ):
        old = codes[target]
        if old == 1:
            # already at the lattice floor (a kill still counts as a
            # skipped evaluation, exactly like the object engine)
            if kind == 4:
                skipped += 1
            else:
                bottom_skips += 1
            continue
        if kind == 1:
            # pass-through: the evaluation *is* the slot fetch
            evaluations += 1
            inc = codes[payload] if payload >= 0 else 1
        elif kind == 0:
            inc = payload
        elif kind == 4:
            skipped += 1
            meets += 1
            codes[target] = 1  # meet(old, ⊥) is ⊥ for every old
            if enq and in_queue[target] != fill_gen:
                in_queue[target] = fill_gen
                queue.append(target)
            continue
        elif kind == 2:
            evaluations += 1
            inc = encode(kernels[payload](codes))
        else:
            # support-free and not constant ⇒ ⊥, never evaluated
            bottom_skips += 1
            inc = 1
        meets += 1
        if old == 0:
            new = inc
        elif inc == 0 or old == inc:
            continue  # meet is a no-op
        else:
            new = 1
        if new != old:
            codes[target] = new
            if enq and in_queue[target] != fill_gen:
                in_queue[target] = fill_gen
                queue.append(target)
    result.evaluations += evaluations
    result.meets += meets
    result.bottom_skips += bottom_skips
    result.skipped += skipped
    if budget is not None:
        budget.check_engine(result)

    # Phase 2 — batched drains: swap the whole queue out, fan each
    # drained slot out through its dependent-edge slice, stamp-dedup
    # slots into the next batch. An edge supported by several slots of
    # one batch re-transfers once per slot — the transfer is monotone
    # and idempotent, so deduping edges would only buy back a little
    # work at the cost of a per-edge stamp array resident every solve.
    batch_drains = 0
    while queue:
        batch = queue
        queue = []
        fill_gen += 1
        batch_drains += 1
        evaluations = meets = bottom_skips = 0
        for slot in batch:
            for i in range(dep_indptr[slot], dep_indptr[slot + 1]):
                e = dep_edges[i]
                target = edge_target[e]
                old = codes[target]
                if old == 1:
                    bottom_skips += 1
                    continue
                kind = edge_kind[e]
                if kind == 0:
                    inc = edge_payload[e]
                elif kind == 1:
                    evaluations += 1
                    source = edge_payload[e]
                    inc = codes[source] if source >= 0 else 1
                elif kind == 2:
                    evaluations += 1
                    inc = encode(kernels[edge_payload[e]](codes))
                else:
                    bottom_skips += 1
                    inc = 1
                meets += 1
                if old == 0:
                    new = inc
                elif inc == 0 or old == inc:
                    continue
                else:
                    new = 1
                if new != old:
                    codes[target] = new
                    if in_queue[target] != fill_gen:
                        in_queue[target] = fill_gen
                        queue.append(target)
        pops += len(batch)
        result.evaluations += evaluations
        result.meets += meets
        result.bottom_skips += bottom_skips
        result.deltas += len(batch)
        if budget is not None:
            budget.check_engine(result)
            budget.check_passes(1 + batch_drains)

    # Decode back into the dict-of-dicts VAL shape every consumer
    # expects; entry_keys order reproduces initial_val's key order, so
    # the mapping is byte-identical to the object engine's. ``boxed``
    # collapses the three-way tag test into one C-level table lookup,
    # keeping the whole decode in zip/map machinery.
    boxed: list[LatticeValue] = [TOP, BOTTOM]
    boxed.extend(slab.pool.values)
    unbox = boxed.__getitem__
    slot_base = slab.slot_base
    keys_iter = iter(slab.keys_flat)
    val = result.val
    for pid, name in enumerate(slab.proc_names):
        base = slot_base[pid]
        end = slot_base[pid + 1]
        # keys_flat is consumed strictly in slot order, so one shared
        # iterator walks it without slicing tuples per procedure
        val[name] = dict(
            zip(islice(keys_iter, end - base), map(unbox, codes[base:end]))
        )
    result.reached = set(map(slab.proc_names.__getitem__, slab.reached_pids))
    result.passes = 1 + batch_drains
    result.pops = pops
    result.batch_drains = batch_drains
    result.slab_slots = nslots
    result.slab_bytes = (
        slab.nbytes() + sys.getsizeof(codes) + sys.getsizeof(in_queue)
    )
    return result


@dataclass(frozen=True, slots=True)
class SlabSegment:
    """One environment, encoded for transport (the parallel solver's
    wire format): entry keys, their tagged codes, and a self-contained
    constant pool — worker and parent never share pool numbering, so
    no cross-process agreement is needed. Decoding is allocation-light:
    ``items()`` yields ``(key, value)`` pairs without materializing an
    intermediate dict."""

    keys: tuple[EntryKey, ...]
    codes: array
    pool: tuple

    def items(self) -> Iterator[tuple[EntryKey, LatticeValue]]:
        pool = self.pool
        for key, code in zip(self.keys, self.codes):
            if code >= CONST_BASE:
                yield key, pool[code - CONST_BASE]
            elif code == TOP_CODE:
                yield key, TOP
            else:
                yield key, BOTTOM


def encode_env(env: Mapping[EntryKey, LatticeValue]) -> SlabSegment:
    """Encode one environment dict as a :class:`SlabSegment`."""
    codes = array("i", bytes(4 * len(env))) if env else array("i")
    pool: list[LatticeValue] = []
    pool_codes: dict[tuple, int] = {}
    for i, value in enumerate(env.values()):
        if value is TOP:
            continue  # cells start at TOP_CODE
        if value is BOTTOM:
            codes[i] = BOTTOM_CODE
        else:
            key = (value.__class__, value)
            code = pool_codes.get(key)
            if code is None:
                code = len(pool) + CONST_BASE
                pool_codes[key] = code
                pool.append(value)
            codes[i] = code
    return SlabSegment(tuple(env), codes, tuple(pool))
