"""The four forward jump function implementations (§3.1).

All four are *projections* of the symbolic value-numbering expression of
the actual parameter at the call site:

========================  ====================================================
literal                   the expression only if the actual is a literal
                          constant token at the call site (a textual scan
                          would find it); ⊥ otherwise. Globals are always ⊥
                          (they are "passed implicitly", §3.1.1).
intraprocedural           the constant the expression folds to with every
                          entry value unknown (the paper's ``gcp``); ⊥
                          otherwise.
pass-through              ``gcp`` constants, plus expressions that *are* an
                          unmodified entry value (formal or global); ⊥
                          otherwise.
polynomial                the full expression (⊥ only if the expression
                          contains an unknown).
========================  ====================================================

The subset chain of §3.1 — each kind propagates a subset of the constants
of the kinds after it — holds by construction and is asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.config import JumpFunctionKind
from repro.core.exprs import (
    BOTTOM_EXPR,
    ConstExpr,
    EntryExpr,
    EntryKey,
    ValueExpr,
    const_expr,
    constant_only_value,
)
from repro.core.lattice import BOTTOM, LatticeValue, is_constant
from repro.frontend.symbols import GlobalId


@dataclass(frozen=True, slots=True)
class JumpFunction:
    """A forward jump function for one parameter at one call site.

    ``expr`` is already projected for ``kind``; ``support`` is the exact
    set of caller entry values the function reads (paper §2). Evaluation
    cost — the quantity the paper's complexity discussion is about — is
    proportional to ``cost`` (expression node count).
    """

    expr: ValueExpr
    kind: JumpFunctionKind

    @property
    def support(self) -> frozenset[EntryKey]:
        return self.expr.support()

    def support_order(self) -> tuple[EntryKey, ...]:
        """Support keys in the expression's deterministic first-use order."""
        return self.expr.support_order()

    @property
    def cost(self) -> int:
        return self.expr.size

    @property
    def is_bottom(self) -> bool:
        return self.expr.is_bottom

    def evaluate(self, env: Mapping[EntryKey, LatticeValue]) -> LatticeValue:
        return self.expr.evaluate(env)

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.expr}]"


def project(
    expr: ValueExpr,
    kind: JumpFunctionKind,
    is_literal_actual: bool = False,
    is_global: bool = False,
) -> JumpFunction:
    """Project a value-numbering expression onto a jump-function kind."""
    if kind is JumpFunctionKind.LITERAL:
        if is_global or not is_literal_actual or not isinstance(expr, ConstExpr):
            return JumpFunction(BOTTOM_EXPR, kind)
        return JumpFunction(expr, kind)

    if kind is JumpFunctionKind.INTRAPROCEDURAL:
        value = constant_only_value(expr)
        if is_constant(value):
            return JumpFunction(const_expr(value), kind)  # type: ignore[arg-type]
        return JumpFunction(BOTTOM_EXPR, kind)

    if kind is JumpFunctionKind.PASS_THROUGH:
        value = constant_only_value(expr)
        if is_constant(value):
            return JumpFunction(const_expr(value), kind)  # type: ignore[arg-type]
        if isinstance(expr, EntryExpr):
            return JumpFunction(expr, kind)
        return JumpFunction(BOTTOM_EXPR, kind)

    assert kind is JumpFunctionKind.POLYNOMIAL
    return JumpFunction(expr, kind)


@dataclass(slots=True)
class CallSiteFunctions:
    """All forward jump functions for one call site."""

    site_id: int
    caller: str
    callee: str
    #: callee formal name -> jump function for the bound actual.
    formals: dict[str, JumpFunction] = field(default_factory=dict)
    #: global id -> jump function for the implicitly passed global.
    globals: dict[GlobalId, JumpFunction] = field(default_factory=dict)

    def all_functions(self) -> list[tuple[EntryKey, JumpFunction]]:
        pairs: list[tuple[EntryKey, JumpFunction]] = list(self.formals.items())
        pairs.extend(self.globals.items())
        return pairs

    def function_for(self, key: EntryKey) -> JumpFunction | None:
        if isinstance(key, GlobalId):
            return self.globals.get(key)
        return self.formals.get(key)

    def total_cost(self) -> int:
        return sum(jf.cost for _, jf in self.all_functions())


def evaluate_all(
    site: CallSiteFunctions, env: Mapping[EntryKey, LatticeValue]
) -> dict[EntryKey, LatticeValue]:
    """Evaluate every jump function at a site (missing keys are ⊥)."""
    return {key: jf.evaluate(env) for key, jf in site.all_functions()}


def constants_subset_holds(
    weaker: CallSiteFunctions, stronger: CallSiteFunctions, env
) -> bool:
    """Check the §3.1 containment: everything the weaker jump function
    proves constant, the stronger one proves too (same value)."""
    for key, weak_fn in weaker.all_functions():
        weak_value = weak_fn.evaluate(env)
        if not is_constant(weak_value):
            continue
        strong_fn = stronger.function_for(key)
        strong_value = strong_fn.evaluate(env) if strong_fn else BOTTOM
        if strong_value != weak_value:
            return False
    return True
