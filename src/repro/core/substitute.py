"""Recording the results (stage 4, §4.1): constant substitution.

The paper's measurement — following Metzger and Stroud — is the number of
constants the analyzer substitutes into the program: constants that are
both *known* and *relevant* (referenced in the procedure). We make that
operational:

1. Seed SCCP over each procedure with its CONSTANTS(p) entry environment.
2. Every source-level variable reference whose SSA name SCCP proves
   constant is a substitution site (it carries the source span the IR
   preserved from parsing).
3. The headline count is the number of *(procedure, variable)* pairs with
   at least one substituted reference — the measure that "factors out
   procedure length and modularity". Reference counts and the subset of
   references replaced directly by interprocedural entry values are
   reported alongside.

The same spans drive :func:`transform_source`, the paper's optional
transformed-source output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sccp import run_sccp
from repro.analysis.valuenum import entry_key_of
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant
from repro.core.solver import SolveResult
from repro.frontend.source import SourceSpan
from repro.frontend.symbols import Symbol
from repro.ir.instructions import Phi, SSAName


@dataclass
class ProcedureSubstitutions:
    """Substitution facts for one procedure."""

    proc: str
    #: every substituted reference: (span, constant value, symbol).
    references: list[tuple[SourceSpan, LatticeValue, Symbol]] = field(
        default_factory=list
    )
    #: the subset whose SSA name is the entry value of a CONSTANTS(p) key.
    entry_references: list[tuple[SourceSpan, LatticeValue, Symbol]] = field(
        default_factory=list
    )
    #: |CONSTANTS(p)| — every (key, value) pair the solver proved.
    known_constants: int = 0
    #: CONSTANTS(p) keys with no substituted entry reference — "known but
    #: irrelevant" (Metzger–Stroud, discussed in §4.1): typically COMMON
    #: constants a procedure can see but never reads.
    irrelevant_keys: list = field(default_factory=list)

    @property
    def substituted_symbols(self) -> set[Symbol]:
        return {symbol for _, _, symbol in self.references}

    @property
    def entry_symbols(self) -> set[Symbol]:
        return {symbol for _, _, symbol in self.entry_references}

    @property
    def pair_count(self) -> int:
        return len(self.substituted_symbols)

    @property
    def reference_count(self) -> int:
        return len(self.references)


@dataclass
class SubstitutionReport:
    """Whole-program substitution summary — the numbers in Tables 2–3."""

    per_procedure: dict[str, ProcedureSubstitutions] = field(default_factory=dict)

    @property
    def pairs(self) -> int:
        """(procedure, variable) pairs substituted — the headline metric."""
        return sum(p.pair_count for p in self.per_procedure.values())

    @property
    def references(self) -> int:
        """Total source references replaced by constants."""
        return sum(p.reference_count for p in self.per_procedure.values())

    @property
    def interprocedural_pairs(self) -> int:
        """Pairs substituted directly from interprocedural entry values."""
        return sum(len(p.entry_symbols) for p in self.per_procedure.values())

    @property
    def interprocedural_references(self) -> int:
        return sum(len(p.entry_references) for p in self.per_procedure.values())

    @property
    def known_constants(self) -> int:
        """Σ |CONSTANTS(p)| — what a naive count would report."""
        return sum(p.known_constants for p in self.per_procedure.values())

    @property
    def irrelevant_constants(self) -> int:
        """Known-but-unreferenced pairs (excluded from the headline count,
        per Metzger and Stroud's argument that only substituted constants
        measure code improvement)."""
        return sum(len(p.irrelevant_keys) for p in self.per_procedure.values())

    def replacements(self) -> list[tuple[SourceSpan, LatticeValue]]:
        found = []
        for proc_subs in self.per_procedure.values():
            for span, value, _ in proc_subs.references:
                found.append((span, value))
        return found


def compute_substitutions(
    forward,
    solved: SolveResult,
    include_procs: set[str] | None = None,
) -> SubstitutionReport:
    """Run seeded SCCP per procedure and collect substitution sites.

    ``forward`` is the stage-2 :class:`ForwardFunctions` (its SSA forms are
    reused); ``include_procs`` defaults to the procedures reached from the
    main program (never-called procedures contribute nothing, matching the
    paper's ⊤ convention).
    """
    report = SubstitutionReport()
    procs = include_procs if include_procs is not None else solved.reached
    for name in sorted(procs):
        ssa = forward.ssas.get(name)
        if ssa is None:
            continue
        val_env = solved.val.get(name, {})
        entry_env: dict[Symbol, LatticeValue] = {}
        for symbol in ssa.variables:
            key = entry_key_of(symbol)
            if key is None:
                continue
            value = val_env.get(key, BOTTOM)
            entry_env[symbol] = BOTTOM if value is TOP else value
        sccp = run_sccp(ssa, entry_env)
        constants = solved.constants(name)
        proc_subs = ProcedureSubstitutions(proc=name)
        seen_spans: set[tuple[int, int]] = set()
        for block, instr in ssa.cfg.instructions():
            if block.id not in sccp.executable_blocks:
                continue
            if isinstance(instr, Phi):
                continue  # phi inputs are not source references
            for operand in instr.uses():
                if not isinstance(operand, SSAName):
                    continue
                span = operand.span
                if span.start.offset == span.end.offset:
                    continue  # synthesized use, no source text
                value = sccp.value_of(operand)
                if not is_constant(value):
                    continue
                span_key = span.text_range
                if span_key in seen_spans:
                    continue
                seen_spans.add(span_key)
                record = (span, value, operand.symbol)
                proc_subs.references.append(record)
                if operand.version == 0:
                    key = entry_key_of(operand.symbol)
                    if key is not None and key in constants:
                        proc_subs.entry_references.append(record)
        proc_subs.known_constants = len(constants)
        referenced_keys = {
            entry_key_of(symbol) for symbol in proc_subs.entry_symbols
        }
        proc_subs.irrelevant_keys = [
            key for key in constants if key not in referenced_keys
        ]
        report.per_procedure[name] = proc_subs
    return report


def format_constant(value: LatticeValue) -> str:
    """Source spelling of a lattice constant."""
    if isinstance(value, bool):
        return ".true." if value else ".false."
    return str(value)


def transform_source(source: str, report: SubstitutionReport) -> str:
    """Splice the substituted constants into the program text —
    the paper's optional transformed-source output."""
    replacements = sorted(
        report.replacements(), key=lambda pair: pair[0].start.offset, reverse=True
    )
    text = source
    for span, value in replacements:
        start, end = span.text_range
        text = text[:start] + format_constant(value) + text[end:]
    return text
