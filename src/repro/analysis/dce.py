"""Dead-code elimination for complete propagation (Table 3, column 3).

Operates on the *pre-SSA* CFG of a :class:`LoweredProcedure` so the
transformed program can be re-analyzed from scratch ("all of the values in
CONSTANTS sets were reset to ⊤", §4.2). Three steps:

1. **Branch folding** — a conditional whose condition is a constant under
   the current CONSTANTS(p) environment becomes an unconditional jump.
   The condition's value comes from the stage-2 value-numbering expression
   evaluated in the interprocedural environment, so branches on
   interprocedural constants fold even though the local IR still refers to
   variables.
2. **Unreachable block removal.**
3. **Dead store elimination** — assignments to scalars that are never
   subsequently observed (liveness-based), iterated to a fixpoint.
   This is what removes the "conflicting definitions" the paper mentions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import (
    _def_key,
    _use_keys,
    compute_liveness,
    exit_live_set,
)
from repro.core.lattice import LatticeValue, is_constant
from repro.frontend.astnodes import Type
from repro.ir.instructions import (
    BinOp,
    CJump,
    Const,
    Convert,
    Copy,
    IntrinsicOp,
    Jump,
    LoadArr,
    Temp,
    UnOp,
)
from repro.ir.lower import LoweredProcedure

_PURE = (BinOp, UnOp, Convert, IntrinsicOp, Copy, LoadArr)


@dataclass
class DCEStats:
    folded_branches: int = 0
    removed_blocks: int = 0
    removed_stores: int = 0

    @property
    def any_change(self) -> bool:
        return bool(self.folded_branches or self.removed_blocks or self.removed_stores)


def fold_constant_branches(
    lowered_proc: LoweredProcedure,
    expr_of,
    env,
) -> int:
    """Rewrite CJumps with constant conditions into Jumps.

    ``expr_of(operand)`` must return a ValueExpr (from stage-2 value
    numbering of the same procedure) and ``env`` the CONSTANTS(p)
    environment; conditions whose expressions do not fold are left alone.
    """
    folded = 0
    for block in lowered_proc.cfg.blocks.values():
        terminator = block.terminator
        if not isinstance(terminator, CJump):
            continue
        value = _cond_value(terminator, expr_of, env)
        if not is_constant(value):
            continue
        target = terminator.if_true if value else terminator.if_false
        block.instrs[-1] = Jump(target, span=terminator.span)
        folded += 1
    if folded:
        lowered_proc.cfg.refresh()
    return folded


def _cond_value(terminator: CJump, expr_of, env) -> LatticeValue:
    cond = terminator.cond
    if isinstance(cond, Const) and cond.type is Type.LOGICAL:
        return bool(cond.value)
    if isinstance(cond, Temp):
        return expr_of(cond).evaluate(env)
    from repro.core.lattice import BOTTOM

    return BOTTOM


def eliminate_dead_stores(lowered_proc: LoweredProcedure) -> int:
    """Remove pure instructions whose destinations are dead. Iterates
    until stable; returns the number of instructions removed."""
    cfg = lowered_proc.cfg
    variables = list(lowered_proc.procedure.symtab)
    boundary = exit_live_set(variables)
    removed_total = 0
    while True:
        liveness = compute_liveness(cfg, boundary)
        removed = 0
        for block_id, block in cfg.blocks.items():
            live = set(liveness.live_out[block_id])
            from repro.ir.instructions import Return

            if isinstance(block.terminator, Return):
                live |= boundary
            keep = []
            for instr in reversed(block.instrs):
                key = _def_key(instr)
                is_dead = (
                    isinstance(instr, _PURE)
                    and key is not None
                    and key not in live
                )
                if is_dead:
                    removed += 1
                    continue
                if key is not None:
                    live.discard(key)
                live.update(_use_keys(instr))
                keep.append(instr)
            keep.reverse()
            block.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total


def eliminate_dead_code(
    lowered_proc: LoweredProcedure,
    expr_of,
    env,
) -> DCEStats:
    """Run the full DCE pipeline on one procedure."""
    from repro.analysis.copyprop import propagate_copies

    stats = DCEStats()
    stats.folded_branches = fold_constant_branches(lowered_proc, expr_of, env)
    stats.removed_blocks = len(lowered_proc.cfg.remove_unreachable())
    propagate_copies(lowered_proc)  # forwards temps so their copies die
    stats.removed_stores = eliminate_dead_stores(lowered_proc)
    return stats
