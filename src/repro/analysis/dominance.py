"""Dominators and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
("A Simple, Fast Dominance Algorithm") and Cytron et al.'s dominance
frontier computation — the ingredients of SSA phi placement.

Only blocks reachable from the CFG entry participate; callers should prune
unreachable blocks first (lowering already does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import ControlFlowGraph


@dataclass
class DominatorTree:
    """Immediate dominators, children lists, and dominance frontiers."""

    entry: int
    idom: dict[int, int]  # block -> immediate dominator (entry -> entry)
    children: dict[int, list[int]] = field(default_factory=dict)
    frontier: dict[int, set[int]] = field(default_factory=dict)
    _rpo_index: dict[int, int] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return node == a
            node = parent

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def preorder(self) -> list[int]:
        """Dominator-tree preorder (parents before children)."""
        order: list[int] = []
        stack = [self.entry]
        while stack:
            node = stack.pop()
            order.append(node)
            # Reverse so children pop in ascending order (determinism).
            stack.extend(sorted(self.children.get(node, ()), reverse=True))
        return order


def compute_dominators(cfg: ControlFlowGraph) -> DominatorTree:
    """Compute the dominator tree and dominance frontiers of ``cfg``."""
    cfg.refresh()
    rpo = cfg.reverse_postorder()
    index = {block_id: i for i, block_id in enumerate(rpo)}
    reachable = set(rpo)

    idom: dict[int, int] = {cfg.entry_id: cfg.entry_id}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block_id in rpo:
            if block_id == cfg.entry_id:
                continue
            preds = [p for p in cfg.blocks[block_id].preds
                     if p in reachable and p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(block_id) != new_idom:
                idom[block_id] = new_idom
                changed = True

    children: dict[int, list[int]] = {block_id: [] for block_id in rpo}
    for block_id in rpo:
        if block_id == cfg.entry_id:
            continue
        children[idom[block_id]].append(block_id)

    frontier: dict[int, set[int]] = {block_id: set() for block_id in rpo}
    entry = cfg.entry_id
    for block_id in rpo:
        preds = [p for p in cfg.blocks[block_id].preds if p in reachable]
        # No >=2-preds shortcut, and the walk must not stop at idom(entry)
        # == entry prematurely: a back edge into the entry block puts the
        # entry in its own dominance frontier.
        for pred in preds:
            runner = pred
            while True:
                if block_id != entry and runner == idom[block_id]:
                    break
                frontier[runner].add(block_id)
                if runner == idom[runner]:
                    break  # reached the entry
                runner = idom[runner]

    return DominatorTree(
        entry=cfg.entry_id,
        idom=idom,
        children=children,
        frontier=frontier,
        _rpo_index=index,
    )


def iterated_frontier(tree: DominatorTree, blocks: set[int]) -> set[int]:
    """DF+ — the iterated dominance frontier of a set of blocks."""
    result: set[int] = set()
    worklist = [b for b in blocks if b in tree.frontier]
    on_list = set(worklist)
    while worklist:
        block = worklist.pop()
        for frontier_block in tree.frontier.get(block, ()):
            if frontier_block not in result:
                result.add(frontier_block)
                if frontier_block not in on_list:
                    worklist.append(frontier_block)
                    on_list.add(frontier_block)
    return result
