"""Backward liveness analysis on the (pre-SSA) CFG.

Used by dead-code elimination during *complete propagation* to remove
assignments whose values are never observed. Tracks scalar named
variables (by :class:`Symbol`) and temporaries.

Conservative boundary conditions: every formal, global, and function
result is live at procedure exit (formals and globals escape by
reference; the result is the caller's value).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.symbols import Symbol, SymbolKind
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    Instr,
    Operand,
    SSAName,
    Temp,
    VarDef,
    VarUse,
)

LiveKey = object  # Symbol | Temp


def _use_keys(instr: Instr) -> list[LiveKey]:
    keys: list[LiveKey] = []
    for operand in instr.uses():
        key = _operand_key(operand)
        if key is not None:
            keys.append(key)
    return keys


def _operand_key(operand: Operand) -> LiveKey | None:
    if isinstance(operand, Temp):
        return operand
    if isinstance(operand, VarUse):
        return operand.symbol
    if isinstance(operand, SSAName):
        return operand.symbol
    return None


def _def_key(instr: Instr) -> LiveKey | None:
    dest = instr.dest
    if dest is None:
        return None
    if isinstance(dest, Temp):
        return dest
    if isinstance(dest, VarDef):
        return dest.symbol
    return None


@dataclass
class LivenessResult:
    """Per-block live-in/live-out sets."""

    live_in: dict[int, set[LiveKey]] = field(default_factory=dict)
    live_out: dict[int, set[LiveKey]] = field(default_factory=dict)

    def live_after(self, cfg: ControlFlowGraph, block_id: int, index: int) -> set[LiveKey]:
        """Live set immediately after instruction ``index`` of a block."""
        block = cfg.blocks[block_id]
        live = set(self.live_out[block_id])
        for instr in reversed(block.instrs[index + 1 :]):
            key = _def_key(instr)
            if key is not None:
                live.discard(key)
            live.update(_use_keys(instr))
        return live


def exit_live_set(variables) -> set[LiveKey]:
    """Keys live at procedure exit: formals, globals, and the result."""
    live: set[LiveKey] = set()
    for symbol in variables:
        if symbol.kind in (SymbolKind.FORMAL, SymbolKind.GLOBAL, SymbolKind.RESULT):
            live.add(symbol)
    return live


def compute_liveness(
    cfg: ControlFlowGraph, boundary: set[LiveKey] | None = None
) -> LivenessResult:
    """Iterate backward dataflow to a fixpoint.

    ``boundary`` is the live set at Return instructions (see
    :func:`exit_live_set`); Stop terminators observe nothing.
    """
    cfg.refresh()
    boundary = boundary or set()
    result = LivenessResult(
        live_in={bid: set() for bid in cfg.blocks},
        live_out={bid: set() for bid in cfg.blocks},
    )

    gen: dict[int, set[LiveKey]] = {}
    kill: dict[int, set[LiveKey]] = {}
    for block_id, block in cfg.blocks.items():
        block_gen: set[LiveKey] = set()
        block_kill: set[LiveKey] = set()
        for instr in block.instrs:
            for key in _use_keys(instr):
                if key not in block_kill:
                    block_gen.add(key)
            def_key = _def_key(instr)
            if def_key is not None:
                block_kill.add(def_key)
        gen[block_id] = block_gen
        kill[block_id] = block_kill

    from repro.ir.instructions import Return

    changed = True
    while changed:
        changed = False
        for block_id in reversed(list(cfg.blocks)):
            block = cfg.blocks[block_id]
            out: set[LiveKey] = set()
            for succ in block.successors():
                out |= result.live_in[succ]
            if isinstance(block.terminator, Return):
                out |= boundary
            new_in = gen[block_id] | (out - kill[block_id])
            if out != result.live_out[block_id] or new_in != result.live_in[block_id]:
                result.live_out[block_id] = out
                result.live_in[block_id] = new_in
                changed = True
    return result
