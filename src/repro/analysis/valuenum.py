"""Symbolic value numbering over SSA.

For every SSA name and temporary in a procedure, compute a
:class:`~repro.core.exprs.ValueExpr` describing its value as a function of
the procedure's entry values. This is the SSA-based value numbering the
paper built its jump functions on (§3, §4.1): the expression attached to
an actual parameter at a call site *is* the polynomial jump function, and
the simpler jump functions are projections of it.

Precision notes (all shared with the 1993 implementation):

- pessimistic at loop phis: a phi whose back-edge operand is not yet
  numbered gets ⊥ (single-pass value numbering);
- REAL-typed values are ⊥ everywhere (integers-only policy);
- array loads are ⊥ (arrays untracked);
- a call's effect on a scalar comes from the callee's *return jump
  function* when one exists, else ⊥. Following §3.2, a return jump
  function is evaluated with the *constant-only* values of the call's
  arguments — one that depends on the caller's own formals evaluates to ⊥.
  The ``compose_return_functions`` extension substitutes the caller's
  symbolic expressions instead, propagating pass-through chains across
  returns (off by default; benchmarked as an ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.ssa import SSAProcedure
from repro.core.exprs import (
    BOTTOM_EXPR,
    ConstExpr,
    EntryKey,
    ValueExpr,
    const_expr,
    constant_only_value,
    entry_expr,
    make_binary,
    make_intrinsic,
    make_unary,
    substitute,
)
from repro.core.lattice import is_constant
from repro.frontend.astnodes import Type
from repro.frontend.symbols import Symbol, SymbolKind
from repro.ir.lower import LoweredProgram
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    BinOp,
    Call,
    CallKill,
    Const,
    Convert,
    Copy,
    IntrinsicOp,
    LoadArr,
    Operand,
    Phi,
    ReadVar,
    SSAName,
    Temp,
    UnOp,
    VarDef,
)

RESULT_KEY = "$result"
"""Return-jump-function key for a function's result value."""


def entry_key_of(symbol: Symbol) -> EntryKey | None:
    """The interprocedural identity of a symbol's entry value, if any."""
    if symbol.kind is SymbolKind.FORMAL:
        return symbol.name
    if symbol.kind is SymbolKind.GLOBAL:
        return symbol.global_id
    return None


#: proc name -> (entry key | RESULT_KEY) -> return jump function expression.
ReturnJumpTable = Mapping[str, Mapping[object, ValueExpr]]


@dataclass
class ValueNumbering:
    """Value numbering result for one procedure."""

    ssa: SSAProcedure
    program: "LoweredProgram"
    exprs: dict[object, ValueExpr] = field(default_factory=dict)

    def expr_of(self, operand: Operand) -> ValueExpr:
        """The symbolic value of an operand."""
        if isinstance(operand, Const):
            if operand.type is Type.INTEGER:
                return const_expr(int(operand.value))
            if operand.type is Type.LOGICAL:
                return const_expr(bool(operand.value))
            return BOTTOM_EXPR  # REAL / CHARACTER literals
        key = _key(operand)
        return self.exprs.get(key, BOTTOM_EXPR)

    def argument_expr(self, arg: Argument) -> ValueExpr:
        """The symbolic value of an actual parameter (⊥ for arrays)."""
        if arg.kind in (ArgumentKind.ARRAY, ArgumentKind.ARRAY_ELEMENT):
            return BOTTOM_EXPR
        assert arg.value is not None
        return self.expr_of(arg.value)

    def exit_expr(self, symbol: Symbol) -> ValueExpr:
        """The symbolic value of ``symbol`` when the procedure returns."""
        if not self.ssa.exit_reachable:
            return BOTTOM_EXPR
        version = self.ssa.exit_versions.get(symbol)
        if version is None:
            return BOTTOM_EXPR
        return self.exprs.get(SSAName(symbol, version), BOTTOM_EXPR)

    def global_expr_at(self, call: Call, symbol: Symbol) -> ValueExpr:
        """The symbolic value of a global just before ``call`` executes."""
        versions = self.ssa.call_versions.get(call.site_id, {})
        version = versions.get(symbol)
        if version is None:
            return BOTTOM_EXPR
        return self.exprs.get(SSAName(symbol, version), BOTTOM_EXPR)


def _key(operand: Operand):
    if isinstance(operand, SSAName):
        return SSAName(operand.symbol, operand.version)  # drop span for keying
    return operand


def _entry_value_expr(symbol: Symbol) -> ValueExpr:
    """ValueExpr of a variable's entry (version 0) value."""
    if symbol.type not in (Type.INTEGER, Type.LOGICAL):
        return BOTTOM_EXPR  # REALs never participate
    key = entry_key_of(symbol)
    if key is None:
        return BOTTOM_EXPR  # locals are undefined on entry
    return entry_expr(key)


def value_number(
    ssa: SSAProcedure,
    program: "LoweredProgram",
    return_jump_table: ReturnJumpTable | None = None,
    compose_return_functions: bool = False,
) -> ValueNumbering:
    """Run symbolic value numbering over ``ssa``.

    ``program`` supplies callee formal lists for return-jump-function
    application; ``return_jump_table`` holds the already-built return jump
    functions (stage 1 passes the partial table, stage 2 the full one;
    omit it to disable return jump functions, as in Table 2's final
    columns).
    """
    numbering = ValueNumbering(ssa=ssa, program=program)
    exprs = numbering.exprs
    for symbol in ssa.variables:
        exprs[SSAName(symbol, 0)] = _entry_value_expr(symbol)

    rjf = return_jump_table or {}
    for block_id in ssa.cfg.reverse_postorder():
        block = ssa.cfg.blocks[block_id]
        for instr in block.instrs:
            _transfer(instr, numbering, rjf, compose_return_functions)
    return numbering


def _transfer(
    instr,
    numbering: ValueNumbering,
    rjf: ReturnJumpTable,
    compose: bool,
) -> None:
    exprs = numbering.exprs
    expr_of = numbering.expr_of

    if isinstance(instr, Phi):
        dest = instr.dest
        assert isinstance(dest, VarDef)
        incoming: list[ValueExpr] = []
        for operand in instr.incoming.values():
            key = _key(operand)
            if isinstance(operand, SSAName) and key not in exprs:
                incoming = [BOTTOM_EXPR]  # back edge: pessimistic
                break
            incoming.append(expr_of(operand))
        merged = incoming[0] if incoming else BOTTOM_EXPR
        for other in incoming[1:]:
            if other != merged:
                merged = BOTTOM_EXPR
                break
        _define(exprs, dest, merged)
        return

    dest = instr.dest
    if isinstance(instr, BinOp):
        _define(exprs, dest, make_binary(instr.op, expr_of(instr.left),
                                         expr_of(instr.right)))
    elif isinstance(instr, UnOp):
        _define(exprs, dest, make_unary(instr.op, expr_of(instr.operand)))
    elif isinstance(instr, IntrinsicOp):
        args = [expr_of(a) for a in instr.args]
        if instr.name == "real":
            _define(exprs, dest, BOTTOM_EXPR)
        else:
            _define(exprs, dest, make_intrinsic(instr.name, args))
    elif isinstance(instr, Convert):
        # int->real loses constancy (REALs untracked); real->int would need
        # compile-time float arithmetic, which the paper avoids (§4).
        _define(exprs, dest, BOTTOM_EXPR)
    elif isinstance(instr, Copy):
        _define(exprs, dest, expr_of(instr.src))
    elif isinstance(instr, LoadArr):
        _define(exprs, dest, BOTTOM_EXPR)
    elif isinstance(instr, ReadVar):
        _define(exprs, instr.dest, BOTTOM_EXPR)
    elif isinstance(instr, Call):
        if instr.dest is not None:
            result_expr = _apply_return_function(
                instr, RESULT_KEY, numbering, rjf, compose
            )
            _define(exprs, instr.dest, result_expr)
    elif isinstance(instr, CallKill):
        kind, payload = instr.binding
        callee_key = payload if kind in ("formal", "global") else None
        value = _apply_return_function(
            instr.call, callee_key, numbering, rjf, compose
        )
        _define(exprs, instr.dest, value)


def _define(exprs: dict, dest, expr: ValueExpr) -> None:
    if dest is None:
        return
    if isinstance(dest, VarDef):
        if dest.symbol.type not in (Type.INTEGER, Type.LOGICAL):
            expr = BOTTOM_EXPR
        exprs[SSAName(dest.symbol, dest.version or 0)] = expr
    else:
        if dest.type not in (Type.INTEGER, Type.LOGICAL):
            expr = BOTTOM_EXPR
        exprs[dest] = expr


def _apply_return_function(
    call: Call,
    callee_key,
    numbering: ValueNumbering,
    rjf: ReturnJumpTable,
    compose: bool,
) -> ValueExpr:
    """Value of a scalar after ``call`` according to the callee's return
    jump function (⊥ when there is none)."""
    if callee_key is None:
        return BOTTOM_EXPR
    callee_table = rjf.get(call.callee)
    if not callee_table:
        return BOTTOM_EXPR
    function = callee_table.get(callee_key)
    if function is None:
        return BOTTOM_EXPR
    if function.is_bottom:
        return BOTTOM_EXPR
    bindings = _call_bindings(call, numbering)
    if compose:
        return substitute(function, bindings)
    env = {}
    for key in function.support():
        value = constant_only_value(bindings.get(key, BOTTOM_EXPR))
        if not is_constant(value):
            return BOTTOM_EXPR  # §3.2: non-constant inputs force ⊥
        env[key] = value
    result = function.evaluate(env)
    if is_constant(result):
        return const_expr(result)  # type: ignore[arg-type]
    return BOTTOM_EXPR


def _call_bindings(call: Call, numbering: ValueNumbering) -> dict:
    """Map callee entry keys to caller-side expressions at this call.

    Formals bind positionally to the actual-parameter expressions; globals
    bind to the caller's value of the same COMMON slot just before the
    call (globals are "implicitly passed parameters", footnote 1).
    """
    bindings: dict[EntryKey, ValueExpr] = {}
    callee = numbering.program.procedures[call.callee].procedure
    for formal, arg in zip(callee.formals, call.args):
        bindings[formal.name] = numbering.argument_expr(arg)
    for symbol in numbering.ssa.call_versions.get(call.site_id, {}):
        assert symbol.global_id is not None
        bindings[symbol.global_id] = numbering.global_expr_at(call, symbol)
    return bindings
