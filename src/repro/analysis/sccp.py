"""Sparse conditional constant propagation (Wegman–Zadeck) on SSA.

This is the canonical *intraprocedural* constant propagation algorithm —
the baseline the paper compares against in Table 3, column 4. Interfaces:

- ``entry_env`` maps symbols to the lattice value of their entry (version
  0) definition. The intraprocedural baseline passes ⊥ for formals and
  globals; the framework can also seed it with CONSTANTS(p) to measure
  the downstream effect of interprocedural information.
- MOD information is honoured structurally: a call kills a scalar iff a
  :class:`CallKill` was inserted for it, so un-MODified variables keep
  their values across calls with no extra logic here.

The algorithm is optimistic: values start at ⊤ and only lower; branch
edges become executable only when their condition allows it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import semantics
from repro.analysis.ssa import SSAProcedure
from repro.core.lattice import BOTTOM, TOP, LatticeValue, is_constant, meet_all
from repro.frontend.astnodes import Type
from repro.frontend.symbols import Symbol
from repro.ir.instructions import (
    BinOp,
    Call,
    CallKill,
    CJump,
    Const,
    Convert,
    Copy,
    Instr,
    IntrinsicOp,
    Jump,
    LoadArr,
    Operand,
    Phi,
    ReadVar,
    SSAName,
    Temp,
    UnOp,
    VarDef,
)

_ENTRY_EDGE = -1  # virtual predecessor of the entry block


@dataclass
class SCCPResult:
    """Lattice values and reachability facts from one SCCP run."""

    values: dict[object, LatticeValue] = field(default_factory=dict)
    executable_blocks: set[int] = field(default_factory=set)
    executable_edges: set[tuple[int, int]] = field(default_factory=set)

    def value_of(self, operand: Operand) -> LatticeValue:
        return _operand_value(operand, self.values)

    def constant_names(self) -> dict[object, LatticeValue]:
        """All SSA names / temps proven constant."""
        return {k: v for k, v in self.values.items() if is_constant(v)}


def _operand_value(operand: Operand, values: dict) -> LatticeValue:
    if isinstance(operand, Const):
        if operand.type is Type.INTEGER:
            return int(operand.value)
        if operand.type is Type.LOGICAL:
            return bool(operand.value)
        return BOTTOM
    if isinstance(operand, SSAName):
        return values.get(SSAName(operand.symbol, operand.version), TOP)
    return values.get(operand, TOP)


def _fold(op: str, arity: str, args: list[LatticeValue]) -> LatticeValue:
    if op == "*" and arity == "bin" and any(
        a == 0 and isinstance(a, int) and not isinstance(a, bool) for a in args
    ):
        return 0  # 0 * anything = 0, even for unknown operands
    if any(a is BOTTOM for a in args):
        return BOTTOM
    if any(a is TOP for a in args):
        return TOP
    try:
        if arity == "bin":
            result = semantics.apply_binary(op, args[0], args[1])
        elif arity == "un":
            result = semantics.apply_unary(op, args[0])
        else:
            result = semantics.apply_intrinsic(op, args)
    except (semantics.EvalError, OverflowError, ValueError):
        return BOTTOM
    if isinstance(result, (bool, int)):
        return result
    return BOTTOM


def run_sccp(
    ssa: SSAProcedure,
    entry_env: dict[Symbol, LatticeValue] | None = None,
) -> SCCPResult:
    """Run SCCP over ``ssa`` with the given entry values."""
    result = SCCPResult()
    values = result.values
    env = entry_env or {}
    for symbol in ssa.variables:
        if symbol.type in (Type.INTEGER, Type.LOGICAL):
            values[SSAName(symbol, 0)] = env.get(symbol, BOTTOM)
        else:
            values[SSAName(symbol, 0)] = BOTTOM

    cfg = ssa.cfg
    defs = ssa.definitions()
    uses = ssa.uses()
    instr_block: dict[int, int] = {}
    for block, instr in cfg.instructions():
        instr_block[id(instr)] = block.id

    flow_list: list[tuple[int, int]] = [(_ENTRY_EDGE, cfg.entry_id)]
    ssa_list: list[object] = []
    visited_blocks: set[int] = set()

    def set_value(key, new_value: LatticeValue) -> None:
        # Values may only move down the lattice (⊤ → c → ⊥).
        old = values.get(key, TOP)
        if old is new_value or old == new_value and type(old) is type(new_value):
            return
        if old is TOP or (is_constant(old) and new_value is BOTTOM):
            values[key] = new_value
            ssa_list.append(key)

    def dest_key(instr: Instr):
        dest = instr.dest
        if dest is None:
            return None
        if isinstance(dest, VarDef):
            return SSAName(dest.symbol, dest.version or 0)
        return dest

    def visit_phi(phi: Phi, block_id: int) -> None:
        key = dest_key(phi)
        if key is None:
            return
        contributions = []
        for pred_id, operand in phi.incoming.items():
            if (pred_id, block_id) in result.executable_edges:
                contributions.append(_operand_value(operand, values))
        if contributions:
            set_value(key, meet_all(contributions))

    def visit_instr(instr: Instr, block_id: int) -> None:
        if isinstance(instr, Phi):
            visit_phi(instr, block_id)
            return
        if isinstance(instr, BinOp):
            identity = _same_operand_identity(instr)
            if identity is not None:
                folded: LatticeValue = identity
            else:
                folded = _fold(
                    instr.op,
                    "bin",
                    [
                        _operand_value(instr.left, values),
                        _operand_value(instr.right, values),
                    ],
                )
            set_value(dest_key(instr), _demote_real(instr, folded))
        elif isinstance(instr, UnOp):
            folded = _fold(instr.op, "un", [_operand_value(instr.operand, values)])
            set_value(dest_key(instr), _demote_real(instr, folded))
        elif isinstance(instr, IntrinsicOp):
            if instr.name == "real":
                set_value(dest_key(instr), BOTTOM)
            else:
                folded = _fold(
                    instr.name,
                    "intrinsic",
                    [_operand_value(a, values) for a in instr.args],
                )
                set_value(dest_key(instr), _demote_real(instr, folded))
        elif isinstance(instr, Copy):
            set_value(dest_key(instr), _operand_value(instr.src, values))
        elif isinstance(instr, (Convert, LoadArr, ReadVar, CallKill)):
            key = dest_key(instr)
            if key is not None:
                set_value(key, BOTTOM)
        elif isinstance(instr, Call):
            key = dest_key(instr)
            if key is not None:
                set_value(key, BOTTOM)
        elif isinstance(instr, Jump):
            add_edge(block_id, instr.target)
        elif isinstance(instr, CJump):
            cond = _operand_value(instr.cond, values)
            if cond is TOP:
                return
            if cond is BOTTOM:
                add_edge(block_id, instr.if_true)
                add_edge(block_id, instr.if_false)
            elif cond:
                add_edge(block_id, instr.if_true)
            else:
                add_edge(block_id, instr.if_false)

    def add_edge(src: int, dst: int) -> None:
        if (src, dst) not in result.executable_edges:
            flow_list.append((src, dst))

    while flow_list or ssa_list:
        while flow_list:
            edge = flow_list.pop()
            if edge in result.executable_edges:
                continue
            result.executable_edges.add(edge)
            block_id = edge[1]
            block = cfg.blocks[block_id]
            for phi in block.phis():
                visit_phi(phi, block_id)
            if block_id not in visited_blocks:
                visited_blocks.add(block_id)
                result.executable_blocks.add(block_id)
                for instr in block.non_phi_instrs():
                    visit_instr(instr, block_id)
            else:
                # Re-triggering an already-visited block only re-runs its
                # terminator (phis were handled above).
                terminator = block.terminator
                if terminator is not None:
                    visit_instr(terminator, block_id)
        while ssa_list:
            key = ssa_list.pop()
            for use_block, use_instr in uses.get(key, ()):
                if use_block in result.executable_blocks:
                    visit_instr(use_instr, use_block)

    return result


_SAME_OPERAND_RESULTS = {
    "-": 0,
    "==": True,
    "<=": True,
    ">=": True,
    "/=": False,
    "<": False,
    ">": False,
}


def _same_operand_identity(instr: BinOp) -> LatticeValue | None:
    """Fold ``x op x`` where both operands are the *same* SSA value —
    identities the symbolic value numbering also applies, kept here so
    SCCP is never less precise than it."""
    if instr.op not in _SAME_OPERAND_RESULTS:
        return None
    left, right = instr.left, instr.right
    same = False
    if isinstance(left, SSAName) and isinstance(right, SSAName):
        same = left.symbol is right.symbol and left.version == right.version
    elif isinstance(left, Temp) and isinstance(right, Temp):
        same = left == right
    if not same:
        return None
    if _is_real_operand(left):
        return None  # NaN-style caveats: leave REALs alone
    return _SAME_OPERAND_RESULTS[instr.op]


def _is_real_operand(operand) -> bool:
    if isinstance(operand, SSAName):
        return operand.symbol.type not in (Type.INTEGER, Type.LOGICAL)
    if isinstance(operand, Temp):
        return operand.type not in (Type.INTEGER, Type.LOGICAL)
    return False


def _demote_real(instr, folded: LatticeValue) -> LatticeValue:
    """REAL-typed destinations never hold lattice constants."""
    dest = instr.dest
    dest_type = dest.symbol.type if isinstance(dest, VarDef) else dest.type
    if dest_type not in (Type.INTEGER, Type.LOGICAL) and folded is not TOP:
        return BOTTOM
    return folded
