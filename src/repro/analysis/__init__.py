"""Intraprocedural analysis substrate: dominance, SSA, value numbering,
SCCP, liveness, and dead-code elimination.

These are the pieces ParaScope provided to the 1993 study; the jump
function builders in :mod:`repro.core` sit on top of them.
"""

from repro.analysis.dominance import DominatorTree, compute_dominators
from repro.analysis.ssa import SSAProcedure, build_ssa, ensure_global_symbols
from repro.analysis.valuenum import ValueNumbering, value_number
from repro.analysis.sccp import SCCPResult, run_sccp
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.dce import eliminate_dead_code, fold_constant_branches

__all__ = [
    "DominatorTree",
    "LivenessResult",
    "SCCPResult",
    "SSAProcedure",
    "ValueNumbering",
    "build_ssa",
    "compute_dominators",
    "compute_liveness",
    "eliminate_dead_code",
    "ensure_global_symbols",
    "fold_constant_branches",
    "run_sccp",
    "value_number",
]
