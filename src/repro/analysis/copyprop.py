"""Local copy propagation on the pre-SSA CFG.

Replaces uses of temporaries that merely forward another operand —
``t = x`` followed by uses of ``t`` — with the forwarded operand, within
a basic block. Lowering makes temporaries block-local and
single-assignment, so a block-local forward pass is complete for them.

Soundness bookkeeping: an entry ``t ↦ x`` (``x`` a named variable) dies
when ``x`` is redefined — by an assignment, a READ, or a call that may
modify it (any call, conservatively). Constants never die.

The pass feeds dead-store elimination during complete propagation: once
``y = t`` becomes ``y = x``, the copy ``t = x`` is dead and DCE removes
it. Source spans ride along on the propagated operands, so substitution
counting is unaffected (spans are de-duplicated there).
"""

from __future__ import annotations

from repro.ir.instructions import (
    Call,
    Const,
    Copy,
    Operand,
    ReadVar,
    Temp,
    VarDef,
    VarUse,
)
from repro.ir.lower import LoweredProcedure


def propagate_copies(lowered_proc: LoweredProcedure) -> int:
    """Run local copy propagation; returns the number of uses rewritten."""
    rewritten = 0
    for block in lowered_proc.cfg.blocks.values():
        env: dict[Temp, Operand] = {}

        def lookup(operand: Operand) -> Operand:
            nonlocal rewritten
            seen: set[Temp] = set()
            while isinstance(operand, Temp) and operand in env:
                if operand in seen:  # pragma: no cover - defensive
                    break
                seen.add(operand)
                operand = env[operand]
                rewritten += 1
            return operand

        for instr in block.instrs:
            instr.replace_uses(lookup)
            if isinstance(instr, Copy) and isinstance(instr.dest, Temp):
                source = instr.src
                if isinstance(source, (Const, VarUse)):
                    env[instr.dest] = source
            killed = _killed_symbols(instr)
            if killed is _ALL:
                env = {
                    t: op for t, op in env.items() if isinstance(op, Const)
                }
            elif killed:
                env = {
                    t: op
                    for t, op in env.items()
                    if not (isinstance(op, VarUse) and op.symbol in killed)
                }
    return rewritten


_ALL = object()


def _killed_symbols(instr):
    """Symbols whose cached copies die at this instruction."""
    if isinstance(instr, Call):
        return _ALL  # conservative: the callee may write anything visible
    if isinstance(instr, ReadVar):
        return {instr.target.symbol}
    dest = instr.dest
    if isinstance(dest, VarDef):
        return {dest.symbol}
    return None
