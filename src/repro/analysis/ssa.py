"""SSA construction (Cytron et al.) over a copied CFG.

Responsibilities:

- :func:`ensure_global_symbols` — give every procedure a (possibly hidden)
  symbol for every scalar COMMON member in the program, so values that
  merely *flow through* a procedure are still tracked (the paper's
  pass-through of implicitly-passed globals).
- :func:`instrument_call_kills` — insert :class:`~repro.ir.instructions.CallKill`
  pseudo-definitions after each call for every scalar the call may modify,
  as dictated by MOD information (or everything visible, when running the
  paper's "no MOD" ablation).
- :func:`build_ssa` — copy the CFG, place phis at iterated dominance
  frontiers, rename, and record the entry (version-0) and exit versions of
  every scalar. Version 0 of a formal or global *is* its value on entry —
  the quantity interprocedural constant propagation approximates.

The original :class:`~repro.ir.lower.LoweredProcedure` is never mutated;
every analysis works on its own SSA copy.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.dominance import DominatorTree, compute_dominators, iterated_frontier
from repro.frontend.astnodes import Type
from repro.frontend.symbols import GlobalId, Symbol, SymbolKind
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import (
    Call,
    CallKill,
    Instr,
    Operand,
    Phi,
    SSAName,
    Temp,
    VarDef,
    VarUse,
)
from repro.ir.lower import LoweredProcedure, LoweredProgram

#: Maps a Call to the scalars it may modify: list of (symbol, binding).
CallEffects = Callable[[Call], list[tuple[Symbol, tuple[str, object]]]]


def no_call_effects(_call: Call) -> list[tuple[Symbol, tuple[str, object]]]:
    """Effects function for code with no interprocedural information needs."""
    return []


def ensure_global_symbols(lowered: LoweredProgram) -> None:
    """Add hidden symbols for scalar globals a procedure does not declare.

    COMMON storage exists program-wide: if ``p`` calls ``q`` and both are
    called from code that sees ``/blk/``, values flow through ``p`` even
    when ``p`` never mentions the block. A hidden symbol gives the analyses
    something to version and kill. Idempotent.
    """
    for lowered_proc in lowered.procedures.values():
        symtab = lowered_proc.procedure.symtab
        present = {
            s.global_id for s in symtab if s.global_id is not None
        }
        for gid, gvar in lowered.program.globals.items():
            if gvar.is_array or gid in present:
                continue
            name = f"$g${gid.block}${gid.offset}"
            if name in symtab:
                continue
            symtab.define(
                Symbol(
                    name=name,
                    kind=SymbolKind.GLOBAL,
                    type=gvar.type,
                    global_id=gid,
                    data_value=gvar.data_value,
                    hidden=True,
                )
            )


def copy_cfg(cfg: ControlFlowGraph) -> ControlFlowGraph:
    """Deep-copy a CFG; symbols are shared (they define their own deepcopy)."""
    return copy.deepcopy(cfg)


def instrument_call_kills(cfg: ControlFlowGraph, effects: CallEffects) -> None:
    """Insert CallKill pseudo-defs after every call, per ``effects``."""
    for block in cfg.blocks.values():
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            new_instrs.append(instr)
            if isinstance(instr, Call):
                for symbol, binding in effects(instr):
                    new_instrs.append(
                        CallKill(target=VarDef(symbol), call=instr, binding=binding)
                    )
        block.instrs = new_instrs


@dataclass
class SSAProcedure:
    """A procedure in SSA form plus renaming metadata."""

    lowered: LoweredProcedure
    cfg: ControlFlowGraph
    domtree: DominatorTree
    variables: list[Symbol]
    exit_versions: dict[Symbol, int] = field(default_factory=dict)
    exit_reachable: bool = True
    #: site_id -> {global symbol -> version current just before the call}.
    call_versions: dict[int, dict[Symbol, int]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.lowered.name

    def entry_name(self, symbol: Symbol) -> SSAName:
        """Version 0 — the value of ``symbol`` on procedure entry."""
        return SSAName(symbol, 0)

    def calls(self) -> list[Call]:
        return [i for _, i in self.cfg.instructions() if isinstance(i, Call)]

    def definitions(self) -> dict[object, tuple[int, Instr]]:
        """Map each defined SSAName/Temp to its (block id, instruction)."""
        defs: dict[object, tuple[int, Instr]] = {}
        for block, instr in self.cfg.instructions():
            dest = instr.dest
            if isinstance(dest, Temp):
                defs[dest] = (block.id, instr)
            elif isinstance(dest, VarDef):
                defs[SSAName(dest.symbol, dest.version or 0)] = (block.id, instr)
        return defs

    def uses(self) -> dict[object, list[tuple[int, Instr]]]:
        """Map each SSAName/Temp to the instructions that use it."""
        found: dict[object, list[tuple[int, Instr]]] = {}
        for block, instr in self.cfg.instructions():
            for operand in instr.uses():
                if isinstance(operand, Temp):
                    found.setdefault(operand, []).append((block.id, instr))
                elif isinstance(operand, SSAName):
                    key = SSAName(operand.symbol, operand.version)
                    found.setdefault(key, []).append((block.id, instr))
        return found

    def entry_use_spans(self, symbol: Symbol) -> list:
        """Source spans of uses of ``symbol``'s entry value.

        These are exactly the references the paper's analyzer substitutes
        when the entry value turns out constant. Spans of synthesized uses
        (length 0) are excluded.
        """
        spans = []
        for _, instr in self.cfg.instructions():
            if isinstance(instr, Phi):
                continue  # phis are not source references
            for operand in instr.uses():
                if (
                    isinstance(operand, SSAName)
                    and operand.symbol is symbol
                    and operand.version == 0
                    and operand.span.start.offset != operand.span.end.offset
                ):
                    spans.append(operand.span)
        return spans


def build_ssa(
    lowered_proc: LoweredProcedure,
    effects: CallEffects = no_call_effects,
) -> SSAProcedure:
    """Copy, instrument, and convert one procedure to SSA form."""
    cfg = copy_cfg(lowered_proc.cfg)
    instrument_call_kills(cfg, effects)
    cfg.refresh()
    variables = [
        s
        for s in lowered_proc.procedure.symtab
        if not s.is_array and s.kind is not SymbolKind.NAMED_CONST
    ]
    domtree = compute_dominators(cfg)
    reachable = set(domtree.idom)
    _place_phis(cfg, domtree, variables, reachable)
    exit_versions, exit_reachable, call_versions = _rename(cfg, domtree, variables)
    return SSAProcedure(
        lowered=lowered_proc,
        cfg=cfg,
        domtree=domtree,
        variables=variables,
        exit_versions=exit_versions,
        exit_reachable=exit_reachable,
        call_versions=call_versions,
    )


def _place_phis(
    cfg: ControlFlowGraph,
    domtree: DominatorTree,
    variables: list[Symbol],
    reachable: set[int],
) -> None:
    def_blocks: dict[Symbol, set[int]] = {s: {cfg.entry_id} for s in variables}
    for block, instr in cfg.instructions():
        if block.id not in reachable:
            continue
        dest = instr.dest
        if isinstance(dest, VarDef) and dest.symbol in def_blocks:
            def_blocks[dest.symbol].add(block.id)
    for symbol in variables:
        blocks = def_blocks[symbol]
        if len(blocks) == 1:
            continue
        for join_id in iterated_frontier(domtree, blocks):
            join = cfg.blocks[join_id]
            join.instrs.insert(0, Phi(result=VarDef(symbol)))


def _rename(
    cfg: ControlFlowGraph,
    domtree: DominatorTree,
    variables: list[Symbol],
) -> tuple[dict[Symbol, int], bool, dict[int, dict[Symbol, int]]]:
    stacks: dict[Symbol, list[int]] = {s: [0] for s in variables}
    counters: dict[Symbol, int] = {s: 0 for s in variables}
    tracked = set(variables)
    global_symbols = [s for s in variables if s.kind is SymbolKind.GLOBAL]
    exit_versions: dict[Symbol, int] = {}
    call_versions: dict[int, dict[Symbol, int]] = {}
    exit_seen = False

    def current(symbol: Symbol) -> int:
        return stacks[symbol][-1]

    def fresh(symbol: Symbol) -> int:
        counters[symbol] += 1
        stacks[symbol].append(counters[symbol])
        return counters[symbol]

    def rewrite_use(operand: Operand) -> Operand:
        if isinstance(operand, VarUse) and operand.symbol in tracked:
            return SSAName(operand.symbol, current(operand.symbol), operand.span)
        return operand

    # Iterative dominator-tree walk with explicit enter/leave events.
    work: list[tuple[str, int]] = [("enter", cfg.entry_id)]
    pushed_per_block: dict[int, list[Symbol]] = {}
    while work:
        action, block_id = work.pop()
        if action == "leave":
            for symbol in pushed_per_block.pop(block_id, ()):
                stacks[symbol].pop()
            continue
        block = cfg.blocks[block_id]
        pushed: list[Symbol] = []
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                instr.replace_uses(rewrite_use)
            if isinstance(instr, Call):
                # Snapshot pre-call global versions: forward jump functions
                # for implicitly-passed globals read the value *before* the
                # call's own kills take effect.
                call_versions[instr.site_id] = {
                    s: current(s) for s in global_symbols
                }
            dest = instr.dest
            if isinstance(dest, VarDef) and dest.symbol in tracked:
                version = fresh(dest.symbol)
                instr.set_dest(VarDef(dest.symbol, dest.span, version))
                pushed.append(dest.symbol)
        if block_id == cfg.exit_id:
            exit_seen = True
            for symbol in variables:
                exit_versions[symbol] = current(symbol)
        for succ_id in block.successors():
            succ = cfg.blocks[succ_id]
            for phi in succ.phis():
                dest = phi.dest
                assert isinstance(dest, VarDef)
                phi.incoming[block_id] = SSAName(dest.symbol, current(dest.symbol))
        pushed_per_block[block_id] = pushed
        work.append(("leave", block_id))
        for child in sorted(domtree.children.get(block_id, ()), reverse=True):
            work.append(("enter", child))

    if not exit_seen:
        return {}, False, call_versions
    return exit_versions, True, call_versions
