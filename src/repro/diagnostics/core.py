"""The pluggable diagnostics framework: report types, pass protocol,
registry, and the ``run_passes`` driver.

The repo accumulated correctness checks in scattered places — an IR
validator raising :class:`AssertionError`, a runtime soundness probe
returning its own violation type, ad-hoc asserts inside the solver. This
module gives them one shared vocabulary:

- :class:`Diagnostic` — one finding, with a stable code, a severity, and
  an optional source span, comparable and deterministically sortable;
- :class:`Pass` — the protocol a checker implements (``name``, ``code``,
  ``description``, ``run(ctx)``), with :class:`LintPass` as the
  convenience base class;
- :class:`Registry` — named passes, with default-enabled vs. opt-in
  (e.g. the lattice sanitizer, which re-solves the program twice);
- :func:`run_passes` — analyze a program once, hand every selected pass
  the shared :class:`LintContext`, and collect one :class:`LintReport`.

Everything here is intentionally light on imports (only the frontend's
span types) so low-level modules — the interpreter's soundness checker,
the lattice sanitizer hooks — can produce :class:`Diagnostic` objects
without dragging in the whole pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.frontend.source import SourceSpan

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.config import AnalysisConfig
    from repro.core.driver import AnalysisResult


class Severity(enum.Enum):
    """How bad a finding is. ``rank`` orders INFO < WARNING < ERROR."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:
        return self.value


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one pass.

    ``code`` is the stable machine identifier (``RL...``); ``pass_name``
    says which checker produced it; ``span`` points into the analyzed
    source when the finding has a location, and ``path`` names the file
    (filled in by the CLI, which is the only layer that knows it).
    """

    code: str
    severity: Severity
    message: str
    pass_name: str = ""
    procedure: str | None = None
    span: SourceSpan | None = None
    path: str | None = None

    def sort_key(self) -> tuple:
        span = self.span
        offset = span.start.offset if span is not None else -1
        return (
            self.path or "",
            offset,
            self.code,
            self.procedure or "",
            self.message,
        )

    def location(self) -> str:
        """``path:line:col`` with whatever parts are known."""
        parts = []
        if self.path:
            parts.append(self.path)
        if self.span is not None:
            parts.append(str(self.span.start.line))
            parts.append(str(self.span.start.column))
        return ":".join(parts)

    def to_dict(self) -> dict:
        """A JSON-ready mapping with deterministic key order."""
        payload: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "pass": self.pass_name,
        }
        if self.procedure is not None:
            payload["procedure"] = self.procedure
        if self.span is not None:
            payload["line"] = self.span.start.line
            payload["column"] = self.span.start.column
            payload["end_line"] = self.span.end.line
            payload["end_column"] = self.span.end.column
        if self.path is not None:
            payload["path"] = self.path
        return payload

    def format_text(self) -> str:
        location = self.location()
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.severity.value} {self.code} [{self.pass_name}] {self.message}"


#: code -> one-line human description; passes register their codes here so
#: the SARIF emitter can publish rule metadata without importing the pass.
CODE_DESCRIPTIONS: dict[str, str] = {}


def describe_code(code: str, description: str) -> str:
    """Register (or look up) the description of a diagnostic code."""
    CODE_DESCRIPTIONS.setdefault(code, description)
    return code


@dataclass
class LintContext:
    """Everything a pass may inspect, derived from one analyzer run.

    Passes see the *whole* pipeline through one analysis result: resolved
    program, lowered IR, call graph, MOD/REF summaries, forward jump
    functions (with SSA forms), and the solved VAL sets.
    """

    result: "AnalysisResult"
    path: str | None = None

    @property
    def program(self):
        return self.result.program

    @property
    def lowered(self):
        return self.result.lowered

    @property
    def graph(self):
        return self.result.call_graph

    @property
    def modref(self):
        return self.result.modref

    @property
    def forward(self):
        return self.result.forward

    @property
    def solved(self):
        return self.result.solved

    @property
    def config(self):
        return self.result.config

    @property
    def source(self) -> str:
        return self.result.program.source

    @classmethod
    def from_source(
        cls,
        source: str,
        config: "AnalysisConfig | None" = None,
        path: str | None = None,
    ) -> "LintContext":
        from repro.core.driver import analyze  # late: avoids an import cycle

        return cls(result=analyze(source, config), path=path)


@runtime_checkable
class Pass(Protocol):
    """The checker protocol. Anything with this shape can be registered."""

    name: str
    code: str
    description: str
    default_enabled: bool

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]: ...


class LintPass:
    """Convenience base class: class attributes plus a ``run`` override."""

    name: str = ""
    code: str = ""
    description: str = ""
    #: opt-in passes (e.g. the lattice sanitizer) set this to False and
    #: run only when selected explicitly.
    default_enabled: bool = True

    def run(self, ctx: LintContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self,
        code: str,
        severity: Severity,
        message: str,
        *,
        procedure: str | None = None,
        span: SourceSpan | None = None,
    ) -> Diagnostic:
        """Build a finding attributed to this pass."""
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            pass_name=self.name,
            procedure=procedure,
            span=span,
        )


class Registry:
    """Named passes in registration order."""

    def __init__(self) -> None:
        self._passes: dict[str, Pass] = {}

    def register(self, pass_: Pass) -> Pass:
        if not pass_.name:
            raise ValueError("pass has no name")
        if pass_.name in self._passes:
            raise ValueError(f"duplicate pass name {pass_.name!r}")
        self._passes[pass_.name] = pass_
        return pass_

    def get(self, name: str) -> Pass:
        try:
            return self._passes[name]
        except KeyError:
            raise KeyError(
                f"unknown pass {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        return list(self._passes)

    def passes(self) -> list[Pass]:
        return list(self._passes.values())

    def default_passes(self) -> list[Pass]:
        return [p for p in self._passes.values() if p.default_enabled]

    def __contains__(self, name: str) -> bool:
        return name in self._passes

    def __len__(self) -> int:
        return len(self._passes)


@dataclass
class LintReport:
    """The outcome of one ``run_passes`` call (or a merge of several)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        found = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            found[diag.severity.value] += 1
        return found

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def sorted(self) -> "LintReport":
        """A copy with deterministically ordered, deduplicated findings."""
        unique = sorted(set(self.diagnostics), key=Diagnostic.sort_key)
        return LintReport(diagnostics=unique, passes_run=list(self.passes_run))

    @staticmethod
    def merged(reports: Iterable["LintReport"]) -> "LintReport":
        merged = LintReport()
        for report in reports:
            merged.diagnostics.extend(report.diagnostics)
            for name in report.passes_run:
                if name not in merged.passes_run:
                    merged.passes_run.append(name)
        return merged.sorted()


def run_passes(
    target: "str | LintContext",
    *,
    registry: Registry | None = None,
    select: Iterable[str] | None = None,
    enable: Iterable[str] = (),
    config: "AnalysisConfig | None" = None,
    path: str | None = None,
) -> LintReport:
    """Run checkers over one program and collect a :class:`LintReport`.

    ``target`` is MiniFortran source text (analyzed once, with ``config``)
    or a prebuilt :class:`LintContext`. With ``select`` the named passes
    run, exactly; otherwise every default-enabled pass runs, plus any
    opt-in passes named in ``enable``. Findings come back deduplicated
    and sorted, so two runs over the same program are bit-identical.
    """
    if registry is None:
        from repro.diagnostics.passes import default_registry  # late: cycle

        registry = default_registry()

    if select is not None:
        chosen = [registry.get(name) for name in select]
    else:
        chosen = registry.default_passes()
        for name in enable:
            pass_ = registry.get(name)
            if pass_ not in chosen:
                chosen.append(pass_)

    if isinstance(target, LintContext):
        ctx = target
        if path is not None:
            ctx.path = path
    else:
        ctx = LintContext.from_source(target, config=config, path=path)

    report = LintReport()
    for pass_ in chosen:
        report.passes_run.append(pass_.name)
        for diag in pass_.run(ctx):
            if ctx.path is not None and diag.path is None:
                diag = Diagnostic(
                    code=diag.code,
                    severity=diag.severity,
                    message=diag.message,
                    pass_name=diag.pass_name,
                    procedure=diag.procedure,
                    span=diag.span,
                    path=ctx.path,
                )
            report.diagnostics.append(diag)
    return report.sorted()
