"""The shipped checker suite.

Ten passes, one per failure mode the paper's methodology depends on:

==========================  =================================================
ir-wellformed               CFG invariants (pre-SSA and SSA) via the IR
                            validator — a pass left the graph broken.
call-binding                call-site arity, argument/formal shape and type
                            agreement — call-by-reference reinterprets
                            storage, so a mismatch is a real bug.
param-aliasing              FORTRAN's parameter-aliasing rule (§4): a
                            modified formal whose actual is aliased to
                            another formal or to visible COMMON storage.
dead-formal                 formals no path references (from REF).
unreferenced-global         COMMON members no procedure touches (MOD∪REF).
unreachable-procedure       procedures the call graph never reaches.
jump-function-wf            stage-2 output well-formedness: every binding
                            targets a real callee entry key, every support
                            key exists in the caller, constant edges carry
                            no residual expression.
copy-chain                  (framework copyprop client) one entry value
                            forwarded unchanged through 2+ procedures — a
                            copy-of-copy chain across call bindings.
dead-copy                   (framework copyprop client) formals provably
                            duplicating storage the callee already sees.
lattice-sanitizer           (opt-in) re-solves with descent/chain-depth/
                            monotonicity checking and cross-checks the
                            sparse engine against the dense reference.
==========================  =================================================

Every pass reads the shared :class:`~repro.diagnostics.core.LintContext`;
none of them mutate it. Diagnostic codes are stable: RL0xx framework,
RL1xx call graph / binding, RL2xx jump functions, RL3xx lattice.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.engine import entry_keys
from repro.core.solver import solve, solve_dense
from repro.diagnostics.core import (
    Diagnostic,
    LintContext,
    LintPass,
    Registry,
    Severity,
    describe_code,
)
from repro.diagnostics.sanitizer import LatticeSanitizer, cross_check
from repro.frontend.astnodes import Type
from repro.ir.instructions import ArgumentKind, Call
from repro.ir.lower import operand_type
from repro.ir.validate import collect_problems

CODE_IR = describe_code("RL001", "IR well-formedness invariant violated")
CODE_SSA = describe_code("RL002", "SSA-form invariant violated")
CODE_UNKNOWN_CALLEE = describe_code("RL101", "call to unknown procedure")
CODE_ARITY = describe_code("RL102", "call-site arity mismatch")
CODE_SHAPE = describe_code("RL103", "array/scalar shape mismatch at call")
CODE_TYPE = describe_code("RL104", "argument type mismatch at call")
CODE_VALUE_TYPE = describe_code(
    "RL105", "by-value argument converted across types at call"
)
CODE_ALIAS_FORMALS = describe_code(
    "RL111", "aliased actuals: one variable bound to two formals, one modified"
)
CODE_ALIAS_GLOBAL = describe_code(
    "RL112", "global passed as actual while the callee touches it via COMMON"
)
CODE_COPY_CHAIN = describe_code(
    "RL130", "entry value copied unchanged through a chain of procedures"
)
CODE_DEAD_COPY = describe_code(
    "RL131", "formal is a redundant cross-procedure copy of visible storage"
)
CODE_DEAD_FORMAL = describe_code("RL121", "formal parameter never referenced")
CODE_UNREF_GLOBAL = describe_code("RL122", "global never referenced")
CODE_UNREACHABLE = describe_code("RL123", "procedure unreachable from main")
CODE_JF_SITE = describe_code("RL201", "jump function for unknown procedure")
CODE_JF_KEY = describe_code("RL202", "jump function binds unknown entry key")
CODE_JF_SUPPORT = describe_code(
    "RL203", "jump-function support key missing from caller's entry set"
)
CODE_JF_RESIDUAL = describe_code(
    "RL204", "constant-folded jump function carries a residual expression"
)


class IRWellFormedPass(LintPass):
    """Wraps :mod:`repro.ir.validate` over every procedure, twice: the
    lowered (pre-SSA) CFGs and the SSA forms stage 2 built."""

    name = "ir-wellformed"
    code = "RL00x"
    description = "IR and SSA well-formedness invariants"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        source = ctx.source or None
        for name in sorted(ctx.lowered.procedures):
            cfg = ctx.lowered.procedures[name].cfg
            for problem in collect_problems(cfg, ssa_form=False, source=source):
                yield self.diagnostic(
                    CODE_IR, Severity.ERROR, problem, procedure=name
                )
        for name in sorted(ctx.forward.ssas):
            ssa = ctx.forward.ssas[name]
            for problem in collect_problems(ssa.cfg, ssa_form=True, source=source):
                yield self.diagnostic(
                    CODE_SSA, Severity.ERROR, problem, procedure=name
                )


def _argument_type(arg) -> Type | None:
    """Static type of an actual parameter (None when untyped/unknown)."""
    if arg.symbol is not None:
        return arg.symbol.type
    if arg.value is not None:
        return operand_type(arg.value)
    return None


class CallBindingPass(LintPass):
    """Arity, shape, and type agreement between actuals and formals.

    The resolver rejects arity mismatches in parsed programs, so RL101/
    RL102 guard programmatically-built IR; the type checks are new — the
    front end never compares actual and formal types, and FORTRAN's
    call-by-reference passes raw storage, so an INTEGER cell read as
    LOGICAL (or REAL) is silent corruption.
    """

    name = "call-binding"
    code = "RL10x"
    description = "call-site arity, shape, and type agreement"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        lowered = ctx.lowered
        for site_id in sorted(lowered.call_sites):
            caller, call = lowered.call_sites[site_id]
            callee = lowered.procedures.get(call.callee)
            if callee is None:
                yield self.diagnostic(
                    CODE_UNKNOWN_CALLEE,
                    Severity.ERROR,
                    f"call to unknown procedure {call.callee!r}",
                    procedure=caller,
                    span=call.span,
                )
                continue
            formals = callee.procedure.formals
            if len(call.args) != len(formals):
                yield self.diagnostic(
                    CODE_ARITY,
                    Severity.ERROR,
                    f"{call.callee!r} expects {len(formals)} argument(s), "
                    f"call passes {len(call.args)}",
                    procedure=caller,
                    span=call.span,
                )
                continue
            for formal, arg in zip(formals, call.args):
                yield from self._check_binding(caller, call, formal, arg)

    def _check_binding(self, caller, call, formal, arg) -> Iterator[Diagnostic]:
        where = f"argument for formal {formal.name!r} of {call.callee!r}"
        if formal.is_array and arg.kind is ArgumentKind.VALUE:
            yield self.diagnostic(
                CODE_SHAPE,
                Severity.ERROR,
                f"{where} is a scalar expression but the formal is an array",
                procedure=caller,
                span=arg.span,
            )
            return
        if formal.is_array and arg.kind is ArgumentKind.VAR:
            yield self.diagnostic(
                CODE_SHAPE,
                Severity.ERROR,
                f"{where} is a scalar variable but the formal is an array",
                procedure=caller,
                span=arg.span,
            )
            return
        if not formal.is_array and arg.kind is ArgumentKind.ARRAY:
            yield self.diagnostic(
                CODE_SHAPE,
                Severity.ERROR,
                f"{where} passes a whole array to a scalar formal",
                procedure=caller,
                span=arg.span,
            )
            return
        actual_type = _argument_type(arg)
        if actual_type is None or actual_type is formal.type:
            return
        if arg.kind is ArgumentKind.VALUE:
            # A by-value INTEGER/REAL actual is converted into a fresh
            # cell; legal FORTRAN, but LOGICAL never converts.
            severity = (
                Severity.ERROR
                if Type.LOGICAL in (actual_type, formal.type)
                else Severity.WARNING
            )
            yield self.diagnostic(
                CODE_VALUE_TYPE,
                severity,
                f"{where} has type {actual_type.value}, formal is "
                f"{formal.type.value} (converted copy)",
                procedure=caller,
                span=arg.span,
            )
            return
        yield self.diagnostic(
            CODE_TYPE,
            Severity.ERROR,
            f"{where} binds {actual_type.value} storage by reference to a "
            f"{formal.type.value} formal",
            procedure=caller,
            span=arg.span,
        )


#: by-reference argument kinds: the callee can write through these.
_BYREF = (ArgumentKind.VAR, ArgumentKind.ARRAY, ArgumentKind.ARRAY_ELEMENT)


class ParamAliasingPass(LintPass):
    """The paper's §4 FORTRAN caveat: the standard forbids a callee from
    assigning to a formal whose actual is aliased — to another formal, or
    to COMMON storage the callee can reach directly. Jump functions (and
    MOD-driven kills) assume the program obeys that rule; these warnings
    flag call sites where it does not."""

    name = "param-aliasing"
    code = "RL11x"
    description = "FORTRAN parameter-aliasing hazards at call sites"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        lowered = ctx.lowered
        modref = ctx.modref
        for site_id in sorted(lowered.call_sites):
            caller, call = lowered.call_sites[site_id]
            callee = lowered.procedures.get(call.callee)
            if callee is None:
                continue  # call-binding reports this
            formals = callee.procedure.formals
            mod = modref.mod_formals.get(call.callee, set())
            ref = modref.ref_formals.get(call.callee, set())
            byref = [
                (formal, arg)
                for formal, arg in zip(formals, call.args)
                if arg.kind in _BYREF and arg.symbol is not None
            ]
            yield from self._formal_formal(caller, call, byref, mod)
            yield from self._formal_global(caller, call, byref, mod, ref, modref)

    def _formal_formal(self, caller, call, byref, mod) -> Iterator[Diagnostic]:
        for i, (formal_a, arg_a) in enumerate(byref):
            for formal_b, arg_b in byref[i + 1:]:
                if arg_a.symbol is not arg_b.symbol:
                    continue
                if formal_a.name not in mod and formal_b.name not in mod:
                    continue
                modified = formal_a.name if formal_a.name in mod else formal_b.name
                yield self.diagnostic(
                    CODE_ALIAS_FORMALS,
                    Severity.WARNING,
                    f"{arg_a.symbol.name!r} is bound to both "
                    f"{formal_a.name!r} and {formal_b.name!r} of "
                    f"{call.callee!r}, and {call.callee!r} modifies "
                    f"{modified!r} (FORTRAN aliasing rule violation)",
                    procedure=caller,
                    span=arg_b.span,
                )

    def _formal_global(
        self, caller, call, byref, mod, ref, modref
    ) -> Iterator[Diagnostic]:
        callee_mod_g = modref.mod_globals.get(call.callee, set())
        callee_ref_g = modref.ref_globals.get(call.callee, set())
        for formal, arg in byref:
            symbol = arg.symbol
            if not symbol.is_global:
                continue
            gid = symbol.global_id
            formal_written = formal.name in mod
            formal_touched = formal_written or formal.name in ref
            global_written = gid in callee_mod_g
            global_touched = global_written or gid in callee_ref_g
            if (formal_written and global_touched) or (
                global_written and formal_touched
            ):
                yield self.diagnostic(
                    CODE_ALIAS_GLOBAL,
                    Severity.WARNING,
                    f"global {symbol.name!r} ({gid}) is passed for formal "
                    f"{formal.name!r} of {call.callee!r}, which also "
                    f"accesses it through COMMON and writes one of the "
                    f"aliases (FORTRAN aliasing rule violation)",
                    procedure=caller,
                    span=arg.span,
                )


class DeadFormalPass(LintPass):
    """Formals the callee never reads or writes, derived from MOD/REF.

    A dead formal is not a correctness bug, but it widens every call
    site's jump-function table for nothing — and in the paper's setting
    each extra formal is an extra binding every configuration pays for.
    """

    name = "dead-formal"
    code = "RL121"
    description = "formal parameters no path references"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        modref = ctx.modref
        for name in sorted(ctx.lowered.procedures):
            proc = ctx.lowered.procedures[name].procedure
            if proc.is_main:
                continue
            mod = modref.mod_formals.get(name, set())
            ref = modref.ref_formals.get(name, set())
            for formal in proc.formals:
                if formal.name in mod or formal.name in ref:
                    continue
                span = formal.decl_span
                if span.start.offset == span.end.offset:
                    span = proc.ast.span
                yield self.diagnostic(
                    CODE_DEAD_FORMAL,
                    Severity.WARNING,
                    f"formal {formal.name!r} of {name!r} is never referenced",
                    procedure=name,
                    span=span,
                )


class UnreferencedGlobalPass(LintPass):
    """COMMON members (and SAVEd locals) no procedure reads or writes."""

    name = "unreferenced-global"
    code = "RL122"
    description = "globals never referenced by any procedure"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        modref = ctx.modref
        touched = set()
        for per_proc in (modref.mod_globals, modref.ref_globals):
            for gids in per_proc.values():
                touched.update(gids)
        for gid in sorted(ctx.program.globals, key=str):
            if gid in touched:
                continue
            gvar = ctx.program.globals[gid]
            yield self.diagnostic(
                CODE_UNREF_GLOBAL,
                Severity.WARNING,
                f"global {gvar.display!r} ({gid}) is declared but never "
                f"referenced",
            )


class UnreachableProcedurePass(LintPass):
    """Procedures the call graph never reaches from the main program.

    The solver leaves them at ⊤ ("never called", paper §2), so any
    CONSTANTS facts about them are vacuous — worth flagging before
    anyone reads meaning into those numbers.
    """

    name = "unreachable-procedure"
    code = "RL123"
    description = "procedures unreachable from the main program"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        reachable = ctx.graph.reachable_from_main()
        for name in sorted(ctx.lowered.procedures):
            if name in reachable:
                continue
            proc = ctx.lowered.procedures[name].procedure
            yield self.diagnostic(
                CODE_UNREACHABLE,
                Severity.WARNING,
                f"procedure {name!r} is never called from the main program",
                procedure=name,
                span=proc.ast.span,
            )


class JumpFunctionPass(LintPass):
    """Well-formedness of the stage-2 jump-function tables.

    Violations here cannot come from the shipped builder (the tests
    assert that); the pass exists for hand-assembled tables and future
    builders: every finding is a direct soundness threat to stage 3.
    """

    name = "jump-function-wf"
    code = "RL20x"
    description = "jump-function table well-formedness"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        keys_of = entry_keys(ctx.lowered)
        for site_id in sorted(ctx.forward.sites):
            site = ctx.forward.sites[site_id]
            span = self._site_span(ctx, site_id)
            if site.caller not in keys_of or site.callee not in keys_of:
                missing = site.caller if site.caller not in keys_of else site.callee
                yield self.diagnostic(
                    CODE_JF_SITE,
                    Severity.ERROR,
                    f"site {site_id} names unknown procedure {missing!r}",
                    procedure=site.caller,
                    span=span,
                )
                continue
            callee_keys = set(keys_of[site.callee])
            caller_keys = set(keys_of[site.caller])
            for key, function in site.all_functions():
                if key not in callee_keys:
                    yield self.diagnostic(
                        CODE_JF_KEY,
                        Severity.ERROR,
                        f"site {site_id} binds entry key {key!r} that "
                        f"{site.callee!r} does not propagate",
                        procedure=site.caller,
                        span=span,
                    )
                support = function.support
                for support_key in sorted(support, key=str):
                    if support_key not in caller_keys:
                        yield self.diagnostic(
                            CODE_JF_SUPPORT,
                            Severity.ERROR,
                            f"site {site_id} jump function for {key!r} reads "
                            f"{support_key!r}, which is not an entry key of "
                            f"caller {site.caller!r}",
                            procedure=site.caller,
                            span=span,
                        )
                if (
                    function.expr.is_constant or function.expr.is_bottom
                ) and support:
                    yield self.diagnostic(
                        CODE_JF_RESIDUAL,
                        Severity.ERROR,
                        f"site {site_id} jump function for {key!r} folded to "
                        f"{function.expr} but still carries support "
                        f"{sorted(map(str, support))}",
                        procedure=site.caller,
                        span=span,
                    )

    @staticmethod
    def _site_span(ctx: LintContext, site_id: int):
        entry = ctx.lowered.call_sites.get(site_id)
        if entry is None:
            return None
        _, call = entry
        return call.span


def _copyprop_solution(ctx: LintContext):
    """The interprocedural copy-propagation fixpoint for the linted
    program, solved through the generic framework engine once per
    stage-2 output and shared by every copy-backed pass (cached on the
    forward functions, the object whose identity tracks the stage-2
    artifacts)."""
    from repro.framework.clients.copyprop import CopyPropClient
    from repro.framework.engine import solve_client

    forward = ctx.forward
    cached = getattr(forward, "_lint_copyprop_solution", None)
    if cached is not None:
        return cached
    solution = solve_client(ctx.lowered, ctx.graph, CopyPropClient(forward))
    try:
        forward._lint_copyprop_solution = solution
    except AttributeError:
        pass
    return solution


def _display_key(ctx: LintContext, key) -> str:
    return key if isinstance(key, str) else ctx.program.global_display(key)


class CopyChainPass(LintPass):
    """Interprocedural copy-of-copy chains, from the framework copyprop
    client: one main-program entry value arriving *unchanged* in two or
    more procedures means every call binding along the way merely
    forwarded it — a chain of copies no single-procedure analysis can
    see. Informational: chains are legitimate (threading a config value
    through a pipeline), but each hop is a binding every configuration
    pays jump-function work for, and a chain is where cloning or
    globalizing the value would collapse the most edges."""

    name = "copy-chain"
    code = "RL130"
    description = "entry values forwarded unchanged through call chains"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.framework.clients.copyprop import CopyOf

        solution = _copyprop_solution(ctx)
        main = ctx.lowered.program.main
        holders: dict[object, list[tuple[str, object]]] = {}
        for proc in sorted(solution.val):
            if proc == main:
                continue  # the root itself is not a hop
            for key, value in solution.val[proc].items():
                if value.__class__ is CopyOf:
                    holders.setdefault(value, []).append((proc, key))
        for root in sorted(holders, key=lambda r: (r.proc, str(r.key))):
            chain = holders[root]
            if len(chain) < 2:
                continue  # one hop is a plain binding, not a chain
            hops = ", ".join(
                f"{proc}:{_display_key(ctx, key)}"
                for proc, key in sorted(
                    chain, key=lambda item: (item[0], str(item[1]))
                )
            )
            yield self.diagnostic(
                CODE_COPY_CHAIN,
                Severity.INFO,
                f"value of {root.proc}::{_display_key(ctx, root.key)} is "
                f"copied unchanged into {len(chain)} entry keys across "
                f"the call graph ({hops})",
                procedure=root.proc,
            )


class DeadCopyPass(LintPass):
    """Dead cross-procedure copies: a formal that provably always holds
    the same value as storage the procedure can already see — a global
    with the identical copy fact at entry, or another formal of the
    same procedure. Every caller then passes a value the callee could
    have read directly; the parameter is a redundant copy that widens
    each call site's binding table for nothing (same cost argument as
    RL121 dead formals, but requiring the interprocedural copy
    fixpoint to establish the redundancy)."""

    name = "dead-copy"
    code = "RL131"
    description = "formals duplicating visible storage at every call"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.framework.clients.copyprop import CopyOf

        solution = _copyprop_solution(ctx)
        main = ctx.lowered.program.main
        for proc in sorted(solution.val):
            if proc == main:
                continue
            env = solution.val[proc]
            formals = [
                name
                for name in ctx.lowered.procedures[proc].procedure.formals
                if name.name in env
            ]
            for formal in formals:
                value = env[formal.name]
                if value.__class__ is not CopyOf:
                    continue
                twins = sorted(
                    (
                        _display_key(ctx, key)
                        for key, other in env.items()
                        if key != formal.name and other == value
                    ),
                )
                if not twins:
                    continue
                span = formal.decl_span
                if span.start.offset == span.end.offset:
                    span = ctx.lowered.procedures[proc].procedure.ast.span
                yield self.diagnostic(
                    CODE_DEAD_COPY,
                    Severity.WARNING,
                    f"formal {formal.name!r} of {proc!r} always holds the "
                    f"same value as {', '.join(repr(t) for t in twins)} "
                    f"(all copies of "
                    f"{value.proc}::{_display_key(ctx, value.key)}); the "
                    f"parameter is a redundant cross-procedure copy",
                    procedure=proc,
                    span=span,
                )


class LatticeSanitizerPass(LintPass):
    """Opt-in (``repro lint --sanitize``): re-solves the program with the
    :class:`~repro.diagnostics.sanitizer.LatticeSanitizer` attached, then
    cross-checks the sparse fixpoint against the dense reference solver.
    Costs two extra solves, which is why it is not on by default."""

    name = "lattice-sanitizer"
    code = "RL30x"
    description = "monotone-descent, chain-depth, and sparse/dense checks"
    default_enabled = False

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        sanitizer = LatticeSanitizer()
        sparse = solve(ctx.lowered, ctx.graph, ctx.forward, sanitizer=sanitizer)
        yield from sanitizer.diagnostics(self.name)
        dense = solve_dense(ctx.lowered, ctx.graph, ctx.forward)
        for violation in cross_check(sparse.val, dense.val):
            yield violation.diagnostic(self.name)


_DEFAULT_REGISTRY: Registry | None = None


def all_passes() -> list[LintPass]:
    """Fresh instances of every shipped pass, in run order."""
    return [
        IRWellFormedPass(),
        CallBindingPass(),
        ParamAliasingPass(),
        DeadFormalPass(),
        UnreferencedGlobalPass(),
        UnreachableProcedurePass(),
        JumpFunctionPass(),
        CopyChainPass(),
        DeadCopyPass(),
        LatticeSanitizerPass(),
    ]


def default_registry() -> Registry:
    """The process-wide registry holding every shipped pass."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        registry = Registry()
        for pass_ in all_passes():
            registry.register(pass_)
        _DEFAULT_REGISTRY = registry
    return _DEFAULT_REGISTRY
