"""Pluggable static diagnostics over the whole analysis pipeline.

``repro lint`` front end lives in :mod:`repro.cli`; this package holds
the framework (:mod:`.core`), the shipped checkers (:mod:`.passes`), the
lattice sanitizer the engine hooks call (:mod:`.sanitizer`), and the
text/JSON/SARIF renderers (:mod:`.emit`).
"""

from repro.diagnostics.core import (
    CODE_DESCRIPTIONS,
    Diagnostic,
    LintContext,
    LintPass,
    LintReport,
    Pass,
    Registry,
    Severity,
    describe_code,
    run_passes,
)
from repro.diagnostics.emit import EMITTERS, emit_json, emit_sarif, emit_text
from repro.diagnostics.passes import all_passes, default_registry
from repro.diagnostics.sanitizer import (
    MAX_CHAIN_DEPTH,
    LatticeSanitizer,
    LatticeViolation,
    cross_check,
)

__all__ = [
    "CODE_DESCRIPTIONS",
    "Diagnostic",
    "EMITTERS",
    "LatticeSanitizer",
    "LatticeViolation",
    "LintContext",
    "LintPass",
    "LintReport",
    "MAX_CHAIN_DEPTH",
    "Pass",
    "Registry",
    "Severity",
    "all_passes",
    "cross_check",
    "default_registry",
    "describe_code",
    "emit_json",
    "emit_sarif",
    "emit_text",
    "run_passes",
]
