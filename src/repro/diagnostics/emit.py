"""Render a :class:`~repro.diagnostics.core.LintReport` for humans,
scripts, and editors.

Three formats, one report type:

- :func:`emit_text` — one finding per line, ``path:line:col: severity
  CODE [pass] message``, plus a summary line; for terminals.
- :func:`emit_json` — a versioned, stable-key-order document; for CI
  gates (``jq '.summary.error'``).
- :func:`emit_sarif` — SARIF 2.1.0, the static-analysis interchange
  format GitHub code scanning and most editors ingest; rule metadata is
  published from the registered code descriptions.

All three are deterministic: the report is expected to be pre-sorted
(``run_passes`` and ``LintReport.merged`` both guarantee that), and the
emitters add no timestamps or environment-dependent fields.
"""

from __future__ import annotations

import json

from repro import __version__
from repro.diagnostics.core import CODE_DESCRIPTIONS, LintReport, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Severity -> SARIF result level. SARIF has no "info" level; "note" is
#: its informational tier.
_SARIF_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def emit_text(report: LintReport) -> str:
    """Human-readable listing with a trailing summary line."""
    lines = [diag.format_text() for diag in report.diagnostics]
    counts = report.counts()
    lines.append(
        f"{len(report.diagnostics)} finding(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines) + "\n"


def emit_json(report: LintReport) -> str:
    """Versioned JSON document: diagnostics plus severity summary."""
    payload = {
        "version": 1,
        "diagnostics": [diag.to_dict() for diag in report.diagnostics],
        "summary": report.counts(),
        "passes": list(report.passes_run),
    }
    return json.dumps(payload, indent=2) + "\n"


def emit_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log with one run and rule metadata per code."""
    codes = sorted({diag.code for diag in report.diagnostics})
    rule_index = {code: i for i, code in enumerate(codes)}
    rules = [
        {
            "id": code,
            "shortDescription": {
                "text": CODE_DESCRIPTIONS.get(code, code)
            },
        }
        for code in codes
    ]
    results = []
    for diag in report.diagnostics:
        result: dict = {
            "ruleId": diag.code,
            "ruleIndex": rule_index[diag.code],
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
        }
        if diag.path is not None or diag.span is not None:
            physical: dict = {}
            if diag.path is not None:
                physical["artifactLocation"] = {"uri": diag.path}
            if diag.span is not None:
                physical["region"] = {
                    "startLine": diag.span.start.line,
                    "startColumn": diag.span.start.column,
                    "endLine": diag.span.end.line,
                    "endColumn": diag.span.end.column,
                }
            result["locations"] = [{"physicalLocation": physical}]
        if diag.procedure is not None:
            result["properties"] = {"procedure": diag.procedure}
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "informationUri": (
                            "https://github.com/paper-repro/"
                            "interprocedural-constant-propagation"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


#: format name -> emitter, as the CLI exposes them.
EMITTERS = {
    "text": emit_text,
    "json": emit_json,
    "sarif": emit_sarif,
}
