"""The lattice sanitizer: monotone-descent checking for the solvers.

The correctness of interprocedural propagation rests on three lattice
facts (paper §2, §3.1.5):

1. **Descent** — a binding's VAL entry may only move down the lattice
   (⊤ → constant → ⊥); a rise means a broken meet or a kill applied out
   of order.
2. **Bounded chains** — each binding strictly lowers at most twice, which
   is what bounds the number of propagation passes.
3. **Monotone transfers** — as the caller environment descends, repeated
   evaluations of one jump-function binding must descend too; a rise
   means the jump function is not a monotone transfer and the fixpoint
   (and its uniqueness) is forfeit.

A :class:`LatticeSanitizer` is handed to
:func:`repro.core.solver.solve` (or a :class:`~repro.core.engine.DeltaEngine`
directly); the engine calls :meth:`observe_transfer` for every
evaluate-and-meet and :meth:`observe_update` for every VAL mutation,
including seed-time kills. Violations are *recorded*, never raised — a
broken transfer still solves to ⊥ via the meet, and the caller decides
what to do with the report (the lint pass turns each violation into a
:class:`~repro.diagnostics.core.Diagnostic`).

:func:`cross_check` implements the fourth guarantee — the sparse
delta-driven engine and the dense reference solver reach the same
fixpoint — by diffing two VAL maps binding by binding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lattice import LatticeValue, meet
from repro.diagnostics.core import Diagnostic, Severity, describe_code

#: The lattice's bounded chain depth: ⊤ → constant → ⊥ is two lowerings.
MAX_CHAIN_DEPTH = 2

CODE_NON_MONOTONE = describe_code(
    "RL301", "jump-function binding evaluated to a rising value sequence"
)
CODE_VALUE_RISE = describe_code(
    "RL302", "a VAL binding moved up the lattice"
)
CODE_CHAIN_DEPTH = describe_code(
    "RL303", "a VAL binding lowered more often than the lattice depth allows"
)
CODE_SPARSE_DENSE = describe_code(
    "RL304", "sparse and dense solvers disagree on a VAL binding"
)

_ABSENT = object()


def _same_value(a: LatticeValue, b: LatticeValue) -> bool:
    """Lattice equality; the class check keeps .true. distinct from 1."""
    return a == b and isinstance(a, bool) == isinstance(b, bool)


def _descends(old: LatticeValue, new: LatticeValue) -> bool:
    """True when ``new`` ⊑ ``old`` (meet(old, new) == new)."""
    return _same_value(meet(old, new), new)


@dataclass(frozen=True)
class LatticeViolation:
    """One observed breach of a lattice invariant."""

    kind: str  # "non-monotone-transfer" | "value-rise" | "chain-depth" | "sparse-dense-divergence"
    code: str
    procedure: str
    key: object
    detail: str
    site_id: int | None = None

    def __str__(self) -> str:
        where = f"site {self.site_id}, " if self.site_id is not None else ""
        return f"{self.kind}: {where}{self.procedure}[{self.key}]: {self.detail}"

    def diagnostic(self, pass_name: str = "lattice-sanitizer") -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=Severity.ERROR,
            message=str(self),
            pass_name=pass_name,
            procedure=self.procedure,
        )


class LatticeSanitizer:
    """Observes every transfer and VAL update of one solve.

    The engine only pays for the hooks when a sanitizer is attached (one
    ``is not None`` test per edge otherwise), so production solves run at
    full speed and ``repro lint --sanitize`` turns the checking on.
    """

    __slots__ = ("violations", "transfers_observed", "updates_observed",
                 "_last_transfer", "_drops")

    def __init__(self) -> None:
        self.violations: list[LatticeViolation] = []
        self.transfers_observed = 0
        self.updates_observed = 0
        #: (site_id, callee key) -> last value the binding's jump function
        #: evaluated to; re-evaluations must descend.
        self._last_transfer: dict[tuple[int, object], LatticeValue] = {}
        #: (procedure, key) -> strict lowerings seen so far.
        self._drops: dict[tuple[str, object], int] = {}

    # -- engine hooks -------------------------------------------------------

    def observe_transfer(
        self, site_id: int, callee: str, key: object, incoming: LatticeValue
    ) -> None:
        """One evaluate-and-meet of a jump-function binding."""
        self.transfers_observed += 1
        slot = (site_id, key)
        last = self._last_transfer.get(slot, _ABSENT)
        self._last_transfer[slot] = incoming
        if last is not _ABSENT and not _descends(last, incoming):
            self.violations.append(
                LatticeViolation(
                    kind="non-monotone-transfer",
                    code=CODE_NON_MONOTONE,
                    procedure=callee,
                    key=key,
                    detail=(
                        f"jump function evaluated to {last!r} then rose to "
                        f"{incoming!r} as the caller environment descended"
                    ),
                    site_id=site_id,
                )
            )

    def observe_update(
        self, proc: str, key: object, old: LatticeValue, new: LatticeValue
    ) -> None:
        """One VAL mutation (meet result or seed-time kill)."""
        self.updates_observed += 1
        if not _descends(old, new):
            self.violations.append(
                LatticeViolation(
                    kind="value-rise",
                    code=CODE_VALUE_RISE,
                    procedure=proc,
                    key=key,
                    detail=f"VAL rose from {old!r} to {new!r}",
                )
            )
            return
        if _same_value(old, new):
            return
        slot = (proc, key)
        drops = self._drops.get(slot, 0) + 1
        self._drops[slot] = drops
        if drops > MAX_CHAIN_DEPTH:
            self.violations.append(
                LatticeViolation(
                    kind="chain-depth",
                    code=CODE_CHAIN_DEPTH,
                    procedure=proc,
                    key=key,
                    detail=(
                        f"binding lowered {drops} times "
                        f"(lattice depth allows {MAX_CHAIN_DEPTH}); "
                        f"last step {old!r} -> {new!r}"
                    ),
                )
            )

    # -- reporting ----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.violations

    def diagnostics(
        self, pass_name: str = "lattice-sanitizer"
    ) -> list[Diagnostic]:
        return [v.diagnostic(pass_name) for v in self.violations]


def cross_check(
    sparse_val: dict[str, dict],
    dense_val: dict[str, dict],
) -> list[LatticeViolation]:
    """Diff two solvers' VAL maps binding by binding.

    Any divergence means one engine skipped (or double-applied) a meet;
    both directions are reported, keyed by procedure and entry key.
    """
    violations: list[LatticeViolation] = []
    for proc in sorted(set(sparse_val) | set(dense_val), key=str):
        sparse_env = sparse_val.get(proc, {})
        dense_env = dense_val.get(proc, {})
        for key in sorted(set(sparse_env) | set(dense_env), key=str):
            sparse_value = sparse_env.get(key, _ABSENT)
            dense_value = dense_env.get(key, _ABSENT)
            if sparse_value is _ABSENT or dense_value is _ABSENT:
                detail = (
                    "binding missing from "
                    + ("sparse" if sparse_value is _ABSENT else "dense")
                    + " VAL"
                )
            elif _same_value(sparse_value, dense_value):
                continue
            else:
                detail = (
                    f"sparse solved {sparse_value!r}, "
                    f"dense reference solved {dense_value!r}"
                )
            violations.append(
                LatticeViolation(
                    kind="sparse-dense-divergence",
                    code=CODE_SPARSE_DENSE,
                    procedure=str(proc),
                    key=key,
                    detail=detail,
                )
            )
    return violations
