"""JSONL checkpoint journal for interruptible sweeps.

One line per event, append-only, so a sweep killed at any instant loses
at most the line being written. On resume the executor replays the
journal and skips every completed (program, configuration) cell.

Layout::

    {"kind": "header", "schema": 1, "fingerprint": "..."}
    {"kind": "cell", "program": "trfd", "config": "polynomial", "summary": {...}}
    {"kind": "failure", "program": "bad", "config": "literal", ...}

The header fingerprint hashes the program sources and the configuration
reprs: resuming against different inputs silently restarting from zero is
correct, resuming stale cells would not be — a mismatched journal is
truncated, never trusted. A torn final line (the crash case) is ignored;
failure lines are informational and always re-attempted on resume.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Mapping

from repro.core.driver import SweepSummary
from repro.resilience.errors import FailureRecord

SCHEMA = 1


def sweep_fingerprint(sources: Mapping[str, str], configs: Mapping) -> str:
    """Identity of one sweep: every program text and configuration."""
    digest = hashlib.sha256()
    for name in sorted(sources):
        digest.update(name.encode())
        digest.update(hashlib.sha256(sources[name].encode()).digest())
    for name in sorted(configs):
        digest.update(name.encode())
        digest.update(repr(configs[name]).encode())
    return digest.hexdigest()


def summary_to_json(summary: SweepSummary) -> dict:
    return {
        "constants_found": summary.constants_found,
        "references_substituted": summary.references_substituted,
        "constants": summary.constants,
        "timings": summary.timings,
        "solver_counters": summary.solver_counters,
        "degradations": list(summary.degradations),
        "cache_counters": summary.cache_counters,
    }


def summary_from_json(payload: dict) -> SweepSummary:
    return SweepSummary(
        constants_found=payload["constants_found"],
        references_substituted=payload["references_substituted"],
        constants=payload["constants"],
        timings=payload["timings"],
        solver_counters=payload["solver_counters"],
        degradations=tuple(payload.get("degradations", ())),
        cache_counters=payload.get("cache_counters", {}),
    )


class SweepJournal:
    """Append-only recorder of completed cells and observed failures."""

    def __init__(self, path: str):
        self.path = path

    # -- reading --------------------------------------------------------------

    def load(self, fingerprint: str) -> dict[tuple[str, str], SweepSummary]:
        """Completed cells from a prior run of the *same* sweep.

        A missing journal, a foreign fingerprint, or an unreadable header
        all start fresh (the file is truncated and re-headed). Torn or
        malformed lines are skipped — every cell parsed before them still
        counts.
        """
        if not os.path.exists(self.path):
            self._write_header(fingerprint)
            return {}
        cells: dict[tuple[str, str], SweepSummary] = {}
        header_ok = False
        with open(self.path) as handle:
            for line_no, line in enumerate(handle):
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn write: ignore, keep earlier cells
                if line_no == 0:
                    header_ok = (
                        event.get("kind") == "header"
                        and event.get("schema") == SCHEMA
                        and event.get("fingerprint") == fingerprint
                    )
                    if not header_ok:
                        break
                    continue
                if event.get("kind") != "cell":
                    continue
                try:
                    summary = summary_from_json(event["summary"])
                except (KeyError, TypeError):
                    continue
                cells[(event["program"], event["config"])] = summary
        if not header_ok:
            self._write_header(fingerprint)
            return {}
        return cells

    # -- writing --------------------------------------------------------------

    def _write_header(self, fingerprint: str) -> None:
        with open(self.path, "w") as handle:
            handle.write(
                json.dumps(
                    {"kind": "header", "schema": SCHEMA,
                     "fingerprint": fingerprint}
                )
                + "\n"
            )

    def _append(self, event: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(event) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def record_cell(self, program: str, config: str, summary: SweepSummary) -> None:
        self._append(
            {
                "kind": "cell",
                "program": program,
                "config": config,
                "summary": summary_to_json(summary),
            }
        )

    def record_failure(self, record: FailureRecord) -> None:
        self._append({"kind": "failure", **record.to_json()})
