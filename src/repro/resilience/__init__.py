"""Fault-tolerant execution: error taxonomy, resource budgets, the
hardened sweep executor, checkpoint journal, and the chaos harness.

See DESIGN.md §7 ("Resilience & budgets") for the architecture: every
failure becomes a typed :class:`FailureRecord`, every budget exhaustion
walks the jump-function degradation ladder instead of dying, and the
chaos harness (:mod:`repro.resilience.chaos`) proves the executor
isolates, retries, quarantines, and resumes — deterministically.

The executor and journal symbols are loaded lazily (PEP 562): they
import :mod:`repro.core.driver`, which itself imports the taxonomy and
budget modules here, so eagerly importing them would cycle.
"""

import importlib

from repro.resilience.budgets import SolveBudget
from repro.resilience.cancel import (
    CancelledError,
    CancelToken,
    cancel_point,
    cancellable_budget,
    install_token,
    uninstall_token,
)
from repro.resilience.chaos import ChaosError, ChaosSpec, ChaosWorkerLoss, Fault
from repro.resilience.errors import (
    BudgetExhaustedError,
    DegradationRecord,
    FailureKind,
    FailureRecord,
    ResilienceError,
    ServiceError,
    Stage,
    classify_exception,
    format_cli_error,
)

#: symbols resolved on first access to break the driver import cycle.
_LAZY = {
    "SweepOutcome": "executor",
    "SweepPolicy": "executor",
    "run_sweep": "executor",
    "SweepJournal": "journal",
    "sweep_fingerprint": "journal",
}

__all__ = [
    "BudgetExhaustedError",
    "CancelToken",
    "CancelledError",
    "ChaosError",
    "ChaosSpec",
    "ChaosWorkerLoss",
    "DegradationRecord",
    "FailureKind",
    "FailureRecord",
    "Fault",
    "ResilienceError",
    "ServiceError",
    "SolveBudget",
    "Stage",
    "cancel_point",
    "cancellable_budget",
    "install_token",
    "uninstall_token",
    "SweepJournal",
    "SweepOutcome",
    "SweepPolicy",
    "classify_exception",
    "format_cli_error",
    "run_sweep",
    "sweep_fingerprint",
]


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f"repro.resilience.{module_name}")
    return getattr(module, name)
