"""Resource budgets for the stage-3 solvers and the delta engine.

A :class:`SolveBudget` caps the three quantities the §3.1.5 cost model
actually charges: monotone worklist sweeps (``passes``), jump-function
``evaluations``, and lattice ``meets``. The solvers check the pass cap on
every worklist pop; the :class:`~repro.core.engine.DeltaEngine` checks
the evaluation/meet fuel once per seed or delta batch — cheap enough to
leave enabled, tight enough that a pathological solve is cut off within
one batch of its limit.

Exhaustion raises :class:`~repro.resilience.errors.BudgetExhaustedError`;
the driver's degradation ladder turns that into a cheaper jump function
(polynomial → pass-through → intraprocedural → literal, then the
intraprocedural-baseline floor) instead of a dead sweep cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resilience.errors import BudgetExhaustedError


@dataclass(frozen=True)
class SolveBudget:
    """Fuel for one stage-3 solve. ``None`` caps are unlimited."""

    max_passes: int | None = None
    max_evaluations: int | None = None
    max_meets: int | None = None

    @classmethod
    def from_config(cls, config) -> "SolveBudget | None":
        """The budget an :class:`~repro.core.config.AnalysisConfig` asks
        for, or ``None`` when the configuration sets no caps (the common
        case — the solvers then skip every check)."""
        if (
            config.max_solver_passes is None
            and config.max_evaluations is None
            and config.max_meets is None
        ):
            return None
        return cls(
            max_passes=config.max_solver_passes,
            max_evaluations=config.max_evaluations,
            max_meets=config.max_meets,
        )

    def check_passes(self, passes: int) -> None:
        """Per-pop check in the worklist loops."""
        if self.max_passes is not None and passes > self.max_passes:
            raise BudgetExhaustedError("passes", self.max_passes, passes)

    def check_engine(self, stats) -> None:
        """Per-batch check inside the delta engine (``stats`` is any
        object with the engine's counter attributes, e.g. a
        :class:`~repro.core.solver.SolveResult`)."""
        if (
            self.max_evaluations is not None
            and stats.evaluations > self.max_evaluations
        ):
            raise BudgetExhaustedError(
                "evaluations", self.max_evaluations, stats.evaluations
            )
        if self.max_meets is not None and stats.meets > self.max_meets:
            raise BudgetExhaustedError("meets", self.max_meets, stats.meets)

    def check_all(self, stats, passes: int) -> None:
        """The dense solver's combined per-pop check."""
        self.check_passes(passes)
        self.check_engine(stats)
