"""Cooperative cancellation for long-running analyses.

The analysis-as-a-service daemon (``repro serve``) runs solves on
transport threads with a per-request deadline. Python threads cannot be
preempted, so cancellation is cooperative: a :class:`CancelToken` is
installed thread-locally around one pipeline run, the driver polls it at
every stage boundary (:func:`cancel_point`, mirroring
:func:`repro.resilience.chaos.chaos_point`), and — because stage
boundaries are too coarse for a pathological solve — the driver also
wraps its :class:`~repro.resilience.budgets.SolveBudget` with
:func:`cancellable_budget`, which piggybacks a deadline check on the
budget hooks the worklist loops already call once per pop/batch.

With no token installed both hooks are a single thread-local attribute
read, so CLI and sweep runs pay nothing. Tokens are thread-local by
design: the daemon's worker threads each cancel exactly their own
request, never a neighbour's.

Expiry raises :class:`CancelledError` (a
:class:`~repro.resilience.errors.ResilienceError`), which the daemon
maps to a typed ``RL554`` response; outside the daemon it surfaces like
any other classified solver error.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.resilience.errors import ResilienceError, Stage


class CancelledError(ResilienceError):
    """A cooperative cancellation fired: the request's deadline passed or
    its client went away. ``reason`` distinguishes the two."""

    stage = Stage.SERVICE

    def __init__(self, reason: str = "deadline"):
        self.reason = reason
        super().__init__(f"request cancelled ({reason})")


class CancelToken:
    """One request's cancellation state: an optional wall-clock deadline
    plus an explicit :meth:`cancel` flag, both polled via :meth:`check`."""

    __slots__ = ("deadline", "_clock", "_cancelled", "_reason")

    def __init__(
        self,
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline = deadline
        self._clock = clock
        self._cancelled = False
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled or (
            self.deadline is not None and self._clock() >= self.deadline
        )

    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` = no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        if self._cancelled:
            raise CancelledError(self._reason)
        if self.deadline is not None and self._clock() >= self.deadline:
            raise CancelledError("deadline")


class _CancellableBudget:
    """A :class:`SolveBudget` duck type that checks the cancel token
    before delegating to the wrapped budget (which may be ``None``).

    Pickling drops the token (threading state does not cross process
    boundaries) and reduces to the wrapped budget, so a parallel region
    solve shipping its budget to pool workers still works — the workers
    simply aren't cancellable, the parent's stage-boundary checks are.
    """

    __slots__ = ("token", "inner")

    def __init__(self, token: CancelToken, inner):
        self.token = token
        self.inner = inner

    def check_passes(self, passes: int) -> None:
        self.token.check()
        if self.inner is not None:
            self.inner.check_passes(passes)

    def check_engine(self, stats) -> None:
        self.token.check()
        if self.inner is not None:
            self.inner.check_engine(stats)

    def check_all(self, stats, passes: int) -> None:
        self.token.check()
        if self.inner is not None:
            self.inner.check_all(stats, passes)

    def __reduce__(self):
        return (_unwrap_budget, (self.inner,))


def _unwrap_budget(inner):
    return inner


_LOCAL = threading.local()


def install_token(token: CancelToken) -> None:
    """Arm ``token`` for the current thread until :func:`uninstall_token`."""
    _LOCAL.token = token


def uninstall_token() -> None:
    _LOCAL.token = None


def active_token() -> CancelToken | None:
    return getattr(_LOCAL, "token", None)


def cancel_point() -> None:
    """The driver's stage-boundary hook. Free when no token is armed."""
    token = getattr(_LOCAL, "token", None)
    if token is not None:
        token.check()


def cancellable_budget(budget):
    """Wrap ``budget`` (possibly ``None``) so the solver's per-pop budget
    checks also poll the active cancel token. Returns ``budget`` unchanged
    when no token is armed — the common, zero-cost case."""
    token = getattr(_LOCAL, "token", None)
    if token is None:
        return budget
    return _CancellableBudget(token, budget)
