"""The structured failure taxonomy of the resilient execution layer.

Every failure a sweep can hit is classified along two axes:

- :class:`Stage` — *where* in the pipeline it happened (frontend /
  lowering / SSA / jump-function build / solve / substitute), recovered
  from the exception's traceback when the raiser did not tag it;
- :class:`FailureKind` — *what* happened (crash, timeout,
  budget-exhausted, worker-lost).

The product of the two becomes a :class:`FailureRecord` — the picklable,
JSON-able object the hardened sweep executor reports instead of letting a
traceback abort eleven healthy programs. Planned quality losses (the
jump-function degradation ladder, the sparse→dense solver fallback) are
the milder :class:`DegradationRecord`; both render as RL5xx diagnostics
through the shared :mod:`repro.diagnostics` vocabulary.

This module is deliberately light on imports (frontend spans and the
diagnostics core only) so the solvers and the engine can raise
:class:`BudgetExhaustedError` without dragging in the executor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.diagnostics.core import Diagnostic, Severity, describe_code
from repro.frontend.errors import FrontendError


class Stage(enum.Enum):
    """Which pipeline stage a failure (or injected fault) belongs to."""

    FRONTEND = "frontend"
    LOWERING = "lowering"
    SSA = "ssa"
    JUMP_FUNCTIONS = "jump-functions"
    SOLVE = "solve"
    SUBSTITUTE = "substitute"
    #: the serving layer around the pipeline (admission, dedup, journal,
    #: breaker) — chaos faults aimed here kill the daemon between
    #: pipeline stages rather than inside one.
    SERVICE = "service"

    def __str__(self) -> str:
        return self.value


class FailureKind(enum.Enum):
    """What went wrong, independent of where."""

    CRASH = "crash"
    TIMEOUT = "timeout"
    BUDGET = "budget-exhausted"
    WORKER_LOST = "worker-lost"

    def __str__(self) -> str:
        return self.value


# -- diagnostic codes ---------------------------------------------------------

CODE_DEGRADED_LADDER = describe_code(
    "RL510", "solver budget exhausted: jump function downgraded one ladder rung"
)
CODE_DEGRADED_DENSE = describe_code(
    "RL511", "sparse solver failed: fell back to the dense reference solver"
)
CODE_DEGRADED_FLOOR = describe_code(
    "RL512", "every ladder rung exhausted its budget: VAL floored to the "
    "intraprocedural baseline"
)
CODE_FAILURE_CRASH = describe_code(
    "RL520", "analysis task crashed at a pipeline stage"
)
CODE_FAILURE_TIMEOUT = describe_code(
    "RL521", "analysis task exceeded its wall-clock budget"
)
CODE_FAILURE_WORKER_LOST = describe_code(
    "RL522", "worker process died while running an analysis task"
)
CODE_FAILURE_BUDGET = describe_code(
    "RL523", "resource budget exhausted with degradation disabled"
)
CODE_QUARANTINED = describe_code(
    "RL524", "program quarantined after repeated failures"
)
CODE_STORE_FALLBACK = describe_code(
    "RL530", "incremental warm-start abandoned: store inconsistency, "
    "fell back to a cold solve"
)
CODE_STORE_RESET = describe_code(
    "RL531", "artifact store reset: unreadable, foreign, or corrupt index"
)
CODE_SLAB_FALLBACK = describe_code(
    "RL532", "persistent slab artifact untrusted (truncated, corrupt, or "
    "version-skewed): rebuilt the slab cold"
)
CODE_PARALLEL_FALLBACK = describe_code(
    "RL540", "parallel region solve failed: fell back to the sequential "
    "schedule"
)
# -- the analysis service's admission / degradation family (RL55x) -----------
CODE_SERVICE_QUEUE_FULL = describe_code(
    "RL550", "service admission queue full: request rejected"
)
CODE_SERVICE_RATE_LIMITED = describe_code(
    "RL551", "tenant token bucket empty: request rejected"
)
CODE_SERVICE_DRAINING = describe_code(
    "RL552", "service draining for shutdown: new requests refused"
)
CODE_SERVICE_BREAKER_OPEN = describe_code(
    "RL553", "circuit breaker open: solver unavailable, request refused"
)
CODE_SERVICE_DEADLINE = describe_code(
    "RL554", "request deadline exceeded: solve cancelled cooperatively"
)
CODE_SERVICE_BAD_REQUEST = describe_code(
    "RL555", "malformed service request rejected"
)
CODE_SERVICE_INTERRUPTED = describe_code(
    "RL556", "request was in flight when the daemon died; refused on "
    "restart per journal policy"
)
CODE_SERVICE_BREAKER_DEGRADED = describe_code(
    "RL557", "circuit breaker tripped: request rerouted through the "
    "degradation ladder"
)

_FAILURE_CODES = {
    FailureKind.CRASH: CODE_FAILURE_CRASH,
    FailureKind.TIMEOUT: CODE_FAILURE_TIMEOUT,
    FailureKind.WORKER_LOST: CODE_FAILURE_WORKER_LOST,
    FailureKind.BUDGET: CODE_FAILURE_BUDGET,
}


# -- exceptions ---------------------------------------------------------------


class ResilienceError(Exception):
    """Base class of the resilience layer's own exceptions. ``stage``
    tags where the raiser was; :func:`classify_exception` trusts it."""

    stage: Stage | None = None


class BudgetExhaustedError(ResilienceError):
    """A solver or the delta engine ran out of fuel.

    ``counter`` names which budget blew (``passes`` / ``evaluations`` /
    ``meets``); ``limit`` and ``observed`` quantify it. The driver's
    degradation ladder catches this and re-solves with a cheaper jump
    function instead of letting it surface.
    """

    stage = Stage.SOLVE

    def __init__(self, counter: str, limit: int, observed: int):
        self.counter = counter
        self.limit = limit
        self.observed = observed
        super().__init__(
            f"solver budget exhausted: {counter} reached {observed} "
            f"(limit {limit})"
        )


class ServiceError(ResilienceError):
    """A typed refusal from the serving layer's admission spine.

    ``code`` is the RL55x diagnostic code, ``kind`` the machine-readable
    discriminator a client switches on (``queue-full`` / ``rate-limited``
    / ``draining`` / ``breaker-open`` / ``deadline`` / ``bad-request`` /
    ``interrupted``). Rendered by :func:`format_cli_error` as
    ``error[service]: RL55x: message`` — the exact line a daemon error
    response carries.
    """

    stage = Stage.SERVICE

    def __init__(self, code: str, kind: str, message: str):
        self.code = code
        self.kind = kind
        super().__init__(message)


# -- classification -----------------------------------------------------------

#: traceback filename fragment -> stage, checked deepest frame first.
_STAGE_MARKERS: tuple[tuple[str, Stage], ...] = (
    ("repro/frontend/", Stage.FRONTEND),
    ("repro/ir/lower", Stage.LOWERING),
    ("repro/ir/", Stage.LOWERING),
    ("repro/callgraph/", Stage.LOWERING),
    ("repro/analysis/ssa", Stage.SSA),
    ("repro/analysis/dominance", Stage.SSA),
    ("repro/core/returns", Stage.JUMP_FUNCTIONS),
    ("repro/core/builder", Stage.JUMP_FUNCTIONS),
    ("repro/core/jump_functions", Stage.JUMP_FUNCTIONS),
    ("repro/analysis/valuenum", Stage.JUMP_FUNCTIONS),
    ("repro/core/solver", Stage.SOLVE),
    ("repro/core/engine", Stage.SOLVE),
    ("repro/core/binding_solver", Stage.SOLVE),
    ("repro/core/substitute", Stage.SUBSTITUTE),
)


def classify_exception(exc: BaseException) -> Stage | None:
    """Map an exception to the pipeline stage it escaped from.

    Exceptions that carry their own ``stage`` attribute (the resilience
    layer's, chaos-injected ones) are trusted; front-end errors are
    front-end by definition; anything else is classified by walking its
    traceback from the deepest frame outward and matching module paths.
    Returns ``None`` when nothing matches (e.g. an executor-level bug).
    """
    tagged = getattr(exc, "stage", None)
    if isinstance(tagged, Stage):
        return tagged
    if isinstance(exc, FrontendError):
        return Stage.FRONTEND
    tb = exc.__traceback__
    frames: list[str] = []
    while tb is not None:
        frames.append(tb.tb_frame.f_code.co_filename.replace("\\", "/"))
        tb = tb.tb_next
    for filename in reversed(frames):
        for marker, stage in _STAGE_MARKERS:
            if marker in filename:
                return stage
    return None


def format_cli_error(exc) -> str:
    """One-line typed rendering for the CLI: ``error[stage]: loc: message``.

    Front-end errors keep their ``line:col`` span; everything else shows
    the classified stage and the exception text. ``--traceback`` restores
    the raw traceback for debugging.

    Also accepts a :class:`FailureRecord` — including one rebuilt by
    :meth:`FailureRecord.from_json`, which has no traceback to classify —
    rendering ``error[stage]: kind: message`` with the record's own
    ``kind`` intact, so a daemon replaying a journaled failure prints the
    same line the CLI printed when it happened live. Service refusals
    (:class:`ServiceError`) render their RL55x code in place of the
    exception type.
    """
    if isinstance(exc, FailureRecord):
        label = exc.stage.value if exc.stage is not None else "internal"
        return f"error[{label}]: {exc.kind.value}: {exc.message}"
    stage = classify_exception(exc)
    label = stage.value if stage is not None else "internal"
    if isinstance(exc, FrontendError):
        location = f"{exc.location}: " if exc.location is not None else ""
        return f"error[{label}]: {location}{exc.message}"
    if isinstance(exc, ServiceError):
        return f"error[{label}]: {exc.code}: {exc}"
    message = str(exc) or type(exc).__name__
    return f"error[{label}]: {type(exc).__name__}: {message}"


# -- records ------------------------------------------------------------------


@dataclass(frozen=True)
class DegradationRecord:
    """One planned quality loss taken to keep a result flowing.

    ``from_label``/``to_label`` name the two rungs (jump-function kinds,
    or ``sparse``/``dense`` for the solver fallback); ``counter`` names
    the budget that forced a ladder step (``None`` for crash fallbacks).
    """

    code: str
    from_label: str
    to_label: str
    counter: str | None = None
    detail: str = ""

    def describe(self) -> str:
        reason = self.counter or "crash"
        return f"{self.code} {self.from_label}->{self.to_label} ({reason})"

    def diagnostic(self, procedure: str | None = None) -> Diagnostic:
        message = (
            f"degraded {self.from_label} -> {self.to_label}"
            + (f" after exhausting {self.counter}" if self.counter else "")
            + (f": {self.detail}" if self.detail else "")
        )
        return Diagnostic(
            code=self.code,
            severity=Severity.WARNING,
            message=message,
            pass_name="resilience",
            procedure=procedure,
        )


@dataclass(frozen=True)
class FailureRecord:
    """One failed (program, configuration) cell of a sweep.

    ``config`` is ``None`` when the whole program task failed before any
    configuration could be attributed (worker loss, timeout, quarantine
    summary records). ``attempt`` is 0-based; ``quarantined`` marks the
    terminal record after the retry budget ran out.
    """

    program: str
    config: str | None
    stage: Stage | None
    kind: FailureKind
    message: str
    attempt: int = 0
    quarantined: bool = False
    elapsed: float | None = None

    @classmethod
    def from_exception(
        cls,
        program: str,
        config: str | None,
        exc: BaseException,
        attempt: int = 0,
        elapsed: float | None = None,
    ) -> "FailureRecord":
        kind = (
            FailureKind.BUDGET
            if isinstance(exc, BudgetExhaustedError)
            else FailureKind.CRASH
        )
        message = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        return cls(
            program=program,
            config=config,
            stage=classify_exception(exc),
            kind=kind,
            message=message,
            attempt=attempt,
            quarantined=False,
            elapsed=elapsed,
        )

    def describe(self) -> str:
        where = self.stage.value if self.stage is not None else "unknown"
        cell = f"{self.program}/{self.config}" if self.config else self.program
        suffix = " [quarantined]" if self.quarantined else ""
        return (
            f"{cell}: {self.kind.value} at {where} "
            f"(attempt {self.attempt}): {self.message}{suffix}"
        )

    def diagnostic(self) -> Diagnostic:
        code = CODE_QUARANTINED if self.quarantined else _FAILURE_CODES[self.kind]
        return Diagnostic(
            code=code,
            severity=Severity.ERROR,
            message=self.describe(),
            pass_name="resilience",
        )

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "config": self.config,
            "stage": self.stage.value if self.stage is not None else None,
            "kind": self.kind.value,
            "message": self.message,
            "attempt": self.attempt,
            "quarantined": self.quarantined,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FailureRecord":
        stage = payload.get("stage")
        return cls(
            program=payload["program"],
            config=payload.get("config"),
            stage=Stage(stage) if stage is not None else None,
            kind=FailureKind(payload["kind"]),
            message=payload.get("message", ""),
            attempt=int(payload.get("attempt", 0)),
            quarantined=bool(payload.get("quarantined", False)),
            elapsed=payload.get("elapsed"),
        )
