"""The fault-tolerant sweep executor.

:func:`run_sweep` replaces the fan-out core of
:func:`repro.core.driver.sweep_programs` with an executor that treats
failure as data:

- every (program, configuration) cell either produces a
  :class:`~repro.core.driver.SweepSummary` or a typed
  :class:`~repro.resilience.errors.FailureRecord` — one crashing
  configuration never takes the program's other cells down, and one
  crashing program never takes the sweep down;
- per-task wall-clock **timeouts** (process mode) turn hung solves into
  ``timeout`` records instead of a hung table regeneration;
- transient worker loss (``BrokenProcessPool``, a chaos ``kill``) is
  **retried with exponential backoff**; after the first loss the
  executor drops to one-task-per-pool isolation so the culprit — not an
  innocent neighbour sharing its pool — accumulates the strikes;
- repeat offenders are **quarantined** after ``max_retries`` retries,
  with a terminal RL524 record, while the remaining programs' rows still
  render;
- an optional JSONL **checkpoint journal**
  (:class:`~repro.resilience.journal.SweepJournal`) persists each
  completed cell as it lands, so an interrupted sweep resumes from the
  completed cells instead of restarting.

Workers additionally report their stage-0 cache hit/miss deltas per cell
(the in-process sweep shares one cache, worker processes each rebuild
their own — the counters now say so truthfully instead of pretending the
parent's cache served everyone).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.core.config import AnalysisConfig
from repro.core.driver import (
    GLOBAL_STAGE0_CACHE,
    SweepSummary,
    analyze,
    summarize,
)
from repro.frontend.symbols import parse_program
from repro.resilience import chaos
from repro.resilience.errors import FailureKind, FailureRecord
from repro.resilience.journal import SweepJournal, sweep_fingerprint

#: monkeypatchable backoff sleep (tests run with zero delay).
_sleep: Callable[[float], None] = time.sleep

#: stage-0 cache counter keys workers report deltas for.
_CACHE_KEYS = ("stage0_cache_hits", "stage0_cache_misses", "stage0_cache_bypasses")


@dataclass(frozen=True)
class SweepPolicy:
    """How hard the executor defends one sweep.

    ``task_timeout`` is per *task* (one program's remaining
    configurations) and only enforceable with worker processes — the
    in-process mode cannot preempt a running solve. ``max_retries``
    bounds re-attempts per program after its first failed one; backoff
    doubles per retry round from ``backoff_base`` up to ``backoff_cap``
    seconds.
    """

    processes: int | None = None
    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    journal_path: str | None = None
    chaos: chaos.ChaosSpec | None = None
    #: directory of a shared :class:`repro.store.artifacts.ArtifactStore`.
    #: Every cell (each worker opens the path itself — stores are not
    #: picklable) runs with ``incremental=True``: it warm-starts from the
    #: last snapshot for its (config, program) and re-publishes, so a
    #: repeated sweep only re-solves what changed between invocations.
    store_path: str | None = None


@dataclass
class SweepOutcome:
    """Everything one resilient sweep produced, including its scars."""

    summaries: dict[str, dict[str, SweepSummary]]
    failures: list[FailureRecord] = field(default_factory=list)
    quarantined: tuple[str, ...] = ()
    #: cells served straight from the journal (resume), vs. run now.
    resumed_cells: int = 0
    executed_cells: int = 0
    #: task re-attempts across all programs.
    retries: int = 0
    #: per-worker stage-0 cache hit/miss deltas, summed across cells.
    cache_counters: dict[str, int] = field(default_factory=dict)
    #: the config names every program was asked to run.
    expected_configs: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Every requested cell produced a summary. A transient failure
        that a retry recovered leaves its record in ``failures`` but
        does not make the sweep incomplete."""
        if self.quarantined:
            return False
        expected = set(self.expected_configs)
        return all(
            expected <= set(cells) for cells in self.summaries.values()
        )

    def failures_for(self, program: str) -> list[FailureRecord]:
        return [f for f in self.failures if f.program == program]

    def degradation_count(self) -> int:
        return sum(
            len(cell.degradations)
            for cells in self.summaries.values()
            for cell in cells.values()
        )


# -- the worker task ----------------------------------------------------------


@dataclass
class _TaskResult:
    program: str
    cells: dict[str, SweepSummary]
    failures: list[FailureRecord]


#: sentinels the batch executors report instead of a _TaskResult.
_LOST = "worker-lost"
_TIMED_OUT = "timed-out"


def _cache_snapshot() -> dict[str, int]:
    counters = GLOBAL_STAGE0_CACHE.counters()
    return {key: counters[key] for key in _CACHE_KEYS}


def _run_task(item) -> _TaskResult:
    """One program through its remaining configurations.

    Runs in a worker process (process mode) or inline (in-process mode).
    Each configuration is guarded separately: a crash becomes a
    :class:`FailureRecord` for that cell and the loop moves on, so a
    program that only dies under ``complete`` mode still fills its other
    columns. Chaos worker-kills are *not* guarded — they must surface as
    worker loss, which is their whole point.
    """
    name, source, config_items, attempt, spec, in_worker, store_path = item
    if spec is not None:
        chaos.install(spec, label=name, attempt=attempt, in_worker=in_worker)
    try:
        store = None
        if store_path is not None:
            from repro.store.artifacts import ArtifactStore

            store = ArtifactStore(store_path)
        cells: dict[str, SweepSummary] = {}
        failures: list[FailureRecord] = []
        try:
            program = parse_program(source)
        except Exception as exc:  # malformed input fails every cell at once
            failures.extend(
                FailureRecord.from_exception(name, config_name, exc, attempt)
                for config_name, _ in config_items
            )
            return _TaskResult(name, cells, failures)
        for config_name, config in config_items:
            before = _cache_snapshot()
            start = time.perf_counter()
            try:
                result = analyze(
                    program, config,
                    store=store, incremental=store is not None,
                )
            except Exception as exc:
                failures.append(
                    FailureRecord.from_exception(
                        name, config_name, exc, attempt,
                        elapsed=time.perf_counter() - start,
                    )
                )
                continue
            after = _cache_snapshot()
            deltas = {key: after[key] - before[key] for key in _CACHE_KEYS}
            cells[config_name] = summarize(result, cache_counters=deltas)
        return _TaskResult(name, cells, failures)
    finally:
        if spec is not None:
            chaos.uninstall()


# -- batch execution ----------------------------------------------------------


def _execute_inline(items: list) -> dict[str, object]:
    """Run tasks in this process. Chaos kills surface as worker loss."""
    results: dict[str, object] = {}
    for item in items:
        name = item[0]
        try:
            results[name] = _run_task(item)
        except chaos.ChaosWorkerLoss:
            results[name] = _LOST
    return results


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill the pool's worker processes instead of abandoning them.

    ``Future.cancel()`` cannot cancel a *running* task and
    ``shutdown(wait=False)`` merely stops feeding the workers — a hung
    solve would keep its process alive (and its CPU busy) long after the
    sweep reported the task timed out. Terminate-then-join, escalating to
    ``kill`` for a worker that ignores SIGTERM.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def _execute_pool(
    items: list, workers: int, timeout: float | None
) -> tuple[dict[str, object], bool]:
    """Run tasks across a fresh process pool.

    Returns (results, pool_broke). Futures that completed before a pool
    breakage keep their results; the rest are reported lost. Timeouts are
    measured against a shared deadline from batch start — every task had
    at least ``timeout`` seconds of wall clock to finish. A batch that
    saw a timeout or a pool breakage terminates its workers on the way
    out: a timed-out task's worker is hung by definition, and neither it
    nor a broken pool's survivors may outlive the batch as orphans.
    """
    pool = ProcessPoolExecutor(max_workers=workers)
    broke = False
    hung = False
    results: dict[str, object] = {}
    try:
        futures = {item[0]: pool.submit(_run_task, item) for item in items}
        deadline = time.monotonic() + timeout if timeout is not None else None
        for name, future in futures.items():
            if broke:
                if future.done() and future.exception() is None:
                    results[name] = future.result()
                else:
                    results[name] = _LOST
                continue
            remaining: float | None = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                results[name] = future.result(timeout=remaining)
            except FutureTimeoutError:
                future.cancel()
                hung = True
                results[name] = _TIMED_OUT
            except BrokenExecutor:
                broke = True
                results[name] = _LOST
            except Exception:
                # the future itself failed (e.g. unpicklable payload):
                # report as loss so the retry/quarantine path owns it
                results[name] = _LOST
    finally:
        if hung or broke:
            _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
    return results, broke


# -- the driver loop ----------------------------------------------------------


def run_sweep(
    sources: Mapping[str, str],
    configs: Mapping[str, AnalysisConfig],
    policy: SweepPolicy | None = None,
) -> SweepOutcome:
    """Sweep ``sources`` × ``configs`` to completion or quarantine."""
    policy = policy or SweepPolicy()
    config_items = tuple(configs.items())
    outcome = SweepOutcome(
        summaries={name: {} for name in sources},
        expected_configs=tuple(configs),
    )
    outcome.cache_counters = {key: 0 for key in _CACHE_KEYS}

    journal: SweepJournal | None = None
    if policy.journal_path:
        journal = SweepJournal(policy.journal_path)
        for (name, config_name), summary in journal.load(
            sweep_fingerprint(sources, configs)
        ).items():
            if name in outcome.summaries and config_name in configs:
                outcome.summaries[name][config_name] = summary
                outcome.resumed_cells += 1

    pending: dict[str, list[str]] = {}
    for name in sources:
        todo = [c for c in configs if c not in outcome.summaries[name]]
        if todo:
            pending[name] = todo

    attempts: dict[str, int] = {name: 0 for name in pending}
    quarantined: list[str] = []
    use_processes = bool(policy.processes and policy.processes > 0)
    isolate = False  # flip after the first worker loss: one task per pool
    round_no = 0

    while pending:
        if round_no > 0:
            delay = min(
                policy.backoff_cap, policy.backoff_base * (2 ** (round_no - 1))
            )
            if delay > 0:
                _sleep(delay)
        items = [
            (
                name,
                sources[name],
                tuple((c, configs[c]) for c in pending[name]),
                attempts[name],
                policy.chaos,
                use_processes,
                policy.store_path,
            )
            for name in pending
        ]
        if not use_processes:
            results = _execute_inline(items)
        elif isolate:
            results = {}
            for item in items:
                batch, broke = _execute_pool([item], 1, policy.task_timeout)
                results.update(batch)
        else:
            results, broke = _execute_pool(
                items, policy.processes, policy.task_timeout
            )
            if broke:
                isolate = True

        next_pending: dict[str, list[str]] = {}
        for name in list(pending):
            result = results.get(name, _LOST)
            failed_configs: list[str]
            if isinstance(result, _TaskResult):
                for config_name, cell in result.cells.items():
                    outcome.summaries[name][config_name] = cell
                    outcome.executed_cells += 1
                    for key in _CACHE_KEYS:
                        outcome.cache_counters[key] += cell.cache_counters.get(
                            key, 0
                        )
                    if journal is not None:
                        journal.record_cell(name, config_name, cell)
                for record in result.failures:
                    outcome.failures.append(record)
                    if journal is not None:
                        journal.record_failure(record)
                failed_configs = [
                    f.config for f in result.failures if f.config is not None
                ]
            else:
                kind = (
                    FailureKind.TIMEOUT
                    if result == _TIMED_OUT
                    else FailureKind.WORKER_LOST
                )
                record = FailureRecord(
                    program=name,
                    config=None,
                    stage=None,
                    kind=kind,
                    message=(
                        "task exceeded its wall-clock budget"
                        if kind is FailureKind.TIMEOUT
                        else "worker process lost while running this task"
                    ),
                    attempt=attempts[name],
                )
                outcome.failures.append(record)
                if journal is not None:
                    journal.record_failure(record)
                failed_configs = list(pending[name])

            if not failed_configs:
                continue
            attempts[name] += 1
            if attempts[name] > policy.max_retries:
                quarantined.append(name)
                terminal = FailureRecord(
                    program=name,
                    config=None,
                    stage=None,
                    kind=(
                        FailureKind.TIMEOUT
                        if result == _TIMED_OUT
                        else FailureKind.WORKER_LOST
                        if result == _LOST
                        else FailureKind.CRASH
                    ),
                    message=(
                        f"quarantined after {attempts[name]} attempt(s); "
                        f"unfinished cells: {', '.join(failed_configs)}"
                    ),
                    attempt=attempts[name] - 1,
                    quarantined=True,
                )
                outcome.failures.append(terminal)
                if journal is not None:
                    journal.record_failure(terminal)
            else:
                outcome.retries += 1
                next_pending[name] = failed_configs
        pending = next_pending
        round_no += 1

    outcome.quarantined = tuple(quarantined)
    return outcome
