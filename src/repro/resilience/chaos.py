"""Deterministic fault injection for the analysis pipeline.

The chaos harness proves — rather than hopes — that the resilient sweep
executor isolates, retries, quarantines, and resumes correctly. A
:class:`ChaosSpec` is a picklable list of :class:`Fault` rules plus a
seed; installing it arms module-level hooks the driver consults at every
stage boundary (:func:`chaos_point`) and after every stage-0 fetch
(:func:`maybe_corrupt_stage0`). With nothing installed each hook is a
single ``is None`` test, so production sweeps pay nothing.

Fault kinds:

``crash``
    raise a :class:`ChaosError` (an ordinary exception tagged with the
    stage) — exercises per-cell failure records and the sparse→dense
    solver fallback when aimed at ``stage=SOLVE, scope="sparse"``.
``kill``
    die the way a real worker does: ``os._exit`` inside a worker process
    (surfacing as ``BrokenProcessPool`` in the parent), or raise the
    :class:`ChaosWorkerLoss` *BaseException* in-process so nothing but
    the executor can swallow it.
``sleep``
    stall for ``sleep_seconds`` — exercises per-task wall-clock timeouts.
``corrupt``
    clobber the fetched :class:`~repro.core.driver.Stage0Artifacts`
    bundle in place (it *is* the cache entry, so the corruption persists
    exactly like a real poisoned cache) — exercises retry-then-quarantine.

Determinism: rules fire on exact (stage, program, scope) matches, capped
by ``max_firings`` and gated by ``max_attempt`` (so a "transient" fault
can hit the first attempt and spare the retry). Probabilistic rules hash
``(seed, stage, program, scope, firing index)`` with SHA-256 — the same
spec replayed over the same sweep makes identical decisions in any
process, regardless of interleaving.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

from repro.resilience.errors import Stage


class ChaosError(Exception):
    """An injected stage-boundary crash. Carries the stage it fired at so
    :func:`~repro.resilience.errors.classify_exception` trusts it."""

    def __init__(self, stage: Stage, message: str):
        self.stage = stage
        super().__init__(message)


class ChaosWorkerLoss(BaseException):
    """In-process stand-in for a dead worker. A *BaseException* so the
    driver's broad crash-fallback handlers cannot swallow it — only the
    sweep executor's worker-loss path may."""


@dataclass(frozen=True)
class Fault:
    """One injection rule. ``None`` match fields are wildcards."""

    stage: Stage
    kind: str  # "crash" | "kill" | "sleep" | "corrupt"
    program: str | None = None
    #: sub-position within a stage (the solve stage distinguishes the
    #: "sparse" attempt from the "dense" fallback).
    scope: str | None = None
    probability: float = 1.0
    #: total firings allowed per injector install (per process).
    max_firings: int | None = None
    #: fire only while the executor-reported task attempt is < this —
    #: models transient faults that a retry survives.
    max_attempt: int | None = None
    sleep_seconds: float = 0.0


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded, picklable fault plan, shipped to workers inside task
    payloads and installed for the duration of one task."""

    seed: int = 0
    faults: tuple[Fault, ...] = ()


def spec_to_json(spec: ChaosSpec) -> dict:
    """A JSON-able rendering of ``spec`` — the wire format ``repro serve
    --chaos`` accepts, so a test can arm the daemon *subprocess* with the
    same deterministic faults an in-process test would install."""
    return {
        "seed": spec.seed,
        "faults": [
            {
                "stage": fault.stage.value,
                "kind": fault.kind,
                "program": fault.program,
                "scope": fault.scope,
                "probability": fault.probability,
                "max_firings": fault.max_firings,
                "max_attempt": fault.max_attempt,
                "sleep_seconds": fault.sleep_seconds,
            }
            for fault in spec.faults
        ],
    }


def spec_from_json(payload: dict) -> ChaosSpec:
    """Inverse of :func:`spec_to_json` (unknown keys rejected loudly)."""
    faults = []
    for entry in payload.get("faults", ()):
        entry = dict(entry)
        faults.append(
            Fault(
                stage=Stage(entry.pop("stage")),
                kind=entry.pop("kind"),
                program=entry.pop("program", None),
                scope=entry.pop("scope", None),
                probability=entry.pop("probability", 1.0),
                max_firings=entry.pop("max_firings", None),
                max_attempt=entry.pop("max_attempt", None),
                sleep_seconds=entry.pop("sleep_seconds", 0.0),
            )
        )
        if entry:
            raise ValueError(f"unknown chaos fault keys: {sorted(entry)}")
    return ChaosSpec(seed=int(payload.get("seed", 0)), faults=tuple(faults))


@dataclass
class _Injector:
    spec: ChaosSpec
    label: str | None = None
    attempt: int = 0
    in_worker: bool = False
    firings: dict[int, int] = field(default_factory=dict)
    #: per-rule decision count — advances on every roll (fired or not) so
    #: probabilistic rules re-roll with a fresh hash at each arrival.
    rolls: dict[int, int] = field(default_factory=dict)

    def _matches(self, fault: Fault, stage: Stage, scope: str | None) -> bool:
        if fault.stage is not stage:
            return False
        if fault.program is not None and fault.program != self.label:
            return False
        if fault.scope is not None and fault.scope != scope:
            return False
        if fault.max_attempt is not None and self.attempt >= fault.max_attempt:
            return False
        return True

    def _decides_to_fire(self, index: int, fault: Fault, scope: str | None) -> bool:
        if (
            fault.max_firings is not None
            and self.firings.get(index, 0) >= fault.max_firings
        ):
            return False
        roll = self.rolls.get(index, 0)
        self.rolls[index] = roll + 1
        if fault.probability < 1.0:
            digest = hashlib.sha256(
                f"{self.spec.seed}:{fault.stage.value}:{self.label}:"
                f"{scope}:{roll}".encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            if fraction >= fault.probability:
                return False
        self.firings[index] = self.firings.get(index, 0) + 1
        return True

    def point(self, stage: Stage, scope: str | None = None) -> None:
        for index, fault in enumerate(self.spec.faults):
            if fault.kind == "corrupt" or not self._matches(fault, stage, scope):
                continue
            if not self._decides_to_fire(index, fault, scope):
                continue
            if fault.kind == "sleep":
                time.sleep(fault.sleep_seconds)
            elif fault.kind == "kill":
                if self.in_worker:
                    os._exit(17)  # a dead worker, not an exception
                raise ChaosWorkerLoss(
                    f"chaos: worker lost at {stage.value} ({self.label})"
                )
            else:  # crash
                raise ChaosError(
                    stage,
                    f"chaos: injected {stage.value} crash ({self.label})",
                )

    def corrupt(self, stage0) -> None:
        for index, fault in enumerate(self.spec.faults):
            if fault.kind != "corrupt":
                continue
            if not self._matches(fault, Stage.LOWERING, None):
                continue
            if not self._decides_to_fire(index, fault, None):
                continue
            # The bundle is the live cache entry: clobbering it poisons
            # every later fetch of this program, like real corruption.
            stage0.lowered = None
            stage0.graph = None


_ACTIVE: _Injector | None = None


def install(
    spec: ChaosSpec,
    *,
    label: str | None = None,
    attempt: int = 0,
    in_worker: bool = False,
) -> None:
    """Arm ``spec`` for this process until :func:`uninstall`."""
    global _ACTIVE
    _ACTIVE = _Injector(spec, label=label, attempt=attempt, in_worker=in_worker)


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def set_task(label: str | None, attempt: int = 0) -> None:
    """Re-point the active injector at a new (program, attempt) task."""
    if _ACTIVE is not None:
        _ACTIVE.label = label
        _ACTIVE.attempt = attempt


def chaos_point(stage: Stage, scope: str | None = None) -> None:
    """The driver's stage-boundary hook. Free when chaos is not armed."""
    if _ACTIVE is not None:
        _ACTIVE.point(stage, scope)


def maybe_corrupt_stage0(stage0) -> None:
    """The driver's post-fetch hook for cache-corruption faults."""
    if _ACTIVE is not None:
        _ACTIVE.corrupt(stage0)
