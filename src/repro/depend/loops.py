"""Loop classification: the Eigenmann–Blume motivation, executable.

For every DO loop in an analyzed program, decide

- **parallelizable?** — no loop-carried array dependences (per the tests
  in :mod:`repro.depend.dependence`), scalars privatizable or reductions,
  no calls in the body;
- **trip count** — known exactly when the bounds are compile-time
  constants under the CONSTANTS environment (the paper: loop bounds are
  "important ... in determining both the amount of work ... and the
  number of processors", §1);
- **profitable?** — parallelizable *and* enough known iterations.

All decisions are conservative: anything the analysis cannot prove safe
is reported as not parallelizable, with reasons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.depend.dependence import DependenceResult, LoopRange, may_depend
from repro.depend.subscripts import extract_affine
from repro.frontend import astnodes as ast


@dataclass
class LoopClassification:
    """Verdict for one DO loop."""

    procedure: str
    induction_var: str
    depth: int
    parallelizable: bool = True
    trip_count: int | None = None
    reasons: list[str] = field(default_factory=list)

    @property
    def profitable(self) -> bool:
        return (
            self.parallelizable
            and self.trip_count is not None
            and self.trip_count >= 4
        )

    def veto(self, reason: str) -> None:
        self.parallelizable = False
        self.reasons.append(reason)


def _constant_value(expr: ast.Expr, known, procedure) -> int | None:
    affine = extract_affine(expr, set(), known, procedure)
    if affine is not None and affine.is_invariant:
        return affine.constant
    return None


def _accesses(body, array_name=None):
    """(ref, is_write) for every array access in the loop body."""
    found = []

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.target, ast.ArrayRef):
                    found.append((stmt.target, True))
                    for index in stmt.target.indices:
                        visit_expr(index)
                visit_expr(stmt.value)
            elif isinstance(stmt, ast.IfStmt):
                visit_expr(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, (ast.DoLoop, ast.DoWhile)):
                if isinstance(stmt, ast.DoLoop):
                    visit_expr(stmt.first)
                    visit_expr(stmt.last)
                    if stmt.step is not None:
                        visit_expr(stmt.step)
                else:
                    visit_expr(stmt.cond)
                visit(stmt.body)
            elif isinstance(stmt, ast.WriteStmt):
                for value in stmt.values:
                    visit_expr(value)
            elif isinstance(stmt, ast.ReadStmt):
                for target in stmt.targets:
                    if isinstance(target, ast.ArrayRef):
                        found.append((target, True))
            elif isinstance(stmt, ast.CallStmt):
                for arg in stmt.args:
                    visit_expr(arg)

    def visit_expr(expr):
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.ArrayRef):
                found.append((node, False))

    visit(body)
    if array_name is not None:
        return [(r, w) for r, w in found if r.name == array_name]
    return found


def _scalar_defs_and_uses(body):
    """Scalars assigned / read at any depth of the loop body, in order."""
    events = []  # ("def"|"use", name)

    def visit(stmts):
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                _expr_uses(stmt.value)
                if isinstance(stmt.target, ast.ArrayRef):
                    for index in stmt.target.indices:
                        _expr_uses(index)
                else:
                    events.append(("def", stmt.target.name))
            elif isinstance(stmt, ast.IfStmt):
                _expr_uses(stmt.cond)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.DoLoop):
                _expr_uses(stmt.first)
                _expr_uses(stmt.last)
                if stmt.step is not None:
                    _expr_uses(stmt.step)
                events.append(("def", stmt.var.name))
                visit(stmt.body)
            elif isinstance(stmt, ast.DoWhile):
                _expr_uses(stmt.cond)
                visit(stmt.body)
            elif isinstance(stmt, ast.WriteStmt):
                for value in stmt.values:
                    _expr_uses(value)
            elif isinstance(stmt, ast.ReadStmt):
                for target in stmt.targets:
                    if isinstance(target, ast.ArrayRef):
                        for index in target.indices:
                            _expr_uses(index)
                    else:
                        events.append(("def", target.name))

    def _expr_uses(expr):
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.VarRef):
                events.append(("use", node.name))

    visit(body)
    return events


def _is_reduction(stmt: ast.Assign) -> bool:
    """``s = s + expr`` / ``s = s * expr`` (and mirrored) patterns."""
    if not isinstance(stmt.target, ast.VarRef):
        return False
    value = stmt.value
    if not isinstance(value, ast.BinaryOp) or value.op not in ("+", "*"):
        return False
    name = stmt.target.name
    return (
        isinstance(value.left, ast.VarRef)
        and value.left.name == name
        or isinstance(value.right, ast.VarRef)
        and value.right.name == name
    )


def _has_call(body) -> bool:
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.CallStmt):
            return True
        for expr in _stmt_exprs(stmt):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.FunctionCall):
                    from repro.frontend.symbols import INTRINSICS

                    if node.name not in INTRINSICS:
                        return True
    return False


def _stmt_exprs(stmt):
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ast.DoLoop):
        exprs = [stmt.first, stmt.last]
        if stmt.step is not None:
            exprs.append(stmt.step)
        return exprs
    if isinstance(stmt, ast.DoWhile):
        return [stmt.cond]
    if isinstance(stmt, ast.WriteStmt):
        return list(stmt.values)
    return []


def _reduction_targets(body) -> set[str]:
    names = set()
    for stmt in ast.walk_stmts(body):
        if isinstance(stmt, ast.Assign) and _is_reduction(stmt):
            names.add(stmt.target.name)
    return names


def _classify_loop(
    loop: ast.DoLoop,
    proc_name: str,
    procedure,
    known,
    depth: int,
) -> LoopClassification:
    verdict = LoopClassification(
        procedure=proc_name, induction_var=loop.var.name, depth=depth
    )

    # trip count from (possibly interprocedural) constants
    first = _constant_value(loop.first, known, procedure)
    last = _constant_value(loop.last, known, procedure)
    step = 1 if loop.step is None else _constant_value(loop.step, known, procedure)
    if first is not None and last is not None and step not in (None, 0):
        verdict.trip_count = max(0, (last - first + step) // step)
    else:
        verdict.reasons.append("trip count unknown")

    if _has_call(loop.body):
        verdict.veto("call in loop body")

    # scalar cross-iteration hazards
    reductions = _reduction_targets(loop.body)
    first_event: dict[str, str] = {}
    for kind, name in _scalar_defs_and_uses(loop.body):
        first_event.setdefault(name, kind)
    defined = {
        name
        for kind, name in _scalar_defs_and_uses(loop.body)
        if kind == "def"
    }
    for name in sorted(defined):
        if name == loop.var.name or name in reductions:
            continue
        if first_event.get(name) == "use":
            verdict.veto(f"scalar {name} carried across iterations")

    # array dependences on the loop's induction variable
    ranges = {}
    if verdict.trip_count is not None and first is not None and last is not None:
        low, high = sorted((first, last))
        ranges[loop.var.name] = LoopRange(loop.var.name, low, high)
    accesses = _accesses(loop.body)
    arrays = {ref.name for ref, _ in accesses}
    for array in sorted(arrays):
        refs = [(r, w) for r, w in accesses if r.name == array]
        writes = [(r, w) for r, w in refs if w]
        if not writes:
            continue
        for write_ref, _ in writes:
            for other_ref, _ in refs:
                if other_ref is write_ref:
                    continue
                if _carried_dependence(
                    write_ref, other_ref, loop.var.name, known, procedure, ranges
                ):
                    verdict.veto(
                        f"possible loop-carried dependence on {array}"
                    )
                    break
            else:
                continue
            break
    return verdict


def _carried_dependence(
    write_ref, other_ref, induction: str, known, procedure, ranges
) -> bool:
    """Could the write and the other access touch the same element in
    *different* iterations of the ``induction`` loop?"""
    if len(write_ref.indices) != len(other_ref.indices):
        return True
    independent_dim = False
    distance_zero_all = True
    for write_index, other_index in zip(write_ref.indices, other_ref.indices):
        write_affine = extract_affine(write_index, {induction}, known, procedure)
        other_affine = extract_affine(other_index, {induction}, known, procedure)
        if write_affine is None or other_affine is None:
            distance_zero_all = False
            continue
        if may_depend(write_affine, other_affine, ranges) is (
            DependenceResult.INDEPENDENT
        ):
            independent_dim = True
            break
        # same-coefficient forms: carried iff constants differ
        write_coef = write_affine.coefficient(induction)
        other_coef = other_affine.coefficient(induction)
        if write_coef == other_coef and write_coef != 0:
            if write_affine.constant != other_affine.constant:
                distance_zero_all = False
        elif write_affine != other_affine:
            distance_zero_all = False
    if independent_dim:
        return False
    return not distance_zero_all


def classify_loops(result, constants_env: bool = True) -> list[LoopClassification]:
    """Classify every DO loop of an analyzed program.

    ``constants_env=False`` withholds the interprocedural constants —
    the comparison point for the Eigenmann–Blume motivation."""
    verdicts: list[LoopClassification] = []
    for name, lowered_proc in result.lowered.procedures.items():
        procedure = lowered_proc.procedure
        known = result.constants(name) if constants_env else {}

        def visit(stmts, depth):
            for stmt in stmts:
                if isinstance(stmt, ast.DoLoop):
                    verdicts.append(
                        _classify_loop(stmt, name, procedure, known, depth)
                    )
                    visit(stmt.body, depth + 1)
                elif isinstance(stmt, ast.DoWhile):
                    visit(stmt.body, depth + 1)
                elif isinstance(stmt, ast.IfStmt):
                    visit(stmt.then_body, depth)
                    visit(stmt.else_body, depth)

        visit(procedure.ast.body, 0)
    return verdicts
