"""Affine-form extraction for array subscripts.

A subscript is *linear* (affine) in the enclosing loop nest when it can be
written ``c0 + c1*i1 + ... + ck*ik`` with every coefficient a compile-time
integer constant and each ``ij`` an enclosing DO induction variable.
Dependence tests (GCD, Banerjee, ...) require this form; anything else is
*nonlinear* to them and forces worst-case assumptions.

Whether a coefficient is "a compile-time constant" depends on what the
compiler knows: a named PARAMETER always is; a formal parameter or COMMON
variable is only if interprocedural constant propagation proved it. That
gap is the Shen–Li–Yew measurement this module reproduces: classify every
subscript twice, once with an empty CONSTANTS environment and once with
the analyzer's, and count how many nonlinear subscripts become linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import semantics
from repro.core.lattice import is_constant
from repro.frontend import astnodes as ast
from repro.frontend.symbols import Procedure, SymbolKind


@dataclass(frozen=True)
class AffineSubscript:
    """``constant + Σ coefficients[v] * v`` over induction variables."""

    constant: int
    coefficients: tuple[tuple[str, int], ...] = ()

    def coefficient(self, var: str) -> int:
        for name, value in self.coefficients:
            if name == var:
                return value
        return 0

    @property
    def is_invariant(self) -> bool:
        return not self.coefficients

    def __str__(self) -> str:
        parts = [str(self.constant)]
        for name, value in self.coefficients:
            parts.append(f"{value}*{name}")
        return " + ".join(parts)


class _NonLinear(Exception):
    """Raised internally when an expression leaves the affine domain."""


def _combine(
    left: dict[str | None, int], right: dict[str | None, int], sign: int
) -> dict[str | None, int]:
    result = dict(left)
    for key, value in right.items():
        result[key] = result.get(key, 0) + sign * value
    return result


def _affine_terms(
    expr: ast.Expr,
    induction_vars: set[str],
    known,
    procedure: Procedure,
) -> dict[str | None, int]:
    """Map {None: constant, var: coefficient}; raises _NonLinear."""
    if isinstance(expr, ast.IntLit):
        return {None: expr.value}
    if isinstance(expr, ast.VarRef):
        if expr.name in induction_vars:
            return {expr.name: 1}
        value = _known_value(expr.name, known, procedure)
        if value is None:
            raise _NonLinear(expr.name)
        return {None: value}
    if isinstance(expr, ast.UnaryOp):
        terms = _affine_terms(expr.operand, induction_vars, known, procedure)
        if expr.op == "-":
            return {k: -v for k, v in terms.items()}
        if expr.op == "+":
            return terms
        raise _NonLinear(expr.op)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("+", "-"):
            left = _affine_terms(expr.left, induction_vars, known, procedure)
            right = _affine_terms(expr.right, induction_vars, known, procedure)
            return _combine(left, right, 1 if expr.op == "+" else -1)
        if expr.op == "*":
            left = _affine_terms(expr.left, induction_vars, known, procedure)
            right = _affine_terms(expr.right, induction_vars, known, procedure)
            left_const = set(left) <= {None}
            right_const = set(right) <= {None}
            if left_const:
                factor = left.get(None, 0)
                return {k: factor * v for k, v in right.items()}
            if right_const:
                factor = right.get(None, 0)
                return {k: factor * v for k, v in left.items()}
            raise _NonLinear("product of two variables")
        if expr.op == "/":
            left = _affine_terms(expr.left, induction_vars, known, procedure)
            right = _affine_terms(expr.right, induction_vars, known, procedure)
            if set(left) <= {None} and set(right) <= {None}:
                divisor = right.get(None, 0)
                if divisor == 0:
                    raise _NonLinear("division by zero")
                return {None: semantics.int_div(left.get(None, 0), divisor)}
            raise _NonLinear("division by a variable")
        raise _NonLinear(expr.op)
    if isinstance(expr, ast.FunctionCall):
        # intrinsics of all-constant arguments fold; anything else is out
        try:
            args = []
            for arg in expr.args:
                terms = _affine_terms(arg, induction_vars, known, procedure)
                if set(terms) <= {None}:
                    args.append(terms.get(None, 0))
                else:
                    raise _NonLinear("intrinsic of induction variable")
            return {None: int(semantics.apply_intrinsic(expr.name, args))}
        except (semantics.EvalError, ValueError) as exc:
            raise _NonLinear(str(exc)) from exc
    raise _NonLinear(type(expr).__name__)


def _known_value(name: str, known, procedure: Procedure) -> int | None:
    symbol = procedure.symtab.lookup(name)
    if symbol is None:
        return None
    if symbol.kind is SymbolKind.NAMED_CONST and isinstance(
        symbol.const_value, int
    ):
        return symbol.const_value
    value = known.get(name) if known else None
    if (
        value is not None
        and is_constant(value)
        and isinstance(value, int)
        and not isinstance(value, bool)
    ):
        return value
    return None


def extract_affine(
    expr: ast.Expr,
    induction_vars: set[str],
    known=None,
    procedure: Procedure | None = None,
) -> AffineSubscript | None:
    """Affine form of ``expr``, or None if it is nonlinear.

    ``known`` maps variable names to lattice values (a CONSTANTS(p)
    environment as produced by ``AnalysisResult.constants``); ``procedure``
    supplies named constants.
    """
    assert procedure is not None
    try:
        terms = _affine_terms(expr, induction_vars, known or {}, procedure)
    except _NonLinear:
        return None
    constant = terms.pop(None, 0)
    coefficients = tuple(
        sorted((name, value) for name, value in terms.items() if value != 0)
    )
    return AffineSubscript(constant=constant, coefficients=coefficients)


@dataclass
class SubscriptSite:
    """One array subscript occurrence."""

    procedure: str
    array: str
    dimension: int
    expr: ast.Expr
    loop_nest: tuple[str, ...]
    affine: AffineSubscript | None = None

    @property
    def is_linear(self) -> bool:
        return self.affine is not None


@dataclass
class LinearityReport:
    """Shen–Li–Yew's measurement for one program."""

    sites: list[SubscriptSite] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.sites)

    @property
    def linear(self) -> int:
        return sum(1 for s in self.sites if s.is_linear)

    @property
    def nonlinear(self) -> int:
        return self.total - self.linear

    def nonlinear_sites(self) -> list[SubscriptSite]:
        return [s for s in self.sites if not s.is_linear]


def _walk_array_refs(stmts, loop_nest: tuple[str, ...]):
    """Yield (array ref, enclosing loop nest) for every subscripted access."""
    for stmt in stmts:
        exprs: list[ast.Expr] = []
        if isinstance(stmt, ast.Assign):
            exprs.append(stmt.value)
            if isinstance(stmt.target, ast.ArrayRef):
                yield stmt.target, loop_nest
                exprs.extend(stmt.target.indices)
        elif isinstance(stmt, ast.IfStmt):
            exprs.append(stmt.cond)
            yield from _walk_array_refs(stmt.then_body, loop_nest)
            yield from _walk_array_refs(stmt.else_body, loop_nest)
        elif isinstance(stmt, ast.DoLoop):
            exprs.extend([stmt.first, stmt.last])
            if stmt.step is not None:
                exprs.append(stmt.step)
            inner_nest = loop_nest + (stmt.var.name,)
            yield from _walk_array_refs(stmt.body, inner_nest)
        elif isinstance(stmt, ast.DoWhile):
            exprs.append(stmt.cond)
            yield from _walk_array_refs(stmt.body, loop_nest)
        elif isinstance(stmt, ast.CallStmt):
            exprs.extend(stmt.args)
        elif isinstance(stmt, ast.WriteStmt):
            exprs.extend(stmt.values)
        elif isinstance(stmt, ast.ReadStmt):
            for target in stmt.targets:
                if isinstance(target, ast.ArrayRef):
                    yield target, loop_nest
        for expr in exprs:
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.ArrayRef):
                    yield node, loop_nest


def classify_subscripts(result, constants_env: bool = True) -> LinearityReport:
    """Classify every subscript in an analyzed program.

    ``result`` is an :class:`~repro.core.driver.AnalysisResult`;
    ``constants_env=False`` classifies with no interprocedural knowledge
    (the "before" column of the Shen–Li–Yew experiment)."""
    report = LinearityReport()
    for name, lowered_proc in result.lowered.procedures.items():
        procedure = lowered_proc.procedure
        known = result.constants(name) if constants_env else {}
        for ref, nest in _walk_array_refs(procedure.ast.body, ()):
            for dim, index_expr in enumerate(ref.indices):
                affine = extract_affine(
                    index_expr, set(nest), known, procedure
                )
                report.sites.append(
                    SubscriptSite(
                        procedure=name,
                        array=ref.name,
                        dimension=dim,
                        expr=index_expr,
                        loop_nest=nest,
                        affine=affine,
                    )
                )
    return report
