"""Dependence-analysis consumer of interprocedural constants.

The paper motivates ICP through its clients (§1): Shen, Li, and Yew found
that knowing interprocedural constants made ~50% of previously *nonlinear*
array subscripts linear, and linear subscripts are what dependence tests
can analyze; Eigenmann and Blume found interprocedural constants are often
loop bounds, feeding parallelization profitability decisions.

This package implements those clients:

- :mod:`repro.depend.subscripts` — affine-form extraction: is a subscript
  a linear function of the enclosing loop induction variables, given what
  the analyzer knows to be constant?
- :mod:`repro.depend.dependence` — classic single-subscript dependence
  tests (GCD and bounds) over affine subscript pairs.
- :mod:`repro.depend.loops` — loop classification: dependence-free DO
  loops with known trip counts are parallelizable-and-profitable.

Each client can be run *with* or *without* a CONSTANTS environment, which
is exactly the Shen–Li–Yew experiment.
"""

from repro.depend.subscripts import (
    AffineSubscript,
    LinearityReport,
    classify_subscripts,
    extract_affine,
)
from repro.depend.dependence import (
    DependenceResult,
    gcd_test,
    bounds_test,
    may_depend,
)
from repro.depend.loops import LoopClassification, classify_loops

__all__ = [
    "AffineSubscript",
    "DependenceResult",
    "LinearityReport",
    "LoopClassification",
    "bounds_test",
    "classify_loops",
    "classify_subscripts",
    "extract_affine",
    "gcd_test",
    "may_depend",
]
