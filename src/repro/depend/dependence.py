"""Classic single-subscript dependence tests over affine forms.

Two references ``A(f(i))`` and ``A(g(i))`` in a common loop nest may
access the same element only if ``f(i1) = g(i2)`` has an integer solution
within the loop bounds. Two standard conservative tests:

- **GCD test**: ``a1*i1 - a2*i2 = c2 - c1`` has an integer solution only
  if ``gcd(a1, a2)`` divides ``c2 - c1``. (Ignores bounds.)
- **Bounds (Banerjee-style) test**: the extreme values of
  ``f(i1) - g(i2)`` over the iteration ranges must straddle zero.

Both tests answer "no dependence" (definitely independent) or "maybe"
(conservatively dependent). A nonlinear subscript is always "maybe" —
which is why the Shen–Li–Yew linearity improvement matters.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.depend.subscripts import AffineSubscript


class DependenceResult(enum.Enum):
    INDEPENDENT = "independent"
    MAYBE = "maybe"


def gcd_test(
    source: AffineSubscript, sink: AffineSubscript
) -> DependenceResult:
    """GCD test over all induction variables of both forms."""
    coefficients = [value for _, value in source.coefficients]
    coefficients.extend(value for _, value in sink.coefficients)
    difference = sink.constant - source.constant
    if not coefficients:
        # both invariant: same element iff constants equal
        return (
            DependenceResult.MAYBE
            if difference == 0
            else DependenceResult.INDEPENDENT
        )
    divisor = 0
    for value in coefficients:
        divisor = math.gcd(divisor, abs(value))
    if divisor == 0:
        return (
            DependenceResult.MAYBE
            if difference == 0
            else DependenceResult.INDEPENDENT
        )
    if difference % divisor != 0:
        return DependenceResult.INDEPENDENT
    return DependenceResult.MAYBE


@dataclass(frozen=True)
class LoopRange:
    """Inclusive iteration range of one induction variable."""

    var: str
    low: int
    high: int


def bounds_test(
    source: AffineSubscript,
    sink: AffineSubscript,
    ranges: dict[str, LoopRange],
) -> DependenceResult:
    """Banerjee-style extreme-value test.

    ``f(i) - g(i') = 0`` can hold only if 0 lies between the minimum and
    maximum of the difference over the iteration space. Source and sink
    iterate independently (distinct solution variables), so each form's
    contribution uses its own extreme.
    """
    minimum = source.constant - sink.constant
    maximum = minimum
    for name, value in source.coefficients:
        loop = ranges.get(name)
        if loop is None:
            return DependenceResult.MAYBE  # unknown bounds
        low_term, high_term = sorted((value * loop.low, value * loop.high))
        minimum += low_term
        maximum += high_term
    for name, value in sink.coefficients:
        loop = ranges.get(name)
        if loop is None:
            return DependenceResult.MAYBE
        low_term, high_term = sorted((-value * loop.high, -value * loop.low))
        minimum += low_term
        maximum += high_term
    if minimum > 0 or maximum < 0:
        return DependenceResult.INDEPENDENT
    return DependenceResult.MAYBE


def may_depend(
    source: AffineSubscript | None,
    sink: AffineSubscript | None,
    ranges: dict[str, LoopRange] | None = None,
) -> DependenceResult:
    """Combined conservative answer; nonlinear (None) forms are MAYBE."""
    if source is None or sink is None:
        return DependenceResult.MAYBE
    if gcd_test(source, sink) is DependenceResult.INDEPENDENT:
        return DependenceResult.INDEPENDENT
    if ranges:
        return bounds_test(source, sink, ranges)
    return DependenceResult.MAYBE
