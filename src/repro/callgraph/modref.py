"""Interprocedural MOD/REF summary analysis.

For each procedure ``p``:

- ``MOD(p)``: the formals (by name) and globals (by :class:`GlobalId`)
  whose values may change as a side effect of invoking ``p`` — directly or
  through any chain of calls (Cooper–Kennedy style flow-insensitive
  side-effect analysis, computed here by iteration to a fixpoint, which is
  plenty at study scale).
- ``REF(p)``: the formals and globals ``p`` may read, likewise transitive.

Table 3 shows why this matters: without MOD information the analyzer must
assume every call clobbers every visible variable, and "the presence of
any call in a routine eliminated potential constants along paths leaving
the call site".

:func:`make_call_effects` translates summaries into the per-call kill sets
SSA construction consumes (see :mod:`repro.analysis.ssa`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import CallGraph
from repro.frontend.astnodes import Type
from repro.frontend.symbols import GlobalId, Symbol, SymbolKind
from repro.ir.instructions import (
    ArgumentKind,
    Call,
    LoadArr,
    ReadArr,
    ReadVar,
    StoreArr,
    VarDef,
    VarUse,
)
from repro.ir.lower import LoweredProgram


@dataclass
class ModRefInfo:
    """MOD/REF summaries for every procedure."""

    mod_formals: dict[str, set[str]] = field(default_factory=dict)
    mod_globals: dict[str, set[GlobalId]] = field(default_factory=dict)
    ref_formals: dict[str, set[str]] = field(default_factory=dict)
    ref_globals: dict[str, set[GlobalId]] = field(default_factory=dict)

    def modifies_formal(self, proc: str, formal: str) -> bool:
        return formal in self.mod_formals.get(proc, ())

    def modifies_global(self, proc: str, gid: GlobalId) -> bool:
        return gid in self.mod_globals.get(proc, ())

    def references_formal(self, proc: str, formal: str) -> bool:
        return formal in self.ref_formals.get(proc, ())

    def references_global(self, proc: str, gid: GlobalId) -> bool:
        return gid in self.ref_globals.get(proc, ())


def _classify(symbol: Symbol) -> tuple[str, object] | None:
    """Map a symbol to its summary slot: formal name or global id."""
    if symbol.kind is SymbolKind.FORMAL:
        return ("formal", symbol.name)
    if symbol.kind is SymbolKind.GLOBAL:
        assert symbol.global_id is not None
        return ("global", symbol.global_id)
    return None


#: public alias — the framework MOD/REF client classifies with the same
#: rule so the two implementations cannot drift on what counts as a slot.
classify_symbol = _classify


def site_binding_map(
    lowered: LoweredProgram, call: Call
) -> dict[str, tuple[str, object]]:
    """How one call site maps callee formals to caller summary slots.

    Only *bindable* actuals participate: a variable, whole array, or
    array element carries storage the callee's by-reference formal
    aliases, so the callee's effect on the formal is an effect on the
    caller's slot. Literal/expression actuals bind nothing (the callee
    writes a temporary). This is the single binding rule both
    :func:`compute_modref` and the framework MOD/REF client apply.
    """
    callee = lowered.procedures[call.callee].procedure
    binding: dict[str, tuple[str, object]] = {}
    for formal, arg in zip(callee.formals, call.args):
        bindable = arg.symbol is not None and arg.kind in (
            ArgumentKind.VAR,
            ArgumentKind.ARRAY,
            ArgumentKind.ARRAY_ELEMENT,
        )
        if not bindable:
            continue
        slot = _classify(arg.symbol)
        if slot is not None:
            binding[formal.name] = slot
    return binding


def direct_effects(
    lowered: LoweredProgram,
) -> dict[str, tuple[frozenset, frozenset]]:
    """Each procedure's *direct* (call-free) effects as slot sets:
    ``{proc: (mod_slots, ref_slots)}`` with slots in
    :func:`classify_symbol` form. The seed environment of the framework
    MOD/REF client, computed by the same collector
    :func:`compute_modref` seeds from."""
    info = ModRefInfo(
        mod_formals={name: set() for name in lowered.procedures},
        mod_globals={name: set() for name in lowered.procedures},
        ref_formals={name: set() for name in lowered.procedures},
        ref_globals={name: set() for name in lowered.procedures},
    )
    for name, lowered_proc in lowered.procedures.items():
        _collect_direct(name, lowered_proc, info)
    return {
        name: (
            frozenset(
                [("formal", formal) for formal in info.mod_formals[name]]
                + [("global", gid) for gid in info.mod_globals[name]]
            ),
            frozenset(
                [("formal", formal) for formal in info.ref_formals[name]]
                + [("global", gid) for gid in info.ref_globals[name]]
            ),
        )
        for name in lowered.procedures
    }


def compute_modref(lowered: LoweredProgram, graph: CallGraph) -> ModRefInfo:
    """Compute MOD/REF summaries to a fixpoint over the call graph."""
    info = ModRefInfo(
        mod_formals={name: set() for name in lowered.procedures},
        mod_globals={name: set() for name in lowered.procedures},
        ref_formals={name: set() for name in lowered.procedures},
        ref_globals={name: set() for name in lowered.procedures},
    )
    for name, lowered_proc in lowered.procedures.items():
        _collect_direct(name, lowered_proc, info)

    changed = True
    while changed:
        changed = False
        for site_id in sorted(lowered.call_sites):
            caller, call = lowered.call_sites[site_id]
            if _propagate_site(lowered, caller, call, info):
                changed = True
    return info


def _collect_direct(name: str, lowered_proc, info: ModRefInfo) -> None:
    mod_f = info.mod_formals[name]
    mod_g = info.mod_globals[name]
    ref_f = info.ref_formals[name]
    ref_g = info.ref_globals[name]

    def note_mod(symbol: Symbol) -> None:
        slot = _classify(symbol)
        if slot is None:
            return
        (mod_f if slot[0] == "formal" else mod_g).add(slot[1])  # type: ignore[arg-type]

    def note_ref(symbol: Symbol) -> None:
        slot = _classify(symbol)
        if slot is None:
            return
        (ref_f if slot[0] == "formal" else ref_g).add(slot[1])  # type: ignore[arg-type]

    for _, instr in lowered_proc.cfg.instructions():
        dest = instr.dest
        if isinstance(dest, VarDef):
            note_mod(dest.symbol)
        if isinstance(instr, (StoreArr, ReadArr)):
            note_mod(instr.array)
        if isinstance(instr, LoadArr):
            note_ref(instr.array)
        if isinstance(instr, ReadVar):
            note_mod(instr.target.symbol)
        for operand in instr.uses():
            if isinstance(operand, VarUse):
                note_ref(operand.symbol)


def _propagate_site(
    lowered: LoweredProgram, caller: str, call: Call, info: ModRefInfo
) -> bool:
    """Fold one call site's callee summary into the caller's. Returns
    whether anything changed."""
    callee_name = call.callee
    changed = False

    def absorb(target_f: set, target_g: set, source_slot) -> None:
        nonlocal changed
        kind, payload = source_slot
        target = target_f if kind == "formal" else target_g
        if payload not in target:
            target.add(payload)
            changed = True

    # Globals flow up unchanged (same storage everywhere).
    for gid in info.mod_globals[callee_name]:
        if gid not in info.mod_globals[caller]:
            info.mod_globals[caller].add(gid)
            changed = True
    for gid in info.ref_globals[callee_name]:
        if gid not in info.ref_globals[caller]:
            info.ref_globals[caller].add(gid)
            changed = True

    # Formals map through the binding at this site (the shared rule —
    # passing a value is not itself a read or a write; the effect lands
    # on the caller's slot iff the actual is bindable storage).
    binding = site_binding_map(lowered, call)
    for formal_name, slot in binding.items():
        if formal_name in info.mod_formals[callee_name]:
            absorb(info.mod_formals[caller], info.mod_globals[caller], slot)
        if formal_name in info.ref_formals[callee_name]:
            absorb(info.ref_formals[caller], info.ref_globals[caller], slot)
    return changed


def make_call_effects(
    lowered: LoweredProgram,
    caller_name: str,
    modref: ModRefInfo | None,
):
    """Build the per-call kill-set function for SSA construction.

    With ``modref`` present, a call kills exactly the scalars the callee's
    MOD summary says it can change. With ``modref=None`` (the paper's
    "without MOD" configuration) every call makes the worst-case
    assumption: it kills every scalar global, every by-reference scalar
    actual, and every scalar formal of the *caller* — a formal's
    underlying actual may be aliased to COMMON storage the callee writes,
    and without side-effect summaries nothing rules that out ("the
    presence of any call in a routine eliminated potential constants
    along paths leaving the call site", §4.2). Alias kills carry no
    callee binding, so no return jump function can rescue them.
    """
    caller = lowered.procedures[caller_name].procedure
    global_symbols = [
        s
        for s in caller.symtab
        if s.kind is SymbolKind.GLOBAL
        and not s.is_array
        and s.type in (Type.INTEGER, Type.LOGICAL)
    ]
    caller_formals = [
        s
        for s in caller.formals
        if not s.is_array and s.type in (Type.INTEGER, Type.LOGICAL)
    ]
    by_gid = {s.global_id: s for s in global_symbols}

    def effects(call: Call) -> list[tuple[Symbol, tuple[str, object]]]:
        callee = lowered.procedures[call.callee].procedure
        kills: list[tuple[Symbol, tuple[str, object]]] = []
        if modref is None:
            # COMMON is opaque without summaries: no return jump function
            # can be trusted to describe a slot the callee may or may not
            # even declare, so global kills carry no rescuable binding.
            for symbol in global_symbols:
                kills.append((symbol, ("alias", symbol.global_id)))
            for symbol in caller_formals:
                kills.append((symbol, ("alias", symbol.name)))
            for formal, arg in zip(callee.formals, call.args):
                if arg.kind is ArgumentKind.VAR and arg.symbol is not None:
                    if arg.symbol.type in (Type.INTEGER, Type.LOGICAL):
                        kills.append((arg.symbol, ("formal", formal.name)))
            return kills
        for gid in sorted(
            modref.mod_globals.get(call.callee, ()), key=str
        ):
            symbol = by_gid.get(gid)
            if symbol is not None:
                kills.append((symbol, ("global", gid)))
        for formal, arg in zip(callee.formals, call.args):
            if formal.name not in modref.mod_formals.get(call.callee, ()):
                continue
            if arg.kind is ArgumentKind.VAR and arg.symbol is not None:
                if arg.symbol.type in (Type.INTEGER, Type.LOGICAL):
                    kills.append((arg.symbol, ("formal", formal.name)))
        return kills

    return effects
