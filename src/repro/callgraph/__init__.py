"""Call graph construction and interprocedural MOD/REF summaries."""

from repro.callgraph.graph import CallGraph, build_call_graph
from repro.callgraph.modref import ModRefInfo, compute_modref, make_call_effects

__all__ = [
    "CallGraph",
    "ModRefInfo",
    "build_call_graph",
    "compute_modref",
    "make_call_effects",
]
