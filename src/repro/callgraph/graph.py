"""The program call graph.

Nodes are procedure names; each edge carries the :class:`Call` instruction
it came from, so one caller/callee pair contributes one edge per call
site (the solver meets over *sites*, not over neighbours).

SCC condensation (Tarjan) supports the bottom-up return-jump-function pass
and gives the solver a good initial ordering. Recursive cliques appear as
non-trivial SCCs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Call
from repro.ir.lower import LoweredProgram


@dataclass
class CallGraph:
    """Call multigraph with per-site edges."""

    nodes: list[str] = field(default_factory=list)
    #: caller -> [(callee, call instruction)]
    out_edges: dict[str, list[tuple[str, Call]]] = field(default_factory=dict)
    #: callee -> [(caller, call instruction)]
    in_edges: dict[str, list[tuple[str, Call]]] = field(default_factory=dict)
    main: str = ""

    def callees(self, name: str) -> list[str]:
        return sorted({callee for callee, _ in self.out_edges.get(name, [])})

    def callers(self, name: str) -> list[str]:
        return sorted({caller for caller, _ in self.in_edges.get(name, [])})

    def call_sites_into(self, name: str) -> list[tuple[str, Call]]:
        return list(self.in_edges.get(name, []))

    def call_sites_from(self, name: str) -> list[tuple[str, Call]]:
        return list(self.out_edges.get(name, []))

    def reachable_from_main(self) -> set[str]:
        seen: set[str] = set()
        stack = [self.main]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees(name))
        return seen

    # -- orderings ------------------------------------------------------------

    def reverse_postorder(self) -> list[str]:
        """Reverse postorder over call edges from the main program.

        Callers come before their callees on every acyclic path, which is
        the direction interprocedural constants flow — the solver uses it
        as a worklist priority so each sweep evaluates a call site at most
        once before its callee is visited (§3.1.5's cost model counts
        passes under exactly this schedule). Procedures unreachable from
        the main program follow in name order, so the index is total.
        """
        postorder: list[str] = []
        seen: set[str] = set()
        stack: list[tuple[str, object]] = [(self.main, iter(self.callees(self.main)))]
        seen.add(self.main)
        while stack:
            node, children = stack[-1]
            for child in children:  # type: ignore[union-attr]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(self.callees(child))))
                    break
            else:
                postorder.append(node)
                stack.pop()
        order = list(reversed(postorder))
        order.extend(name for name in self.nodes if name not in seen)
        return order

    def rpo_index(self) -> dict[str, int]:
        """Map each procedure to its reverse-postorder position."""
        return {name: index for index, name in enumerate(self.reverse_postorder())}

    # -- SCC condensation -----------------------------------------------------

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in *reverse topological order*
        (callees before callers) — the bottom-up walk of §4.1 stage 1."""
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        result: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan to dodge recursion limits on deep graphs.
            work = [(node, iter(self.callees(node)))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self.callees(child))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    result.append(sorted(component))

        for node in self.nodes:
            if node not in index:
                strongconnect(node)
        return result

    def is_recursive(self, name: str) -> bool:
        """True if ``name`` sits on a call-graph cycle (incl. self-calls)."""
        for scc in self.sccs():
            if name in scc:
                if len(scc) > 1:
                    return True
                return any(callee == name for callee in self.callees(name))
        return False

    def bottom_up_sccs(self) -> list[list[str]]:
        """Alias for :meth:`sccs` (already callees-first)."""
        return self.sccs()

    def top_down_sccs(self) -> list[list[str]]:
        return list(reversed(self.sccs()))


def build_call_graph(lowered: LoweredProgram) -> CallGraph:
    """Build the call graph from lowered call sites."""
    graph = CallGraph(
        nodes=sorted(lowered.procedures),
        main=lowered.program.main,
    )
    graph.out_edges = {name: [] for name in graph.nodes}
    graph.in_edges = {name: [] for name in graph.nodes}
    for site_id in sorted(lowered.call_sites):
        caller, call = lowered.call_sites[site_id]
        graph.out_edges[caller].append((call.callee, call))
        graph.in_edges[call.callee].append((caller, call))
    return graph
