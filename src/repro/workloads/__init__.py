"""Synthetic SPEC/PERFECT-style FORTRAN workloads.

The 1993 study ran on 12 scientific FORTRAN programs we cannot
redistribute. Each program here is generated deterministically from a
:class:`~repro.workloads.profiles.WorkloadProfile` describing its mix of
constant-flow idioms — literal arguments, locally computed constants,
pass-through chains, COMMON constants, ``ocean``-style initialization
routines, MOD-sensitive calls, dead branches, and value-killing READs —
tuned so each program reproduces the *shape* of its row in the paper's
Tables 2 and 3 (see DESIGN.md §2.1 for the substitution argument).

Every generated program parses, analyzes, and *runs* under the reference
interpreter, which is what lets the differential soundness tests cover the
whole suite.
"""

from repro.workloads.generator import GeneratedWorkload, generate
from repro.workloads.profiles import PROFILES, WorkloadProfile
from repro.workloads.suite import load, load_suite, suite_names

__all__ = [
    "GeneratedWorkload",
    "PROFILES",
    "WorkloadProfile",
    "generate",
    "load",
    "load_suite",
    "suite_names",
]
