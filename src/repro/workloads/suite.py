"""The generated test suite, cached.

``load_suite()`` materializes all 12 programs (≈ the paper's Table 1
suite); ``load(name, scale=...)`` fetches one, optionally scaled down for
fast tests. Results are memoized per (name, scale).

The 1k-procedure ``large`` family (``large_names()``) and the
~10k-procedure ``huge`` family (``huge_names()``) load through the same
:func:`load` but are *not* part of ``suite_names()``/``load_suite()``
— the Table experiments and suite-wide differential tests iterate those,
and the large/huge corpora belong to the ``slow``-marked scaling tier
and the flat-engine / persistent-slab benchmark gates only.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.generator import GeneratedWorkload, generate
from repro.workloads.profiles import HUGE_PROFILES, LARGE_PROFILES, PROFILES


def suite_names() -> list[str]:
    """Program names in the paper's (alphabetical) table order."""
    return list(PROFILES)


def large_names() -> list[str]:
    """The 1k-procedure scaling-tier program names."""
    return list(LARGE_PROFILES)


def huge_names() -> list[str]:
    """The ~10k-procedure persistent-slab tier program names."""
    return list(HUGE_PROFILES)


@lru_cache(maxsize=None)
def load(name: str, scale: float = 1.0) -> GeneratedWorkload:
    """Generate (or fetch the cached) workload ``name`` — a Table 1
    stand-in or a ``large`` scaling-tier corpus."""
    profile = (
        PROFILES.get(name) or LARGE_PROFILES.get(name) or HUGE_PROFILES[name]
    )
    if scale != 1.0:
        profile = profile.scaled(scale)
    return generate(profile)


def load_suite(scale: float = 1.0) -> dict[str, GeneratedWorkload]:
    """All (Table-order) programs; the large tier is excluded."""
    return {name: load(name, scale) for name in suite_names()}
