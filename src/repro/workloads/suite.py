"""The generated test suite, cached.

``load_suite()`` materializes all 12 programs (≈ the paper's Table 1
suite); ``load(name, scale=...)`` fetches one, optionally scaled down for
fast tests. Results are memoized per (name, scale).
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.generator import GeneratedWorkload, generate
from repro.workloads.profiles import PROFILES


def suite_names() -> list[str]:
    """Program names in the paper's (alphabetical) table order."""
    return list(PROFILES)


@lru_cache(maxsize=None)
def load(name: str, scale: float = 1.0) -> GeneratedWorkload:
    """Generate (or fetch the cached) workload ``name``."""
    profile = PROFILES[name]
    if scale != 1.0:
        profile = profile.scaled(scale)
    return generate(profile)


def load_suite(scale: float = 1.0) -> dict[str, GeneratedWorkload]:
    """All programs, in table order."""
    return {name: load(name, scale) for name in suite_names()}
