"""Per-program workload profiles.

One profile per program of the paper's test suite (Table 1). The idiom
counts are calibrated so each program reproduces the qualitative shape of
its row in Tables 2 and 3:

===========  ================================================================
adm          insensitive to the jump-function choice (constants are literal
             arguments), strongly MOD-sensitive, intraprocedural baseline
             close behind (many local constants).
doduc        literal arguments dominate; almost no local constants, so the
             intraprocedural baseline nearly vanishes; a couple of
             return-jump-function wins.
fpppp        mixed; one very large routine skews the size distribution.
linpackd     literal gap: many constants are computed or global, so the
             literal jump function loses badly; MOD essential.
matrix300    like linpackd with a visible intraprocedural/pass-through gap
             (constants flow through procedure bodies).
mdg          small; a single return-jump-function win; mild literal gap.
ocean        the return-jump-function showcase: an initialization routine
             assigns dozens of COMMON constants; without return jump
             functions most of the program's constants disappear; complete
             propagation exposes a few more (dead initialization branches).
qcd          almost everything is a literal argument; tiny MOD gap.
simple       extremely MOD-sensitive (calls everywhere); one huge routine.
snasa7       literal gap only; otherwise stable across configurations.
spec77       broad mix incl. dead-branch constants (complete propagation
             gains) and a wide literal gap.
trfd         tiny program, few constants, mild MOD gap.
===========  ================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class WorkloadProfile:
    """Idiom mix and shape targets for one generated program."""

    name: str
    seed: int
    #: Table 1 shape targets.
    phases: int = 4  # driver procedures under main
    pad_statements: int = 3  # filler computation lines per leaf body

    #: constants visible to every jump function (literal actual at a site).
    literal_args: int = 6
    #: constants computed into a local before the call (literal JF misses).
    intra_args: int = 2
    #: formal passed through d>=2 procedure bodies (pass-through+ only).
    passthrough_chains: int = 2
    chain_depth: int = 3
    #: COMMON members assigned constants directly in the main program.
    global_constants: int = 2
    #: COMMON members assigned constants inside an init routine (needs RJFs).
    init_routine_globals: int = 0
    #: constants that survive an intervening harmless call iff MOD is used.
    mod_sensitive: int = 2
    #: constants exposed only after dead-branch elimination (complete mode).
    dead_branch_constants: int = 0
    #: purely local constants (count for the intraprocedural baseline too).
    local_constants: int = 3
    #: values read from input and passed around (never constants).
    read_kills: int = 1
    #: call sites feeding one callee conflicting constants (meet to ⊥).
    conflicting_sites: int = 1
    #: one oversized routine, like fpppp/simple in Table 1.
    skewed: bool = False
    #: function-result constants (exercise the RESULT return jump function).
    function_results: int = 1
    #: kernels that set a formal to a constant and use it: counted by every
    #: configuration, including the intraprocedural baseline.
    set_use: int = 0
    #: set-use kernels with an intervening call: the constant dies without
    #: MOD information (but survives in the MOD-aware baseline).
    set_use_calls: int = 0
    #: fraction of kernels whose formal is used only after an innocuous
    #: internal call — these constants die without MOD information.
    leaf_call_fraction: float = 0.0
    #: extra kernels referencing a random COMMON constant (beyond the one
    #: kernel per global the generator always emits).
    extra_global_leaves: int = 0
    #: call global-referencing kernels from the main program directly
    #: (depth 1), so even the intraprocedural jump function sees them.
    shallow_globals: bool = False
    #: procedures forming one guarded recursion ring (a single giant SCC
    #: in the call graph); 0 disables the idiom.
    scc_ring: int = 0
    #: the recursion-depth constant driven into the ring — execution
    #: unwinds this many frames, so keep it small for executability.
    scc_depth: int = 3

    def scaled(self, factor: float) -> "WorkloadProfile":
        """A smaller/larger variant with the same shape (for fast tests)."""

        def scale(n: int) -> int:
            if n == 0:
                return 0
            return max(1, round(n * factor))

        return WorkloadProfile(
            name=self.name,
            seed=self.seed,
            phases=max(1, round(self.phases * factor)),
            pad_statements=self.pad_statements,
            literal_args=scale(self.literal_args),
            intra_args=scale(self.intra_args),
            passthrough_chains=scale(self.passthrough_chains),
            chain_depth=self.chain_depth,
            global_constants=scale(self.global_constants),
            init_routine_globals=scale(self.init_routine_globals),
            mod_sensitive=scale(self.mod_sensitive),
            dead_branch_constants=scale(self.dead_branch_constants),
            local_constants=scale(self.local_constants),
            read_kills=scale(self.read_kills),
            conflicting_sites=scale(self.conflicting_sites),
            skewed=self.skewed,
            function_results=scale(self.function_results),
            set_use=scale(self.set_use),
            set_use_calls=scale(self.set_use_calls),
            leaf_call_fraction=self.leaf_call_fraction,
            extra_global_leaves=scale(self.extra_global_leaves),
            shallow_globals=self.shallow_globals,
            scc_ring=scale(self.scc_ring),
            scc_depth=self.scc_depth,
        )


PROFILES: dict[str, WorkloadProfile] = {
    "adm": WorkloadProfile(
        name="adm", seed=101, phases=8, pad_statements=5,
        literal_args=6, intra_args=0, passthrough_chains=0,
        global_constants=0, mod_sensitive=0, local_constants=4,
        set_use=4, set_use_calls=38, read_kills=2, conflicting_sites=2,
        function_results=0,
    ),
    "doduc": WorkloadProfile(
        name="doduc", seed=102, phases=7, pad_statements=6,
        literal_args=52, intra_args=0, passthrough_chains=0,
        global_constants=0, mod_sensitive=0, local_constants=1,
        read_kills=2, conflicting_sites=3, function_results=2,
    ),
    "fpppp": WorkloadProfile(
        name="fpppp", seed=103, phases=4, pad_statements=5,
        literal_args=6, intra_args=2, passthrough_chains=1,
        global_constants=2, init_routine_globals=2, mod_sensitive=2,
        local_constants=2, set_use=6, set_use_calls=6,
        read_kills=1, conflicting_sites=1, skewed=True,
        leaf_call_fraction=0.4,
    ),
    "linpackd": WorkloadProfile(
        name="linpackd", seed=104, phases=5, pad_statements=4,
        literal_args=6, intra_args=10, passthrough_chains=0,
        global_constants=10, extra_global_leaves=6, shallow_globals=True,
        mod_sensitive=8, local_constants=2, set_use=0, set_use_calls=14,
        read_kills=2, conflicting_sites=1, leaf_call_fraction=1.0,
    ),
    "matrix300": WorkloadProfile(
        name="matrix300", seed=105, phases=4, pad_statements=3,
        literal_args=6, intra_args=4, passthrough_chains=3,
        chain_depth=3, global_constants=6, extra_global_leaves=2,
        mod_sensitive=6, local_constants=2, set_use=4, set_use_calls=10,
        read_kills=1, conflicting_sites=1, leaf_call_fraction=0.9,
    ),
    "mdg": WorkloadProfile(
        name="mdg", seed=106, phases=3, pad_statements=3,
        literal_args=5, intra_args=2, passthrough_chains=0,
        global_constants=1, init_routine_globals=1, mod_sensitive=2,
        local_constants=1, set_use=6, set_use_calls=2,
        read_kills=1, conflicting_sites=1, leaf_call_fraction=0.15,
        shallow_globals=True,
    ),
    "ocean": WorkloadProfile(
        name="ocean", seed=107, phases=6, pad_statements=4,
        literal_args=4, intra_args=2, passthrough_chains=0,
        global_constants=0, init_routine_globals=16,
        extra_global_leaves=60, shallow_globals=True,
        mod_sensitive=4, dead_branch_constants=4, local_constants=2,
        set_use=2, set_use_calls=6, read_kills=2, conflicting_sites=1,
        leaf_call_fraction=0.5,
    ),
    "qcd": WorkloadProfile(
        name="qcd", seed=108, phases=6, pad_statements=4,
        literal_args=4, intra_args=0, passthrough_chains=0,
        global_constants=0, mod_sensitive=0, local_constants=10,
        set_use=36, set_use_calls=3, read_kills=2, conflicting_sites=2,
        function_results=1,
    ),
    "simple": WorkloadProfile(
        name="simple", seed=109, phases=2, pad_statements=6,
        literal_args=1, intra_args=0, passthrough_chains=0,
        global_constants=0, mod_sensitive=0, local_constants=0,
        set_use=0, set_use_calls=34, read_kills=1, conflicting_sites=1,
        skewed=True, leaf_call_fraction=1.0, function_results=0,
    ),
    "snasa7": WorkloadProfile(
        name="snasa7", seed=110, phases=5, pad_statements=4,
        literal_args=8, intra_args=8, passthrough_chains=0,
        global_constants=6, shallow_globals=True, mod_sensitive=2,
        local_constants=4, set_use=24, set_use_calls=2,
        read_kills=1, conflicting_sites=2, leaf_call_fraction=0.1,
    ),
    "spec77": WorkloadProfile(
        name="spec77", seed=111, phases=8, pad_statements=4,
        literal_args=8, intra_args=6, passthrough_chains=0,
        global_constants=6, shallow_globals=True, mod_sensitive=6,
        dead_branch_constants=4, local_constants=4,
        set_use=4, set_use_calls=14, read_kills=3, conflicting_sites=2,
        leaf_call_fraction=0.6,
    ),
    "trfd": WorkloadProfile(
        name="trfd", seed=112, phases=2, pad_statements=4,
        literal_args=1, intra_args=0, passthrough_chains=0,
        global_constants=0, mod_sensitive=0,
        local_constants=1, set_use=5, set_use_calls=5,
        read_kills=1, conflicting_sites=1, function_results=0,
    ),
}

#: The ``large`` family: 1k-procedure corpora for the scaling tier
#: (ROADMAP "scale the workload axis by 100x"). Deliberately *not*
#: merged into :data:`PROFILES` — the Table 1–3 experiments and the
#: suite-wide differential tests iterate over PROFILES and must stay
#: fast; these load by name through :func:`repro.workloads.suite.load`
#: and run only under the ``slow`` marker and the flat-engine benchmark
#: gates. Each stresses a different call-graph shape:
#:
#: ``large_chain``
#:     deep pass-through chains — long dependency paths, one binding
#:     per procedure, the shape where propagation depth dominates.
#: ``large_fanout``
#:     wide flat fan-out from a few drivers — thousands of independent
#:     call sites, the shape where seed-sweep throughput dominates.
#: ``large_scc``
#:     one giant guarded-recursion ring (a single 800-member SCC) —
#:     the shape where iteration-to-fixpoint and delta fan-out
#:     dominate.
LARGE_PROFILES: dict[str, WorkloadProfile] = {
    "large_chain": WorkloadProfile(
        name="large_chain", seed=701, phases=8, pad_statements=2,
        literal_args=12, intra_args=6, passthrough_chains=24,
        chain_depth=40, global_constants=4, mod_sensitive=4,
        local_constants=6, read_kills=2, conflicting_sites=4,
        function_results=2,
    ),
    "large_fanout": WorkloadProfile(
        name="large_fanout", seed=702, phases=16, pad_statements=2,
        literal_args=400, intra_args=200, passthrough_chains=4,
        chain_depth=4, global_constants=8, extra_global_leaves=40,
        shallow_globals=True, mod_sensitive=20, local_constants=80,
        set_use=120, set_use_calls=120, read_kills=8,
        conflicting_sites=40, function_results=8,
    ),
    "large_scc": WorkloadProfile(
        name="large_scc", seed=703, phases=8, pad_statements=2,
        literal_args=40, intra_args=20, passthrough_chains=4,
        chain_depth=6, global_constants=4, mod_sensitive=8,
        local_constants=10, read_kills=4, conflicting_sites=10,
        function_results=2, scc_ring=880, scc_depth=3,
    ),
}

#: The ~10k-procedure tier the persistent-slab path exists for: big
#: enough that ``build_slab`` plus the phase-1 precompute is the
#: dominant cost of a flat solve, so a store-loaded slab shows its
#: ≥5x warm-vs-cold win end-to-end (``benchmarks/bench_slab_store.py``
#: gates it). Same fan-out shape as ``large_fanout`` — seed-sweep
#: throughput dominates, which is exactly the work a loaded slab skips.
#: Excluded from ``suite_names()`` *and* ``large_names()``: only the
#: ``slow``-marked scaling tests and the CI ``huge`` job load it.
HUGE_PROFILES: dict[str, WorkloadProfile] = {
    "huge_fanout": WorkloadProfile(
        name="huge_fanout", seed=801, phases=64, pad_statements=2,
        literal_args=3800, intra_args=1800, passthrough_chains=36,
        chain_depth=4, global_constants=12, extra_global_leaves=348,
        shallow_globals=True, mod_sensitive=180, local_constants=720,
        set_use=1140, set_use_calls=1140, read_kills=24,
        conflicting_sites=360, function_results=36,
    ),
}
