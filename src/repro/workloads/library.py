"""A hand-written BLAS-style MiniFortran library.

Shen, Li, and Yew ran their subscript study on FORTRAN *library* routines
(paper §1): code written against symbolic leading dimensions and strides
(`lda`, `incx`, ...) that become constants only once call sites are known.
Linearized indexing like ``a(lda * (j - 1) + i)`` is nonlinear to a
dependence analyzer until ``lda`` is a compile-time constant — exactly
what interprocedural constant propagation supplies.

This module is that study's substrate: a small dense-linear-algebra
library (copy/scale/axpy/dot/matvec/matmul/transpose/band solver) whose
driver fixes every dimension, so roughly half the subscripts flip from
nonlinear to linear when the CONSTANTS sets are applied. The program is
ordinary MiniFortran: it parses, analyzes, and runs under the reference
interpreter like everything else.
"""

LIBRARY_SOURCE = """
program bench
  integer lda, n, m, rstride, rwidth
  lda = 8
  n = 8
  m = 6
  ! runtime-dependent parameters: no analysis can recover these, so the
  ! routines they feed keep their nonlinear subscripts (the ~half that
  ! stayed nonlinear in the Shen-Li-Yew study)
  read rstride, rwidth
  call fill(lda, n)
  call vcopy(n, 1, 2)
  call vscale(n, 3)
  call vaxpy(n, 2)
  call matvec(lda, n, m)
  call matmul2(lda, n)
  call transp(lda, n)
  call bandfw(lda, n, 2)
  call vgather(n, rstride)
  call submat(lda, rwidth, n)
  call interleave(n, rstride, rwidth)
  call checks(n)
end

! dense fill: a(lda*(j-1)+i) — linear only when lda is known
subroutine fill(lda, n)
  integer lda, n, i, j
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do j = 1, n
    do i = 1, lda
      a(lda * (j - 1) + i) = i * 1.0 + j
      b(lda * (j - 1) + i) = j * 0.5
      c(lda * (j - 1) + i) = 0.0
    enddo
  enddo
  do i = 1, n
    x(i) = i * 1.0
    y(i) = 0.0
    z(i) = 1.0
  enddo
end

! strided vector copy: y(incy*i) = x(incx*i) — the incx/incy idiom
subroutine vcopy(n, incx, incy)
  integer n, incx, incy, i, half
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  half = n / incy
  do i = 1, half
    y(incy * i - 1) = x(incx * (i - 1) + 1)
  enddo
end

subroutine vscale(n, factor)
  integer n, factor, i
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do i = 1, n
    x(i) = x(i) * factor
  enddo
end

subroutine vaxpy(n, alpha)
  integer n, alpha, i
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  enddo
end

! matrix-vector product over the linearized matrix
subroutine matvec(lda, n, m)
  integer lda, n, m, i, j
  real rsum
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do i = 1, m
    rsum = 0.0
    do j = 1, n
      rsum = rsum + a(lda * (j - 1) + i) * x(j)
    enddo
    z(i) = rsum
  enddo
end

! c = a * b, all linearized with leading dimension lda
subroutine matmul2(lda, n)
  integer lda, n, i, j, k
  real rsum
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do j = 1, n
    do i = 1, n
      rsum = 0.0
      do k = 1, n
        rsum = rsum + a(lda * (k - 1) + i) * b(lda * (j - 1) + k)
      enddo
      c(lda * (j - 1) + i) = rsum
    enddo
  enddo
end

! in-place transpose of the upper triangle
subroutine transp(lda, n)
  integer lda, n, i, j
  real tmp
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do j = 2, n
    do i = 1, j - 1
      tmp = a(lda * (j - 1) + i)
      a(lda * (j - 1) + i) = a(lda * (i - 1) + j)
      a(lda * (i - 1) + j) = tmp
    enddo
  enddo
end

! banded forward elimination: bandwidth kb is a call-site constant
subroutine bandfw(lda, n, kb)
  integer lda, n, kb, i, j
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  do i = 2, n
    do j = 1, kb
      if (i - j >= 1) then
        z(i) = z(i) - a(lda * (i - j - 1) + i) * z(i - j) / 8.0
      endif
    enddo
  enddo
end

! strided gather: the stride is read at run time — forever nonlinear
subroutine vgather(n, stride)
  integer n, stride, i, lim
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  lim = n / stride
  do i = 1, lim
    y(i) = a(stride * (i - 1) + 1)
    z(i) = b(stride * i)
  enddo
end

! leading-dimension submatrix walk with a runtime width
subroutine submat(lda, width, n)
  integer lda, width, n, i, j, lim
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  lim = n / width
  do j = 1, lim
    do i = 1, width
      c(width * (j - 1) + i) = a(lda * (j - 1) + i) + b(width * (j - 1) + i)
    enddo
  enddo
end

! two runtime strides at once: every subscript here stays nonlinear
subroutine interleave(n, s1, s2)
  integer n, s1, s2, i, lim
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  lim = n / max(s1, s2)
  do i = 1, lim
    c(s1 * (i - 1) + 1) = a(s2 * (i - 1) + 1)
    c(s2 * i) = b(s1 * i)
    z(i) = a(s1 * i) + b(s2 * i)
  enddo
end

subroutine checks(n)
  integer n, i
  real total
  common /mem/ a, b, c, x, y, z
  real a(64), b(64), c(64)
  real x(8), y(8), z(8)
  total = 0.0
  do i = 1, n
    total = total + y(i) + z(i)
  enddo
  write total
end
"""


def library_program() -> str:
    """The library + driver as one compilation unit."""
    return LIBRARY_SOURCE
