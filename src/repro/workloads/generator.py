"""Deterministic MiniFortran program generator.

Given a :class:`WorkloadProfile`, emit a complete program assembled from
constant-flow idioms. The generator guarantees three properties the rest
of the project depends on:

1. **Determinism** — same profile, same program text (seeded RNG only).
2. **Executability** — every program runs to completion under the
   reference interpreter (loop bounds are small, every read has an input,
   nothing reads undefined storage), so the differential soundness oracle
   covers the entire suite.
3. **Idiom identity** — each idiom exercises exactly one constant-flow
   class, so a profile's mix translates directly into the shape of the
   program's Table 2/3 row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads.profiles import WorkloadProfile

_CONST_POOL = (3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 16, 17, 19, 21, 24, 25)


@dataclass
class GeneratedWorkload:
    """A generated program plus everything needed to run it."""

    name: str
    source: str
    inputs: list[int] = field(default_factory=list)
    profile: WorkloadProfile | None = None

    @property
    def line_count(self) -> int:
        return sum(
            1 for line in self.source.splitlines() if line.strip()
            and not line.strip().startswith("!")
        )


class _Builder:
    """Accumulates procedures and driver statements."""

    def __init__(self, profile: WorkloadProfile):
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.procedures: list[str] = []
        #: driver statements distributed round-robin over phase procedures.
        self.phase_stmts: list[list[str]] = [[] for _ in range(profile.phases)]
        self.phase_decls: list[list[str]] = [[] for _ in range(profile.phases)]
        self.inputs: list[int] = []
        self._counter = 0
        self._next_phase = 0
        self.global_names: list[str] = []
        self.global_values: dict[str, int] = {}
        self.init_globals: list[str] = []
        self.main_globals: list[str] = []
        self.main_stmts: list[str] = []  # shallow (depth-1) driver calls
        self._chk_emitted = False

    # -- small helpers ------------------------------------------------------

    def fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    def const(self) -> int:
        return self.rng.choice(_CONST_POOL)

    def phase_index(self) -> int:
        index = self._next_phase
        self._next_phase = (self._next_phase + 1) % self.profile.phases
        return index

    def add_stmt(self, phase: int, *stmts: str) -> None:
        self.phase_stmts[phase].extend(stmts)

    def add_decl(self, phase: int, decl: str) -> None:
        self.phase_decls[phase].append(decl)

    def common_decl(self) -> list[str]:
        """COMMON declaration lines naming every global (same everywhere)."""
        if not self.global_names:
            return []
        members = ", ".join(self.global_names)
        return [
            f"  common /gdat/ {members}",
            f"  integer {members}",
        ]

    def pad_lines(self, acc: str, extra: str) -> list[str]:
        """Filler computation: deterministic, defined, cheap to run."""
        lines = []
        for _ in range(self.profile.pad_statements):
            op = self.rng.choice(
                [
                    f"  {acc} = {acc} * 2 - 1",
                    f"  {acc} = mod({acc}, 97) + 3",
                    f"  {acc} = {acc} + {self.const()}",
                    f"  {extra} = {extra} * 1.5 + 0.25",
                    f"  {extra} = {extra} / 2.0 + 1.0",
                ]
            )
            lines.append(op)
        return lines

    # -- procedure templates ----------------------------------------------

    def _ensure_chk(self) -> None:
        """The shared innocuous helper leaves call before touching their
        formals; without MOD information this call clobbers everything."""
        if self._chk_emitted:
            return
        self._chk_emitted = True
        self.procedures.append(
            "\n".join(
                [
                    "subroutine chk(w)",
                    "  integer w, z",
                    "  z = w + 1",
                    "  write z",
                    "end",
                ]
            )
        )

    def emit_leaf(self, name: str, use_global: str | None = None) -> None:
        """A kernel that *references* its formal (so constants count) and
        uses it as a loop bound — the paper's motivating pattern.

        A profile-controlled fraction of kernels make an innocuous helper
        call before the formal's first use: with MOD information the
        constant flows past it untouched; without, it dies at the call.
        """
        with_call = self.rng.random() < self.profile.leaf_call_fraction
        decls = [f"subroutine {name}(k)", "  integer k, i, acc", "  real rw"]
        decls.extend(self.common_decl() if use_global else [])
        body = ["  acc = 0", "  rw = 1.0"]
        if with_call:
            self._ensure_chk()
            body.append("  call chk(0)")
        body.extend(
            [
                "  do i = 1, k",
                "    acc = acc + i",
                "  enddo",
            ]
        )
        body.extend(self.pad_lines("acc", "rw"))
        if use_global:
            body.append(f"  acc = acc + {use_global}")
            body.append(f"  if (acc > {use_global}) then")
            body.append(f"    acc = acc - {use_global}")
            body.append("  endif")
        body.append("  write acc")
        self.procedures.append("\n".join(decls + body + ["end"]))

    def emit_global_leaf(self, name: str, global_name: str) -> None:
        """A parameterless kernel driven entirely by one COMMON constant
        (used as a loop bound). Exactly one substitution pair when the
        global's value is known; nothing otherwise."""
        lines = [f"subroutine {name}"]
        lines.extend(self.common_decl())
        lines.extend(
            [
                "  integer i, acc",
                "  real rw",
                "  acc = 0",
                "  rw = 1.0",
                f"  do i = 1, {global_name}",
                "    acc = acc + i",
                "  enddo",
            ]
        )
        lines.extend(self.pad_lines("acc", "rw"))
        lines.extend(["  write acc", "end"])
        self.procedures.append("\n".join(lines))

    def emit_set_use(self, name: str, with_call: bool) -> None:
        """Set a formal to a constant, then use it — found by every
        configuration including the intraprocedural baseline. With an
        intervening call, the constant dies without MOD information."""
        c1 = self.const()
        c2 = self.const()
        lines = [f"subroutine {name}(k)", "  integer k, z", "  real rw"]
        lines.append(f"  k = {c1}")
        lines.append("  rw = 0.5")
        if with_call:
            self._ensure_chk()
            lines.append("  call chk(0)")
        lines.append(f"  z = k + {c2}")
        lines.extend(self.pad_lines("z", "rw"))
        lines.extend(["  write z", "end"])
        self.procedures.append("\n".join(lines))

    def emit_chain(self, first: str, depth: int, leaf_global: str | None = None) -> str:
        """first(x) -> ... -> leaf(x): pass-through of depth ``depth``."""
        names = [first] + [self.fresh("ch") for _ in range(depth - 1)]
        leaf = self.fresh("cleaf")
        self.emit_leaf(leaf, use_global=leaf_global)
        for here, nxt in zip(names, names[1:] + [leaf]):
            self.procedures.append(
                "\n".join(
                    [
                        f"subroutine {here}(x)",
                        "  integer x",
                        f"  call {nxt}(x)",
                        "end",
                    ]
                )
            )
        return first

    def emit_harmless(self, name: str) -> None:
        """Reads (never writes) its by-reference argument."""
        self.procedures.append(
            "\n".join(
                [
                    f"subroutine {name}(w)",
                    "  integer w, z",
                    "  z = w + 1",
                    "  write z",
                    "end",
                ]
            )
        )

    def emit_local_const_proc(self, name: str) -> None:
        """Purely local constants — the intraprocedural baseline's food."""
        c1 = self.const()
        c2 = self.const()
        self.procedures.append(
            "\n".join(
                [
                    f"subroutine {name}",
                    "  integer p, q, r",
                    f"  p = {c1}",
                    f"  q = p * {c2}",
                    "  r = q - p",
                    "  write r",
                    "end",
                ]
            )
        )

    def emit_const_function(self, name: str) -> None:
        self.procedures.append(
            "\n".join(
                [
                    f"integer function {name}(x)",
                    "  integer x",
                    f"  {name} = {self.const()}",
                    "  write x",
                    "end",
                ]
            )
        )

    def emit_big_kernel(self, name: str) -> None:
        """One oversized routine (fpppp/simple size skew in Table 1)."""
        lines = [
            f"subroutine {name}(n)",
            "  integer n, i, j, acc",
            "  real work(20)",
            "  real rsum",
            "  acc = 0",
            "  rsum = 0.0",
            "  do i = 1, 20",
            "    work(i) = i * 0.5",
            "  enddo",
        ]
        for block in range(12):
            lines.extend(
                [
                    f"  do i = 1, n",
                    f"    acc = acc + i * {block + 2}",
                    f"    do j = 1, 4",
                    "      rsum = rsum + work(j) * 0.25",
                    "    enddo",
                    "  enddo",
                    f"  acc = mod(acc, {97 + block})",
                    "  rsum = rsum / 2.0",
                ]
            )
        lines.extend(["  write acc", "  write rsum", "end"])
        self.procedures.append("\n".join(lines))


def generate(profile: WorkloadProfile) -> GeneratedWorkload:
    """Generate the program for ``profile``."""
    builder = _Builder(profile)
    _plan_globals(builder)
    _emit_idioms(builder)
    source = _assemble(builder)
    return GeneratedWorkload(
        name=profile.name,
        source=source,
        inputs=builder.inputs,
        profile=profile,
    )


def _plan_globals(builder: _Builder) -> None:
    profile = builder.profile
    total = profile.global_constants + profile.init_routine_globals
    for index in range(total):
        name = f"gv{index + 1}"
        builder.global_names.append(name)
        builder.global_values[name] = builder.const() * 10 + index
        if index < profile.global_constants:
            builder.main_globals.append(name)
        else:
            builder.init_globals.append(name)


def _emit_idioms(builder: _Builder) -> None:
    profile = builder.profile

    # 1. literal arguments: every jump function finds these.
    for _ in range(profile.literal_args):
        leaf = builder.fresh("lf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        builder.add_stmt(phase, f"  call {leaf}({builder.const()})")

    # 2. locally computed constant arguments: literal JF misses these.
    for _ in range(profile.intra_args):
        leaf = builder.fresh("ilf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        var = builder.fresh("iv")
        builder.add_decl(phase, f"  integer {var}")
        builder.add_stmt(
            phase,
            f"  {var} = {builder.const()} + {builder.const()}",
            f"  call {leaf}({var})",
        )

    # 3. pass-through chains: depth >= 2, only pass-through/polynomial.
    for _ in range(profile.passthrough_chains):
        first = builder.fresh("pt")
        use_global = None
        if builder.global_names and builder.rng.random() < 0.5:
            use_global = builder.rng.choice(builder.global_names)
        builder.emit_chain(first, profile.chain_depth, leaf_global=use_global)
        phase = builder.phase_index()
        builder.add_stmt(phase, f"  call {first}({builder.const()})")

    # 4. globals referenced in leaves (constants passed implicitly).
    global_leaf_targets = list(builder.global_names)
    for _ in range(profile.extra_global_leaves):
        if builder.global_names:
            global_leaf_targets.append(builder.rng.choice(builder.global_names))
    for name in global_leaf_targets:
        leaf = builder.fresh("glf")
        builder.emit_global_leaf(leaf, name)
        if profile.shallow_globals:
            builder.main_stmts.append(f"  call {leaf}")
        else:
            phase = builder.phase_index()
            builder.add_stmt(phase, f"  call {leaf}")

    # 4b. set-use kernels: constants every configuration can substitute;
    # the with-call variant dies without MOD information.
    for index in range(profile.set_use + profile.set_use_calls):
        proc = builder.fresh("su")
        builder.emit_set_use(proc, with_call=index < profile.set_use_calls)
        phase = builder.phase_index()
        builder.add_stmt(phase, f"  call {proc}(0)")

    # 5. MOD-sensitive constants: two flavours (global clobber / arg read).
    for index in range(profile.mod_sensitive):
        harmless = builder.fresh("hm")
        builder.emit_harmless(harmless)
        leaf = builder.fresh("mlf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        var = builder.fresh("mv")
        builder.add_decl(phase, f"  integer {var}")
        constant = builder.const()
        if index % 2 == 0 or not builder.global_names:
            # pass the constant to the harmless call itself
            builder.add_stmt(
                phase,
                f"  {var} = {constant}",
                f"  call {harmless}({var})",
                f"  call {leaf}({var})",
            )
        else:
            # a harmless call stands between a global's def and its use
            builder.add_stmt(
                phase,
                f"  {var} = 1",
                f"  call {harmless}({var})",
                f"  call {leaf}({builder.rng.choice(builder.global_names)})",
            )

    # 6. dead-branch constants: complete propagation wins these.
    for _ in range(profile.dead_branch_constants):
        leaf = builder.fresh("dlf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        flag = builder.fresh("fl")
        builder.add_decl(phase, f"  integer {flag}")
        dead_const = builder.const()
        live_const = builder.const() + 30  # distinct from the dead one
        builder.add_stmt(
            phase,
            f"  {flag} = 0",
            f"  if ({flag} /= 0) then",
            f"    call {leaf}({dead_const})",
            "  endif",
            f"  call {leaf}({live_const})",
            # keep the flag live so dead-store elimination does not erase
            # its own (constant) reference when the branch folds
            f"  write {flag}",
        )

    # 7. purely local constants.
    for _ in range(profile.local_constants):
        proc = builder.fresh("loc")
        builder.emit_local_const_proc(proc)
        phase = builder.phase_index()
        builder.add_stmt(phase, f"  call {proc}")

    # 8. values read at run time: never constants.
    for _ in range(profile.read_kills):
        leaf = builder.fresh("rlf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        var = builder.fresh("rv")
        builder.add_decl(phase, f"  integer {var}")
        builder.inputs.append(builder.const())
        builder.add_stmt(phase, f"  read {var}", f"  call {leaf}({var})")

    # 9. conflicting constants at different sites: meet to ⊥.
    for _ in range(profile.conflicting_sites):
        leaf = builder.fresh("cf")
        builder.emit_leaf(leaf)
        first = builder.phase_index()
        second = builder.phase_index()
        builder.add_stmt(first, f"  call {leaf}({builder.const()})")
        builder.add_stmt(second, f"  call {leaf}({builder.const() + 50})")

    # 10. constant-returning functions (RESULT return jump functions).
    for _ in range(profile.function_results):
        function = builder.fresh("fc")
        builder.emit_const_function(function)
        leaf = builder.fresh("flf")
        builder.emit_leaf(leaf)
        phase = builder.phase_index()
        var = builder.fresh("fv")
        builder.add_decl(phase, f"  integer {var}")
        builder.add_stmt(
            phase, f"  {var} = {function}(1)", f"  call {leaf}({var})"
        )

    # 11. the size skew of fpppp/simple.
    if profile.skewed:
        kernel = builder.fresh("bigk")
        builder.emit_big_kernel(kernel)
        phase = builder.phase_index()
        builder.add_stmt(phase, f"  call {kernel}(6)")

    # 12. one giant SCC: a guarded recursion ring. Every member calls
    # the next (the last wraps to the first), so the static call graph
    # has a single `scc_ring`-member strongly connected component, while
    # execution unwinds only `scc_depth + 1` frames before the guard
    # stops it. The depth counter is a polynomial jump function (d - 1)
    # that meets to ⊥ around the cycle; the payload passes through
    # unchanged and stays constant — a region solver must iterate the
    # whole component to prove both.
    if profile.scc_ring:
        ring = [builder.fresh("rg") for _ in range(profile.scc_ring)]
        for here, nxt in zip(ring, ring[1:] + ring[:1]):
            builder.procedures.append(
                "\n".join(
                    [
                        f"subroutine {here}(d, x)",
                        "  integer d, x, z",
                        "  if (d > 0) then",
                        f"    call {nxt}(d - 1, x)",
                        "  endif",
                        "  z = x + 1",
                        "  write z",
                        "end",
                    ]
                )
            )
        phase = builder.phase_index()
        builder.add_stmt(
            phase, f"  call {ring[0]}({profile.scc_depth}, {builder.const()})"
        )


def _assemble(builder: _Builder) -> str:
    profile = builder.profile
    units: list[str] = []

    # init routine (ocean-style): assigns its globals constants.
    if builder.init_globals:
        lines = ["subroutine init"]
        lines.extend(builder.common_decl())
        for name in builder.init_globals:
            lines.append(f"  {name} = {builder.global_values[name]}")
        lines.append("end")
        units.append("\n".join(lines))

    # phase procedures.
    phase_names = []
    for index in range(profile.phases):
        name = f"phase{index + 1}"
        phase_names.append(name)
        lines = [f"subroutine {name}"]
        lines.extend(builder.common_decl())
        lines.extend(builder.phase_decls[index])
        stmts = builder.phase_stmts[index] or ["  write 0"]
        lines.extend(stmts)
        lines.append("end")
        units.append("\n".join(lines))

    # main program.
    main_lines = [f"program {profile.name}"]
    main_lines.extend(builder.common_decl())
    for name in builder.main_globals:
        main_lines.append(f"  {name} = {builder.global_values[name]}")
    if builder.init_globals:
        main_lines.append("  call init")
    main_lines.extend(builder.main_stmts)
    for name in phase_names:
        main_lines.append(f"  call {name}")
    main_lines.append("end")

    units.extend(builder.procedures)
    header = (
        f"! {profile.name}: synthetic workload (seed {profile.seed})\n"
        "! generated by repro.workloads — idiom mix documented in profiles.py\n"
    )
    return header + "\n\n".join(["\n".join(main_lines)] + units) + "\n"
