"""The daemon itself: one :class:`AnalysisService`, two transports.

:class:`AnalysisService` is transport-agnostic — :meth:`handle` takes
one JSON payload and returns one JSON response, synchronously on the
calling thread. The stdio-JSONL loop calls it per line; the HTTP server
calls it per POST on its per-connection threads. A submission walks:

1. parse (RL555 before anything else touches it);
2. response cache / store lookup — *before* admission, so repeats and
   warm answers still complete while the waiting room is full;
3. in-flight dedup — concurrent equals coalesce onto the leader's solve
   and share its fate (response or typed rejection alike);
4. admission (drain RL552, token bucket RL551, bounded queue RL550);
5. the circuit breaker picks the serving mode (NORMAL…FLOOR, or RL553);
6. the journal durably records ``begin``;
7. the solve runs on a bounded worker slot under a per-request
   :class:`~repro.resilience.cancel.CancelToken` (RL554 on expiry);
8. the journal records ``done``; exact NORMAL-mode responses are cached.

A daemon killed between 6 and 8 leaves a begin with no done; on restart
the journal's interrupted entries are deterministically **replayed**
(re-solved from the journaled payload — a full re-solve, so nothing
stale can surface — and published to the cache for the client's retry)
or **refused** (RL556 recorded), per :attr:`ServicePolicy.replay`.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field, replace

from repro.core.driver import Stage0Cache, analyze
from repro.resilience.cancel import (
    CancelledError,
    CancelToken,
    install_token,
    uninstall_token,
)
from repro.resilience.chaos import chaos_point
from repro.resilience.errors import (
    CODE_SERVICE_DEADLINE,
    CODE_SERVICE_INTERRUPTED,
    CODE_SERVICE_BREAKER_DEGRADED,
    ServiceError,
    Stage,
)
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker, ServiceMode
from repro.service.dedup import InFlightTable, ResponseCache, request_fingerprint
from repro.service.journal import RequestJournal
from repro.service.protocol import (
    ProtocolError,
    ServiceRequest,
    error_response,
    parse_request,
    response_for,
)


@dataclass
class ServicePolicy:
    """Every knob the daemon's robustness spine exposes."""

    workers: int = 2
    queue_limit: int = 8
    tenant_rate: float = 5.0
    tenant_burst: int = 20
    request_timeout: float = 30.0
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0
    #: jump-function evaluation budget forced onto requests while the
    #: breaker holds the service at DEGRADE or COLD.
    degrade_evaluations: int = 20_000
    drain_timeout: float = 10.0
    #: replay journaled in-flight requests on restart (False = refuse
    #: them with RL556); either way the decision is deterministic.
    replay: bool = True
    cache_capacity: int = 256
    #: mirror exact responses into the artifact store's response tier.
    #: Off, the store still serves solver-side warm starts — boxed
    #: snapshots and persistent slabs — so a repeat request re-solves
    #: against a loaded slab (``served: "slab"``) instead of being
    #: answered from a stored response body.
    persist_responses: bool = True


class AnalysisService:
    """The serving core: admission, dedup, breaker, journal, drain."""

    def __init__(
        self,
        policy: ServicePolicy | None = None,
        *,
        store=None,
        journal: RequestJournal | None = None,
        clock=time.monotonic,
    ):
        self.policy = policy or ServicePolicy()
        self._store = store
        self._journal = journal
        self._clock = clock
        # Private stage-0 cache: daemon lifetime, not process-global, so
        # a test daemon never warms (or poisons) the CLI's cache.
        self._stage0 = Stage0Cache()
        self.admission = AdmissionController(
            self.policy.queue_limit,
            self.policy.tenant_rate,
            self.policy.tenant_burst,
            clock,
        )
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown, clock
        )
        self._inflight = InFlightTable()
        self.cache = ResponseCache(
            self.policy.cache_capacity,
            store if self.policy.persist_responses else None,
        )
        self._slots = threading.BoundedSemaphore(self.policy.workers)
        self._draining = threading.Event()
        self._active = 0
        self._active_cond = threading.Condition()
        self._id_lock = threading.Lock()
        self._next_id = 0
        self.served: dict[str, int] = {
            "cold": 0, "warm": 0, "slab": 0, "cache": 0, "store": 0,
            "dedup": 0, "replayed": 0, "errors": 0,
        }
        #: what startup recovery decided for each interrupted request.
        self.recovered: list[dict] = []
        self._recover()

    # -- startup recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Deterministically settle every journaled in-flight request."""
        if self._journal is None:
            return
        for event in self._journal.interrupted():
            request_id = event["id"]
            fingerprint = event.get("fingerprint", "")
            if not self.policy.replay:
                self._journal.recovered(request_id, "refused")
                self.recovered.append(
                    {
                        "id": request_id,
                        "status": "refused",
                        "code": CODE_SERVICE_INTERRUPTED,
                    }
                )
                continue
            try:
                request = parse_request(event["request"], default_id=request_id)
                response = self._run(request, fingerprint, ServiceMode.NORMAL)
                self._maybe_cache(fingerprint, ServiceMode.NORMAL, response)
                self.breaker.record_success()
                self._journal.recovered(request_id, "replayed")
                self.served["replayed"] += 1
                self.recovered.append(
                    {"id": request_id, "status": "replayed"}
                )
            except Exception as exc:
                # A replay that fails is refused — still terminal, still
                # journaled, so the next restart does not loop on it.
                self._journal.recovered(request_id, "refused")
                self.recovered.append(
                    {
                        "id": request_id,
                        "status": "refused",
                        "code": CODE_SERVICE_INTERRUPTED,
                        "error": str(exc),
                    }
                )

    # -- the request lifecycle -------------------------------------------------

    def handle(self, payload) -> dict:
        """One submission in, one response out — never raises."""
        raw_id = payload.get("id") if isinstance(payload, dict) else None
        raw_id = raw_id if isinstance(raw_id, str) else None
        try:
            request = parse_request(payload, default_id=self._fresh_id())
        except ProtocolError as error:
            self.served["errors"] += 1
            return error_response(raw_id, error)
        try:
            return self.submit(request)
        except Exception as error:
            self.served["errors"] += 1
            return error_response(request.id, error)

    def submit(self, request: ServiceRequest) -> dict:
        """The numbered lifecycle from the module docstring. Raises
        :class:`ServiceError` for typed rejections; :meth:`handle` turns
        those into response dicts for the transports."""
        if self._draining.is_set():
            self.admission.admit(request.tenant, draining=True)  # raises
        fingerprint = request_fingerprint(
            request.analysis, request.config, request.source
        )
        cached = self.cache.get(fingerprint)
        if cached is not None:
            response, tier = cached
            self.served[tier] += 1
            return response_for(response, request, tier)

        is_leader, flight = self._inflight.begin_or_join(fingerprint)
        if not is_leader:
            timeout = request.timeout or self.policy.request_timeout
            if not flight.event.wait(timeout):
                raise ServiceError(
                    CODE_SERVICE_DEADLINE,
                    "deadline",
                    "coalesced request timed out waiting for its leader",
                )
            self.served["dedup"] += 1
            return response_for(flight.response, request, "dedup")

        response: dict | None = None
        try:
            self.admission.admit(request.tenant)
            try:
                mode = self.breaker.allow()
                if self._journal is not None:
                    self._journal.begin(
                        request.id, fingerprint, request.to_json()
                    )
                # the chaos harness's service hook: a `kill` fault here
                # dies with the begin journaled but no done — exactly
                # the window the restart tests must recover from
                chaos_point(Stage.SERVICE, scope="admitted")
                with self._track_active():
                    response = self._guarded_run(request, fingerprint, mode)
                self._maybe_cache(fingerprint, mode, response)
                if self._journal is not None:
                    self._journal.done(request.id, fingerprint, "ok")
            finally:
                self.admission.leave()
        except ServiceError as error:
            response = error_response(request.id, error)
            self.served["errors"] += 1
            if self._journal is not None:
                self._journal.done(request.id, fingerprint, "error")
            raise
        finally:
            # Followers share the leader's fate — response or typed
            # rejection — so nobody ever hangs on an abandoned flight.
            self._inflight.finish(
                fingerprint,
                response
                if response is not None
                else error_response(request.id, ProtocolError("leader died")),
            )
        self.served[response.get("served", "cold")] = (
            self.served.get(response.get("served", "cold"), 0) + 1
        )
        return response

    def _guarded_run(
        self, request: ServiceRequest, fingerprint: str, mode: ServiceMode
    ) -> dict:
        """Run the solve and feed the breaker: unexpected solver failures
        strike it; deadlines and typed rejections do not (they say
        nothing about solver health)."""
        try:
            response = self._run(request, fingerprint, mode)
        except CancelledError as error:
            raise ServiceError(
                CODE_SERVICE_DEADLINE, "deadline", str(error)
            ) from error
        except ServiceError:
            raise
        except Exception:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return response

    def _run(
        self, request: ServiceRequest, fingerprint: str, mode: ServiceMode
    ) -> dict:
        """One solve on a bounded worker slot under a cancel token."""
        timeout = request.timeout or self.policy.request_timeout
        token = CancelToken(self._clock() + timeout, clock=self._clock)
        remaining = token.remaining()
        if not self._slots.acquire(timeout=remaining):
            raise ServiceError(
                CODE_SERVICE_DEADLINE,
                "deadline",
                f"no worker slot freed within {timeout:g}s",
            )
        try:
            install_token(token)
            try:
                started = time.perf_counter()
                response = self._solve(request, fingerprint, mode)
                response["elapsed_ms"] = round(
                    (time.perf_counter() - started) * 1000.0, 3
                )
                return response
            finally:
                uninstall_token()
        finally:
            self._slots.release()

    def _effective_config(self, request: ServiceRequest, mode: ServiceMode):
        """Map the breaker's serving mode onto the request's config.

        DEGRADE forces a finite evaluation budget (and the ladder) onto
        requests that did not bring one; COLD additionally forgoes the
        store warm start; FLOOR runs the intraprocedural baseline — each
        rung strictly cheaper, every rung sound.
        """
        config = request.config
        if mode is ServiceMode.FLOOR:
            return replace(config, intraprocedural_only=True)
        if mode in (ServiceMode.DEGRADE, ServiceMode.COLD):
            budget = config.max_evaluations
            if budget is None or budget > self.policy.degrade_evaluations:
                budget = self.policy.degrade_evaluations
            return replace(
                config, max_evaluations=budget, degrade_on_budget=True
            )
        return config

    def _solve(
        self, request: ServiceRequest, fingerprint: str, mode: ServiceMode
    ) -> dict:
        effective = self._effective_config(request, mode)
        use_store = (
            self._store is not None
            and mode in (ServiceMode.NORMAL, ServiceMode.DEGRADE)
        )
        incremental = use_store and request.incremental
        result = analyze(
            request.source,
            effective,
            cache=self._stage0,
            store=self._store if use_store else None,
            incremental=incremental,
        )
        report = result.incremental
        if report is not None and report.mode.startswith("slab"):
            served = "slab"  # the store's slab tier skipped build_slab
        elif report is not None and report.mode == "warm":
            served = "warm"
        else:
            served = "cold"
        response: dict = {
            "id": request.id,
            "status": "ok",
            "served": served,
            "fingerprint": fingerprint,
            "analysis": request.analysis,
            "mode": mode.value,
            "result": self._render(request, result),
            "degradations": [r.describe() for r in result.degradations],
            "diagnostics": [
                d.format_text() for d in result.resilience_diagnostics()
            ],
        }
        if mode is not ServiceMode.NORMAL:
            # the breaker rerouted this request — RL557, never silent
            response["service_degradations"] = [
                f"{CODE_SERVICE_BREAKER_DEGRADED} "
                f"normal->{mode.value} (breaker "
                f"strikes={self.breaker.strikes})"
            ]
        if request.want_stats:
            response["stats"] = result.stats_json()
        return response

    def _render(self, request: ServiceRequest, result) -> dict:
        """The per-analysis result payload (mirrors the CLI renderings)."""
        if request.analysis == "constprop":
            return {
                "constants_found": result.constants_found,
                "references_substituted": result.references_substituted,
                "constants": {
                    proc: {
                        name: str(value)
                        for name, value in sorted(constants.items())
                    }
                    for proc, constants in result.all_constants().items()
                    if constants
                },
            }

        from repro.framework.engine import solve_client

        def pretty(key) -> str:
            if isinstance(key, str):
                return key
            return result.program.global_display(key)

        if request.analysis == "copyprop":
            from repro.framework.clients.copyprop import (
                CopyOf,
                CopyPropClient,
                copy_facts,
            )

            solved = solve_client(
                result.lowered, result.call_graph,
                CopyPropClient(result.forward),
            )
            facts = copy_facts(solved)
            return {
                "copies": {
                    proc: {
                        pretty(key): f"{value.proc}::{pretty(value.key)}"
                        for key, value in sorted(
                            env.items(), key=lambda item: pretty(item[0])
                        )
                    }
                    for proc, env in sorted(facts.items())
                    if env
                },
                "copy_facts": sum(len(env) for env in facts.values()),
                "constant_facts": sum(
                    1
                    for env in solved.val.values()
                    for value in env.values()
                    if value.__class__ is not CopyOf
                ),
                "counters": dict(solved.counters()),
            }

        # modref
        from repro.framework.clients.modref import (
            ModRefClient,
            cross_check_modref,
        )

        solved = solve_client(result.lowered, result.call_graph, ModRefClient())

        def render_slots(slots) -> list[str]:
            return sorted(pretty(payload) for _kind, payload in slots)

        findings = cross_check_modref(
            result.lowered, result.call_graph, solved, info=result.modref
        )
        return {
            "summaries": {
                proc: {
                    "mod": render_slots(env.get("mod", frozenset())),
                    "ref": render_slots(env.get("ref", frozenset())),
                }
                for proc, env in sorted(solved.val.items())
            },
            "cross_check": [d.format_text() for d in findings],
            "counters": dict(solved.counters()),
        }

    def _maybe_cache(
        self, fingerprint: str, mode: ServiceMode, response: dict
    ) -> None:
        """Only exact results enter the cache: a NORMAL-mode run with no
        degradations. Degraded answers are served (marked) but never
        stored, so nothing a healthy request reads was produced under
        duress."""
        if (
            mode is ServiceMode.NORMAL
            and response.get("status") == "ok"
            and not response.get("degradations")
        ):
            self.cache.put(fingerprint, response)

    # -- lifecycle / observability --------------------------------------------

    def _fresh_id(self) -> str:
        with self._id_lock:
            self._next_id += 1
            return f"req-{self._next_id}"

    def _track_active(self):
        service = self

        class _Tracker:
            def __enter__(self):
                with service._active_cond:
                    service._active += 1

            def __exit__(self, *exc):
                with service._active_cond:
                    service._active -= 1
                    service._active_cond.notify_all()

        return _Tracker()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting (RL552), wait for in-flight work, report
        whether everything finished inside the drain window."""
        self._draining.set()
        deadline = self._clock() + (
            timeout if timeout is not None else self.policy.drain_timeout
        )
        with self._active_cond:
            while self._active > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._active_cond.wait(remaining)
        return True

    def healthy(self) -> bool:
        """Liveness: the process can still parse and answer."""
        return True

    def ready(self) -> bool:
        """Readiness: would a fresh submission be admitted right now?"""
        return not self._draining.is_set() and not self.breaker.is_open()

    def stats(self) -> dict:
        return {
            "served": dict(self.served),
            "admission": self.admission.counters(),
            "breaker": self.breaker.state(),
            "cache": self.cache.counters(),
            "dedup": {
                "coalesced": self._inflight.coalesced,
                "in_flight": len(self._inflight),
            },
            "stage0": self._stage0.counters(),
            "recovered": list(self.recovered),
            "draining": self._draining.is_set(),
        }


# -- the stdio-JSONL transport -------------------------------------------------


def serve_stdio(service: AnalysisService, stdin=None, stdout=None) -> int:
    """One JSON object per line in, one per line out; EOF drains."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            response = error_response(
                None, ProtocolError("request line is not valid JSON")
            )
        else:
            response = service.handle(payload)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
    service.drain()
    return 0


# -- the HTTP transport --------------------------------------------------------

#: RL55x -> HTTP status for the POST /analyze response envelope.
_HTTP_STATUS = {
    "RL550": 429,
    "RL551": 429,
    "RL552": 503,
    "RL553": 503,
    "RL554": 504,
    "RL555": 400,
    "RL556": 409,
}


def make_http_server(service: AnalysisService, host: str, port: int):
    """A ``ThreadingHTTPServer`` bound to ``host:port``:

    - ``POST /analyze`` — one request payload, one response;
    - ``GET /healthz`` — liveness (200 while the process answers);
    - ``GET /readyz`` — admission readiness (503 draining/breaker-open);
    - ``GET /stats`` — the service counters.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # quiet: the journal is the record
            pass

        def _reply(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):
            if self.path == "/healthz":
                self._reply(200, {"status": "ok"})
            elif self.path == "/readyz":
                if service.ready():
                    self._reply(200, {"status": "ready"})
                else:
                    reason = (
                        "draining" if service.draining else "breaker-open"
                    )
                    self._reply(503, {"status": reason})
            elif self.path == "/stats":
                self._reply(200, service.stats())
            else:
                self._reply(404, {"status": "not-found"})

        def do_POST(self):
            if self.path != "/analyze":
                self._reply(404, {"status": "not-found"})
                return
            length = int(self.headers.get("Content-Length", 0))
            try:
                payload = json.loads(self.rfile.read(length) or b"")
            except ValueError:
                self._reply(
                    400,
                    error_response(
                        None, ProtocolError("request body is not valid JSON")
                    ),
                )
                return
            response = service.handle(payload)
            if response.get("status") == "ok":
                self._reply(200, response)
            else:
                self._reply(
                    _HTTP_STATUS.get(response.get("code", ""), 500), response
                )

    return ThreadingHTTPServer((host, port), Handler)


def serve_http(service: AnalysisService, host: str, port: int) -> int:
    """Run the HTTP transport until SIGTERM/SIGINT, then drain."""
    server = make_http_server(service, host, port)

    def _shutdown(signum, frame):
        # shutdown() must not run on the serve_forever thread
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    print(
        f"repro serve: listening on http://{host}:{server.server_address[1]}/",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        drained = service.drain()
        print(
            "repro serve: drained cleanly"
            if drained
            else "repro serve: drain timed out with requests in flight",
            file=sys.stderr,
        )
    return 0
