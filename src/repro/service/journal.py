"""The crash-safe request journal.

Same fsync'd JSONL discipline as the sweep journal
(:mod:`repro.resilience.journal`): line 0 is a header, every event is a
single appended line flushed and fsync'd before the daemon acts on it, a
torn final line is ignored, and a foreign or unreadable header truncates
the file — a journal is replayed exactly or not at all.

Events::

    {"kind": "header", "schema": 1, "fingerprint": "repro-service"}
    {"kind": "begin", "id": "r1", "fingerprint": "...", "request": {...}}
    {"kind": "done", "id": "r1", "fingerprint": "...", "status": "ok"}
    {"kind": "recovered", "id": "r1", "status": "replayed"|"refused"}

``begin`` is written *after* admission but *before* the solve, so a
daemon killed mid-request leaves a begin with no done. On restart
:meth:`RequestJournal.interrupted` surfaces exactly those requests — the
full request payload rides in the begin line, so the daemon can replay
the work (re-execute and publish, nothing stale: a replay is a complete
re-solve) or refuse it (RL556), deterministically either way. The
``recovered`` event marks the verdict so a second restart does not
replay the same request twice.
"""

from __future__ import annotations

import json
import os

SCHEMA = 1
FINGERPRINT = "repro-service"


class RequestJournal:
    """Append-only record of request admissions and completions."""

    def __init__(self, path: str):
        self.path = path
        self._ensure_header()

    # -- reading --------------------------------------------------------------

    def interrupted(self) -> list[dict]:
        """Begin events with no terminal (done/recovered) event, in
        admission order — the daemon's recovery work list. A missing or
        foreign journal yields nothing (and is re-headed)."""
        events = self._load_events()
        begins: dict[str, dict] = {}
        order: list[str] = []
        for event in events:
            kind = event.get("kind")
            request_id = event.get("id")
            if not isinstance(request_id, str):
                continue
            if kind == "begin" and isinstance(event.get("request"), dict):
                if request_id not in begins:
                    order.append(request_id)
                begins[request_id] = event
            elif kind in ("done", "recovered"):
                begins.pop(request_id, None)
        return [begins[request_id] for request_id in order
                if request_id in begins]

    def _load_events(self) -> list[dict]:
        if not os.path.exists(self.path):
            return []
        events: list[dict] = []
        header_ok = False
        with open(self.path) as handle:
            for line_no, line in enumerate(handle):
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn write: ignore, keep earlier events
                if line_no == 0:
                    header_ok = (
                        isinstance(event, dict)
                        and event.get("kind") == "header"
                        and event.get("schema") == SCHEMA
                        and event.get("fingerprint") == FINGERPRINT
                    )
                    if not header_ok:
                        break
                    continue
                if isinstance(event, dict):
                    events.append(event)
        if not header_ok:
            self._write_header()
            return []
        return events

    # -- writing --------------------------------------------------------------

    def _ensure_header(self) -> None:
        if not os.path.exists(self.path):
            self._write_header()

    def _write_header(self) -> None:
        with open(self.path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "kind": "header",
                        "schema": SCHEMA,
                        "fingerprint": FINGERPRINT,
                    }
                )
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())

    def _append(self, event: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(event) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def begin(self, request_id: str, fingerprint: str, request: dict) -> None:
        """Durably record an admitted request before any work happens."""
        self._append(
            {
                "kind": "begin",
                "id": request_id,
                "fingerprint": fingerprint,
                "request": request,
            }
        )

    def done(self, request_id: str, fingerprint: str, status: str) -> None:
        self._append(
            {
                "kind": "done",
                "id": request_id,
                "fingerprint": fingerprint,
                "status": status,
            }
        )

    def recovered(self, request_id: str, status: str) -> None:
        self._append(
            {"kind": "recovered", "id": request_id, "status": status}
        )
