"""The daemon's wire protocol: request parsing and response shapes.

One request is one JSON object (a line in stdio-JSONL mode, a POST body
in HTTP mode)::

    {"id": "r1", "tenant": "alice", "analysis": "constprop",
     "source": "program p\\n...\\nend\\n",
     "config": {"jump_function": "polynomial", "max_evaluations": 50000},
     "incremental": true, "timeout": 5.0, "stats": false}

``analysis`` dispatches to the paper's constant propagation (default) or
to a framework client (``copyprop`` / ``modref``). ``config`` admits the
whitelisted :class:`~repro.core.config.AnalysisConfig` axes below —
``complete`` and ``parallel_regions`` are deliberately not servable
(complete mode mutates the lowered program away from every cache
identity; nested process pools belong to batch sweeps, not a daemon).

Responses are one JSON object either way::

    {"id": "r1", "status": "ok", "served": "cold|warm|cache|dedup",
     "fingerprint": "...", "result": {...}, "degradations": [...],
     "diagnostics": [...], "elapsed_ms": 3.2}
    {"id": "r1", "status": "error", "code": "RL551",
     "kind": "rate-limited", "error": "error[service]: RL551: ..."}

The ``error`` field always carries the same single-line rendering
:func:`repro.resilience.errors.format_cli_error` prints in the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.resilience.errors import (
    CODE_SERVICE_BAD_REQUEST,
    FailureRecord,
    ServiceError,
    format_cli_error,
)

ANALYSES = ("constprop", "copyprop", "modref")

#: request config keys -> AnalysisConfig field (identity names, listed
#: explicitly so an unknown or unserved axis is a typed rejection).
CONFIG_KEYS = (
    "jump_function",
    "use_return_jump_functions",
    "use_mod",
    "intraprocedural_only",
    "compose_return_functions",
    "max_solver_passes",
    "max_evaluations",
    "max_meets",
    "degrade_on_budget",
    "compiled_exprs",
    "flat_engine",
)


class ProtocolError(ServiceError):
    """A malformed request — rejected before admission (RL555)."""

    def __init__(self, message: str):
        super().__init__(CODE_SERVICE_BAD_REQUEST, "bad-request", message)


@dataclass(frozen=True)
class ServiceRequest:
    """One validated submission."""

    id: str
    tenant: str
    analysis: str
    source: str
    config: AnalysisConfig
    #: the raw config dict as submitted — journaled so a replay after a
    #: crash re-parses through exactly this validation path.
    config_payload: dict = field(default_factory=dict)
    incremental: bool = True
    timeout: float | None = None
    want_stats: bool = False

    def to_json(self) -> dict:
        """The journal's ``begin`` payload; :func:`parse_request` of this
        dict reconstructs an equivalent request."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "analysis": self.analysis,
            "source": self.source,
            "config": dict(self.config_payload),
            "incremental": self.incremental,
            "timeout": self.timeout,
            "stats": self.want_stats,
        }


def _parse_config(payload) -> tuple[AnalysisConfig, dict]:
    if payload is None:
        return AnalysisConfig(), {}
    if not isinstance(payload, dict):
        raise ProtocolError("config must be an object")
    unknown = sorted(set(payload) - set(CONFIG_KEYS))
    if unknown:
        raise ProtocolError(
            f"unknown or unserved config key(s): {', '.join(unknown)}"
        )
    kwargs = dict(payload)
    if "jump_function" in kwargs:
        try:
            kwargs["jump_function"] = JumpFunctionKind(kwargs["jump_function"])
        except ValueError:
            choices = ", ".join(k.value for k in JumpFunctionKind)
            raise ProtocolError(
                f"jump_function must be one of: {choices}"
            ) from None
    for key in ("max_solver_passes", "max_evaluations", "max_meets"):
        value = kwargs.get(key)
        if value is not None and (not isinstance(value, int) or value < 0):
            raise ProtocolError(f"{key} must be a non-negative integer")
    try:
        return AnalysisConfig(**kwargs), dict(payload)
    except TypeError as exc:
        raise ProtocolError(f"bad config: {exc}") from None


def parse_request(payload, default_id: str) -> ServiceRequest:
    """Validate one submission; :class:`ProtocolError` (RL555) on any
    shape problem — nothing malformed reaches admission or the solver."""
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("source must be a non-empty string")
    analysis = payload.get("analysis", "constprop")
    if analysis not in ANALYSES:
        raise ProtocolError(
            f"analysis must be one of: {', '.join(ANALYSES)}"
        )
    timeout = payload.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise ProtocolError("timeout must be a positive number")
        timeout = float(timeout)
    request_id = payload.get("id", default_id)
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("id must be a non-empty string")
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("tenant must be a non-empty string")
    config, config_payload = _parse_config(payload.get("config"))
    return ServiceRequest(
        id=request_id,
        tenant=tenant,
        analysis=analysis,
        source=source,
        config=config,
        config_payload=config_payload,
        incremental=bool(payload.get("incremental", True)),
        timeout=timeout,
        want_stats=bool(payload.get("stats", False)),
    )


# -- responses ----------------------------------------------------------------


def error_response(request_id: str | None, error) -> dict:
    """The typed error shape for a :class:`ServiceError`, a
    :class:`FailureRecord` (live or journal-replayed), or any exception.
    The single-line ``error`` field matches the CLI rendering exactly."""
    body: dict = {
        "id": request_id,
        "status": "error",
        "error": format_cli_error(error),
    }
    if isinstance(error, ServiceError):
        body["code"] = error.code
        body["kind"] = error.kind
    elif isinstance(error, FailureRecord):
        body["code"] = error.diagnostic().code
        body["kind"] = error.kind.value
        body["failure"] = error.to_json()
    else:
        record = FailureRecord.from_exception("service", None, error)
        body["code"] = record.diagnostic().code
        body["kind"] = record.kind.value
        body["failure"] = record.to_json()
    return body


def response_for(template: dict, request: ServiceRequest, served: str) -> dict:
    """Re-address a cached/coalesced response for this requester: same
    payload, the caller's id, and the true ``served`` provenance."""
    body = dict(template)
    body["id"] = request.id
    body["served"] = served
    return body
