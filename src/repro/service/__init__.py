"""The analysis-as-a-service layer: ``repro serve``.

A long-running daemon (stdio-JSONL and/or HTTP/JSON, stdlib only) in
front of the analyzer. Clients submit whole programs — or resubmit an
edited one with ``"incremental": true``, which the fingerprint diff
turns into a single-procedure re-solve — and get back VALs, stats, and
diagnostics. The robustness spine (DESIGN.md §12):

- **admission control** — a bounded queue plus per-tenant token buckets
  (:mod:`repro.service.admission`): overload earns a typed ``RL55x``
  rejection, never an unbounded queue;
- **request dedup** — identical in-flight submissions coalesce onto one
  solve, repeats answer from the response cache and the content-addressed
  :class:`~repro.store.artifacts.ArtifactStore`
  (:mod:`repro.service.dedup`);
- **a circuit breaker** — repeated solver failures reroute traffic down
  the degradation ladder (degrade → cold → intraprocedural floor), each
  step surfaced in the response, before refusing outright
  (:mod:`repro.service.breaker`);
- **cooperative cancellation** — per-request deadlines enforced via
  :mod:`repro.resilience.cancel` hooks in the driver;
- **a crash-safe request journal** — fsync'd JSONL
  (:mod:`repro.service.journal`) so a killed daemon deterministically
  replays or refuses in-flight work on restart;
- **graceful drain** — SIGTERM stops admission (``RL552``), finishes
  in-flight work, and exits; ``/healthz`` and ``/readyz`` report it.

The hard invariant: under overload the service may *degrade* (coarser
jump functions, cold instead of warm) but never returns a stale or
unsound VAL — cache entries are keyed by the exact (analysis, config,
source) fingerprint, degraded results are served marked but never
cached, and every degradation rides in the response.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.breaker import CircuitBreaker, ServiceMode
from repro.service.dedup import request_fingerprint
from repro.service.journal import RequestJournal
from repro.service.protocol import ProtocolError, ServiceRequest, parse_request
from repro.service.server import AnalysisService, ServicePolicy

__all__ = [
    "AdmissionController",
    "AnalysisService",
    "CircuitBreaker",
    "ProtocolError",
    "RequestJournal",
    "ServiceMode",
    "ServicePolicy",
    "ServiceRequest",
    "TokenBucket",
    "parse_request",
    "request_fingerprint",
]
