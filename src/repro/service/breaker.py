"""The circuit breaker: repeated failures reroute, then refuse.

Classic breakers flip between CLOSED and OPEN; this one inserts the PR 4
degradation ladder between them, because the analyzer has sound cheaper
modes to retreat through before giving up. Consecutive failures
accumulate ``strikes``; every ``threshold`` strikes the service drops
one rung:

====================  ==========================================
level (strikes//t)    what requests run as
====================  ==========================================
0  NORMAL             the request's own configuration
1  DEGRADE            budgets forced on → ladder (RL510) may fire
2  COLD               as DEGRADE, plus no warm start from the store
3  FLOOR              intraprocedural baseline — trivially cheap, sound
>=4  (open)           refused with RL553 until ``cooldown`` elapses
====================  ==========================================

Every rerouted request carries an RL557 note in its response — the
ladder is never silent. While open, requests are refused until
``cooldown`` seconds after the last failure; then the breaker half-opens
and probes at the FLOOR rung. A success pays back one full level
(``threshold`` strikes), so recovery retraces the ladder upward instead
of snapping shut and re-tripping. The clock is injectable; every
transition is deterministic given the failure/success sequence.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable

from repro.resilience.errors import CODE_SERVICE_BREAKER_OPEN, ServiceError


class ServiceMode(enum.Enum):
    """How far down the serving ladder a request is rerouted."""

    NORMAL = "normal"
    DEGRADE = "degrade"
    COLD = "cold"
    FLOOR = "floor"

    @property
    def level(self) -> int:
        return _LEVELS.index(self)


_LEVELS = (
    ServiceMode.NORMAL, ServiceMode.DEGRADE, ServiceMode.COLD, ServiceMode.FLOOR
)


class CircuitBreaker:
    """Strike-counting breaker with the serving ladder between its ends."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._strikes = 0
        self._last_failure = 0.0
        self.trips = 0  # times the breaker went fully open

    # -- observation ----------------------------------------------------------

    @property
    def strikes(self) -> int:
        return self._strikes

    def _level(self) -> int:
        return self._strikes // self.threshold

    def state(self) -> dict:
        with self._lock:
            level = self._level()
            return {
                "strikes": self._strikes,
                "mode": (
                    "open" if level >= len(_LEVELS)
                    else _LEVELS[level].value
                ),
                "trips": self.trips,
            }

    def is_open(self) -> bool:
        with self._lock:
            return self._level() >= len(_LEVELS)

    # -- the admission-side gate ----------------------------------------------

    def allow(self) -> ServiceMode:
        """The mode this request must run under, or an RL553 refusal.

        Open + cooled down half-opens: the request is admitted as a
        probe at the FLOOR rung (the cheapest sound mode) rather than at
        full strength — one success then starts paying the ladder back.
        """
        with self._lock:
            level = self._level()
            if level < len(_LEVELS):
                return _LEVELS[level]
            if self._clock() - self._last_failure >= self.cooldown:
                return ServiceMode.FLOOR  # half-open probe
            raise ServiceError(
                CODE_SERVICE_BREAKER_OPEN,
                "breaker-open",
                f"circuit breaker open after {self._strikes} consecutive "
                f"failure(s); retry after {self.cooldown:g}s",
            )

    # -- outcome feedback ------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._strikes = max(0, self._strikes - self.threshold)

    def record_failure(self) -> None:
        with self._lock:
            was_open = self._level() >= len(_LEVELS)
            self._strikes += 1
            self._last_failure = self._clock()
            if not was_open and self._level() >= len(_LEVELS):
                self.trips += 1
