"""Fingerprint-keyed request dedup: coalesce, cache, persist.

The serving layer's value-context discipline (after Padhye & Khedker's
value-contexts in Soot): two requests are *equivalent* iff their
``(analysis, config key, source)`` fingerprints match, and equivalent
work is done exactly once:

- :class:`InFlightTable` — the first equivalent submission becomes the
  **leader** and solves; concurrent equals become **followers** that
  block on the leader's event and reuse its response (``served:
  "dedup"``). Leaders publish errors too, so a crashing request doesn't
  strand its followers.
- :class:`ResponseCache` — completed responses, an in-memory LRU in
  front of the :class:`~repro.store.artifacts.ArtifactStore` (one
  content-addressed object per response, indexed under the
  ``service-response`` config key). Repeats across daemon restarts hit
  the disk tier (``served: "store"``).

Staleness is impossible by construction: the fingerprint covers every
input the solve depends on, and store objects re-hash on read — a
corrupt entry is a miss, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.store.artifacts import StoreError
from repro.store.fingerprints import canonical_dumps
from repro.store.fingerprints import config_key as _config_key

#: the store index namespace service responses are published under.
STORE_CONFIG_KEY = "service-response"


def request_fingerprint(analysis: str, config, source: str) -> str:
    """Identity of one unit of service work. Covers the analysis kind,
    every configuration axis (via the store's config key), and the exact
    program text."""
    payload = canonical_dumps(
        {
            "analysis": analysis,
            "config": _config_key(config),
            "source": source,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _Flight:
    __slots__ = ("event", "response")

    def __init__(self):
        self.event = threading.Event()
        self.response: dict | None = None


class InFlightTable:
    """Coalesces concurrent equivalent submissions onto one solve."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self.coalesced = 0

    def begin_or_join(self, fingerprint: str) -> tuple[bool, _Flight]:
        """Returns ``(is_leader, flight)``. The leader must eventually
        call :meth:`finish` — on every path, including failures —
        or its followers time out."""
        with self._lock:
            flight = self._flights.get(fingerprint)
            if flight is not None:
                self.coalesced += 1
                return False, flight
            flight = _Flight()
            self._flights[fingerprint] = flight
            return True, flight

    def finish(self, fingerprint: str, response: dict) -> None:
        with self._lock:
            flight = self._flights.pop(fingerprint, None)
        if flight is not None:
            flight.response = response
            flight.event.set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)


class ResponseCache:
    """Memory LRU over the store's persistent response tier.

    Only *exact* results are cached — the server never puts a response
    produced under a breaker-forced mode here, so a degraded answer can
    be served (marked) but never resurfaces for a healthy request.
    """

    def __init__(self, capacity: int = 256, store=None):
        self.capacity = int(capacity)
        self._store = store
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self.hits = 0
        self.store_hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> tuple[dict, str] | None:
        """The cached response and its tier (``cache`` / ``store``)."""
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(fingerprint)
                return dict(cached), "cache"
        if self._store is not None:
            try:
                meta = self._store.load_snapshot(STORE_CONFIG_KEY, fingerprint)
                if meta is not None and isinstance(meta.get("sha"), str):
                    response = self._store.get_object(meta["sha"])
                    if isinstance(response, dict):
                        with self._lock:
                            self.store_hits += 1
                            self._remember(fingerprint, response)
                        return dict(response), "store"
            except StoreError:
                pass  # unreadable tier = miss; content hashing bars stale
        with self._lock:
            self.misses += 1
        return None

    def put(self, fingerprint: str, response: dict) -> None:
        with self._lock:
            self._remember(fingerprint, response)
        if self._store is not None:
            try:
                sha = self._store.put_object(response)
                self._store.append_snapshot(
                    STORE_CONFIG_KEY, fingerprint, {"sha": sha}
                )
            except (StoreError, OSError, ValueError):
                pass  # persistence is best-effort; memory tier still serves

    def _remember(self, fingerprint: str, response: dict) -> None:
        self._entries[fingerprint] = dict(response)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "cache_hits": self.hits,
                "cache_store_hits": self.store_hits,
                "cache_misses": self.misses,
                "cache_entries": len(self._entries),
            }
