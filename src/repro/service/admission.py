"""Admission control: bounded queue + per-tenant token buckets.

The daemon never queues unboundedly. A submission that passes the dedup
layer must win two gates before it may wait for a solver slot:

- its tenant's :class:`TokenBucket` must hold a token (``RL551``
  otherwise) — burst capacity plus a steady refill rate, so one noisy
  tenant exhausts its own budget instead of the service;
- the waiting-room counter must be under ``queue_limit`` (``RL550``
  otherwise) — rejected instantly, so overload costs the client a
  round-trip, not the daemon its memory.

Both gates are O(1) under one lock; the clock is injectable so tests
drive refill deterministically. Draining (SIGTERM received) refuses
everything with ``RL552`` before either gate is consulted.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.resilience.errors import (
    CODE_SERVICE_DRAINING,
    CODE_SERVICE_QUEUE_FULL,
    CODE_SERVICE_RATE_LIMITED,
    ServiceError,
)


class TokenBucket:
    """One tenant's budget: ``burst`` tokens, refilled at ``rate``/s.

    ``rate=0`` makes the burst a hard lifetime cap (useful in tests and
    for revoked tenants). Fractional refill accumulates, so low rates
    still make steady progress.
    """

    __slots__ = ("rate", "burst", "tokens", "_stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._stamp = clock()

    def try_take(self) -> bool:
        now = self._clock()
        if self.rate > 0.0:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self._stamp) * self.rate
            )
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """The bounded waiting room in front of the solver slots."""

    def __init__(
        self,
        queue_limit: int,
        tenant_rate: float,
        tenant_burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.queue_limit = int(queue_limit)
        self.tenant_rate = float(tenant_rate)
        self.tenant_burst = int(tenant_burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._waiting = 0
        self._buckets: dict[str, TokenBucket] = {}
        self.rejections: dict[str, int] = {
            "queue-full": 0, "rate-limited": 0, "draining": 0,
        }

    @property
    def waiting(self) -> int:
        return self._waiting

    def admit(self, tenant: str, draining: bool = False) -> None:
        """Claim a waiting-room slot or raise a typed RL55x rejection.
        Every successful ``admit`` must be paired with one :meth:`leave`
        (use ``try/finally`` around the whole wait-and-solve)."""
        with self._lock:
            if draining:
                self.rejections["draining"] += 1
                raise ServiceError(
                    CODE_SERVICE_DRAINING,
                    "draining",
                    "service is draining for shutdown; retry elsewhere",
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(
                    self.tenant_rate, self.tenant_burst, self._clock
                )
                self._buckets[tenant] = bucket
            if not bucket.try_take():
                self.rejections["rate-limited"] += 1
                raise ServiceError(
                    CODE_SERVICE_RATE_LIMITED,
                    "rate-limited",
                    f"tenant {tenant!r} exhausted its request budget "
                    f"(burst {self.tenant_burst}, rate {self.tenant_rate}/s)",
                )
            if self._waiting >= self.queue_limit:
                self.rejections["queue-full"] += 1
                raise ServiceError(
                    CODE_SERVICE_QUEUE_FULL,
                    "queue-full",
                    f"admission queue full ({self.queue_limit} waiting)",
                )
            self._waiting += 1

    def leave(self) -> None:
        with self._lock:
            self._waiting -= 1

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "waiting": self._waiting,
                "tenants": len(self._buckets),
                **{
                    f"rejected_{kind}": count
                    for kind, count in self.rejections.items()
                },
            }
