"""Recursive-descent parser for MiniFortran.

Produces an unresolved :class:`~repro.frontend.astnodes.CompilationUnit`;
name binding (locals vs. COMMON globals vs. function calls vs. array
references) happens afterwards in :mod:`repro.frontend.symbols`.

Grammar summary (NEWLINE-terminated statements, declarations first)::

    unit       := procedure+
    procedure  := "program" name body "end"
                | "subroutine" name [ "(" params ")" ] body "end"
                | type "function" name "(" params ")" body "end"
    body       := decl* stmt*
    stmt       := [ label ] ( assign | if | do | call | goto | continue
                            | return | stop | read | write )

Expression precedence, lowest first:
``.or.`` < ``.and.`` < ``.not.`` < comparisons < ``+ -`` < ``* /`` < unary
``+ -`` < ``**`` (right-assoc) < primary.
"""

from __future__ import annotations

from repro.frontend import astnodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceSpan
from repro.frontend.tokens import Token, TokenKind

_TYPE_KEYWORDS = {
    TokenKind.KW_INTEGER: ast.Type.INTEGER,
    TokenKind.KW_REAL: ast.Type.REAL,
    TokenKind.KW_LOGICAL: ast.Type.LOGICAL,
}

_DECL_STARTERS = frozenset(
    {
        TokenKind.KW_INTEGER,
        TokenKind.KW_REAL,
        TokenKind.KW_LOGICAL,
        TokenKind.KW_DIMENSION,
        TokenKind.KW_COMMON,
        TokenKind.KW_DATA,
        TokenKind.KW_PARAMETER,
    }
)

_COMPARE_TOKENS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "/=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class Parser:
    """Parses a token stream into a :class:`CompilationUnit`."""

    def __init__(self, tokens: list[Token], source: str = ""):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    def parse(self) -> ast.CompilationUnit:
        procedures = []
        self._skip_newlines()
        while not self._at(TokenKind.EOF):
            procedures.append(self._parse_procedure())
            self._skip_newlines()
        if not procedures:
            raise ParseError("empty program", self._peek().span.start)
        return ast.CompilationUnit(procedures=procedures, source=self._source)

    # -- program units ----------------------------------------------------

    def _parse_procedure(self) -> ast.ProcedureDef:
        start = self._peek().span
        if self._at(TokenKind.KW_PROGRAM):
            self._advance()
            name = self._expect_ident("program name")
            self._expect_newline()
            decls, body = self._parse_body()
            end_span = self._expect(TokenKind.KW_END).span
            return ast.ProcedureDef(
                kind=ast.ProcedureKind.PROGRAM,
                name=name,
                decls=decls,
                body=body,
                span=start.merge(end_span),
            )
        if self._at(TokenKind.KW_SUBROUTINE):
            self._advance()
            name = self._expect_ident("subroutine name")
            params = self._parse_param_list(optional=True)
            self._expect_newline()
            decls, body = self._parse_body()
            end_span = self._expect(TokenKind.KW_END).span
            return ast.ProcedureDef(
                kind=ast.ProcedureKind.SUBROUTINE,
                name=name,
                params=params,
                decls=decls,
                body=body,
                span=start.merge(end_span),
            )
        if self._peek().kind in _TYPE_KEYWORDS and self._peek(1).kind == TokenKind.KW_FUNCTION:
            return_type = _TYPE_KEYWORDS[self._advance().kind]
            self._expect(TokenKind.KW_FUNCTION)
            name = self._expect_ident("function name")
            params = self._parse_param_list(optional=False)
            self._expect_newline()
            decls, body = self._parse_body()
            end_span = self._expect(TokenKind.KW_END).span
            return ast.ProcedureDef(
                kind=ast.ProcedureKind.FUNCTION,
                name=name,
                params=params,
                return_type=return_type,
                decls=decls,
                body=body,
                span=start.merge(end_span),
            )
        raise ParseError(
            f"expected a program unit, found {self._peek().text!r}",
            self._peek().span.start,
        )

    def _parse_param_list(self, optional: bool) -> list[str]:
        if not self._at(TokenKind.LPAREN):
            if optional:
                return []
            raise ParseError("expected parameter list", self._peek().span.start)
        self._advance()
        params: list[str] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._expect_ident("parameter name"))
            while self._at(TokenKind.COMMA):
                self._advance()
                params.append(self._expect_ident("parameter name"))
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_body(self) -> tuple[list[ast.Decl], list[ast.Stmt]]:
        decls: list[ast.Decl] = []
        self._skip_newlines()
        while self._peek().kind in _DECL_STARTERS:
            decls.append(self._parse_decl())
            self._expect_newline()
        stmts = self._parse_stmt_list(
            terminators=(TokenKind.KW_END,)
        )
        return decls, stmts

    # -- declarations ------------------------------------------------------

    def _parse_decl(self) -> ast.Decl:
        tok = self._peek()
        if tok.kind in _TYPE_KEYWORDS:
            self._advance()
            declarators = self._parse_declarator_list()
            return ast.TypeDecl(
                type=_TYPE_KEYWORDS[tok.kind], declarators=declarators, span=tok.span
            )
        if tok.kind == TokenKind.KW_DIMENSION:
            self._advance()
            declarators = self._parse_declarator_list()
            for declarator in declarators:
                if not declarator.is_array:
                    raise ParseError(
                        f"dimension declarator {declarator.name!r} needs bounds",
                        tok.span.start,
                    )
            return ast.DimensionDecl(declarators=declarators, span=tok.span)
        if tok.kind == TokenKind.KW_COMMON:
            self._advance()
            self._expect(TokenKind.SLASH)
            block = self._expect_ident("common block name")
            self._expect(TokenKind.SLASH)
            declarators = self._parse_declarator_list()
            return ast.CommonDecl(block=block, declarators=declarators, span=tok.span)
        if tok.kind == TokenKind.KW_DATA:
            self._advance()
            pairs = [self._parse_data_pair()]
            while self._at(TokenKind.COMMA):
                self._advance()
                pairs.append(self._parse_data_pair())
            return ast.DataDecl(pairs=pairs, span=tok.span)
        if tok.kind == TokenKind.KW_PARAMETER:
            self._advance()
            self._expect(TokenKind.LPAREN)
            pairs = [self._parse_parameter_pair()]
            while self._at(TokenKind.COMMA):
                self._advance()
                pairs.append(self._parse_parameter_pair())
            self._expect(TokenKind.RPAREN)
            return ast.ParameterDecl(pairs=pairs, span=tok.span)
        raise ParseError(f"expected declaration, found {tok.text!r}", tok.span.start)

    def _parse_declarator_list(self) -> list[ast.Declarator]:
        declarators = [self._parse_declarator()]
        while self._at(TokenKind.COMMA):
            self._advance()
            declarators.append(self._parse_declarator())
        return declarators

    def _parse_declarator(self) -> ast.Declarator:
        tok = self._expect(TokenKind.IDENT)
        dims: list[ast.Expr] = []
        if self._at(TokenKind.LPAREN):
            self._advance()
            dims.append(self._parse_expr())
            while self._at(TokenKind.COMMA):
                self._advance()
                dims.append(self._parse_expr())
            self._expect(TokenKind.RPAREN)
        return ast.Declarator(name=str(tok.value), dims=dims, span=tok.span)

    def _parse_data_pair(self) -> tuple[str, ast.Expr]:
        name = self._expect_ident("data name")
        self._expect(TokenKind.SLASH)
        value = self._parse_signed_literal()
        self._expect(TokenKind.SLASH)
        return (name, value)

    def _parse_parameter_pair(self) -> tuple[str, ast.Expr]:
        name = self._expect_ident("parameter name")
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        return (name, value)

    def _parse_signed_literal(self) -> ast.Expr:
        negate = False
        tok = self._peek()
        if tok.kind == TokenKind.MINUS:
            self._advance()
            negate = True
            tok = self._peek()
        if tok.kind == TokenKind.INT:
            self._advance()
            value = -tok.value if negate else tok.value
            return ast.IntLit(value, span=tok.span)
        if tok.kind == TokenKind.REAL:
            self._advance()
            value = -tok.value if negate else tok.value
            return ast.RealLit(value, span=tok.span)
        if tok.kind in (TokenKind.KW_TRUE, TokenKind.KW_FALSE) and not negate:
            self._advance()
            return ast.LogicalLit(tok.kind == TokenKind.KW_TRUE, span=tok.span)
        raise ParseError("expected a literal", tok.span.start)

    # -- statements ---------------------------------------------------------

    def _parse_stmt_list(self, terminators: tuple[TokenKind, ...]) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        self._skip_newlines()
        while self._peek().kind not in terminators:
            if self._at(TokenKind.EOF):
                raise ParseError("unexpected end of input", self._peek().span.start)
            stmts.append(self._parse_stmt())
            self._expect_newline()
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        label: int | None = None
        if self._at(TokenKind.INT):
            label_tok = self._advance()
            label = int(label_tok.value)
        stmt = self._parse_core_stmt()
        stmt.label = label
        return stmt

    def _parse_core_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind == TokenKind.KW_IF:
            return self._parse_if()
        if tok.kind == TokenKind.KW_DO:
            return self._parse_do()
        if tok.kind == TokenKind.KW_CALL:
            return self._parse_call()
        if tok.kind == TokenKind.KW_GOTO:
            self._advance()
            target_tok = self._expect(TokenKind.INT)
            return ast.Goto(target=int(target_tok.value), span=tok.span)
        if tok.kind == TokenKind.KW_CONTINUE:
            self._advance()
            return ast.Continue(span=tok.span)
        if tok.kind == TokenKind.KW_RETURN:
            self._advance()
            return ast.ReturnStmt(span=tok.span)
        if tok.kind == TokenKind.KW_STOP:
            self._advance()
            return ast.StopStmt(span=tok.span)
        if tok.kind == TokenKind.KW_READ:
            return self._parse_read()
        if tok.kind == TokenKind.KW_WRITE:
            return self._parse_write()
        if tok.kind == TokenKind.IDENT:
            return self._parse_assign()
        raise ParseError(f"expected statement, found {tok.text!r}", tok.span.start)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_IF).span
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        if not self._at(TokenKind.KW_THEN):
            # Logical IF: 'if (cond) stmt' on one line.
            body_stmt = self._parse_core_stmt()
            return ast.IfStmt(cond=cond, then_body=[body_stmt], span=start)
        self._advance()
        self._expect_newline()
        then_body = self._parse_stmt_list(
            terminators=(TokenKind.KW_ELSE, TokenKind.KW_ELSEIF, TokenKind.KW_ENDIF)
        )
        else_body: list[ast.Stmt] = []
        if self._at(TokenKind.KW_ELSEIF):
            elseif_tok = self._advance()
            self._expect(TokenKind.LPAREN)
            inner_cond = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.KW_THEN)
            self._expect_newline()
            # Desugar: elseif chain becomes a nested IfStmt in else_body.
            nested = self._parse_elseif_chain(inner_cond, elseif_tok.span)
            else_body = [nested]
        elif self._at(TokenKind.KW_ELSE):
            self._advance()
            self._expect_newline()
            else_body = self._parse_stmt_list(terminators=(TokenKind.KW_ENDIF,))
            self._expect(TokenKind.KW_ENDIF)
        else:
            self._expect(TokenKind.KW_ENDIF)
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, span=start)

    def _parse_elseif_chain(self, cond: ast.Expr, span: SourceSpan) -> ast.IfStmt:
        then_body = self._parse_stmt_list(
            terminators=(TokenKind.KW_ELSE, TokenKind.KW_ELSEIF, TokenKind.KW_ENDIF)
        )
        else_body: list[ast.Stmt] = []
        if self._at(TokenKind.KW_ELSEIF):
            elseif_tok = self._advance()
            self._expect(TokenKind.LPAREN)
            inner_cond = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.KW_THEN)
            self._expect_newline()
            else_body = [self._parse_elseif_chain(inner_cond, elseif_tok.span)]
        elif self._at(TokenKind.KW_ELSE):
            self._advance()
            self._expect_newline()
            else_body = self._parse_stmt_list(terminators=(TokenKind.KW_ENDIF,))
            self._expect(TokenKind.KW_ENDIF)
        else:
            self._expect(TokenKind.KW_ENDIF)
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, span=span)

    def _parse_do(self) -> ast.Stmt:
        start = self._expect(TokenKind.KW_DO).span
        if self._at(TokenKind.KW_WHILE):
            self._advance()
            self._expect(TokenKind.LPAREN)
            cond = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            self._expect_newline()
            body = self._parse_stmt_list(terminators=(TokenKind.KW_ENDDO,))
            self._expect(TokenKind.KW_ENDDO)
            return ast.DoWhile(cond=cond, body=body, span=start)
        var_tok = self._expect(TokenKind.IDENT)
        var = ast.VarRef(str(var_tok.value), span=var_tok.span)
        self._expect(TokenKind.ASSIGN)
        first = self._parse_expr()
        self._expect(TokenKind.COMMA)
        last = self._parse_expr()
        step: ast.Expr | None = None
        if self._at(TokenKind.COMMA):
            self._advance()
            step = self._parse_expr()
        self._expect_newline()
        body = self._parse_stmt_list(terminators=(TokenKind.KW_ENDDO,))
        self._expect(TokenKind.KW_ENDDO)
        return ast.DoLoop(var=var, first=first, last=last, step=step, body=body, span=start)

    def _parse_call(self) -> ast.CallStmt:
        start = self._expect(TokenKind.KW_CALL).span
        name_tok = self._peek()
        name = self._expect_ident("subroutine name")
        name_span = name_tok.span
        args: list[ast.Expr] = []
        if self._at(TokenKind.LPAREN):
            self._advance()
            if not self._at(TokenKind.RPAREN):
                args.append(self._parse_expr())
                while self._at(TokenKind.COMMA):
                    self._advance()
                    args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN)
        return ast.CallStmt(name=name, args=args, span=start, name_span=name_span)

    def _parse_read(self) -> ast.ReadStmt:
        start = self._expect(TokenKind.KW_READ).span
        targets: list[ast.VarRef | ast.ArrayRef] = [self._parse_read_target()]
        while self._at(TokenKind.COMMA):
            self._advance()
            targets.append(self._parse_read_target())
        return ast.ReadStmt(targets=targets, span=start)

    def _parse_read_target(self) -> ast.VarRef | ast.ArrayRef:
        expr = self._parse_primary()
        if isinstance(expr, ast.VarRef):
            return expr
        if isinstance(expr, ast.FunctionCall):
            # 'read a(i)' parses as a call; reinterpret as an array target.
            return ast.ArrayRef(expr.name, expr.args, span=expr.span)
        raise ParseError("read target must be a variable", expr.span.start)

    def _parse_write(self) -> ast.WriteStmt:
        start = self._expect(TokenKind.KW_WRITE).span
        values = [self._parse_expr()]
        while self._at(TokenKind.COMMA):
            self._advance()
            values.append(self._parse_expr())
        return ast.WriteStmt(values=values, span=start)

    def _parse_assign(self) -> ast.Assign:
        target_expr = self._parse_primary()
        if isinstance(target_expr, ast.FunctionCall):
            target: ast.VarRef | ast.ArrayRef = ast.ArrayRef(
                target_expr.name, target_expr.args, span=target_expr.span
            )
        elif isinstance(target_expr, ast.VarRef):
            target = target_expr
        else:
            raise ParseError("invalid assignment target", target_expr.span.start)
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        return ast.Assign(target=target, value=value, span=target_expr.span)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            op_tok = self._advance()
            right = self._parse_and()
            left = ast.BinaryOp(".or.", left, right, span=op_tok.span)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at(TokenKind.AND):
            op_tok = self._advance()
            right = self._parse_not()
            left = ast.BinaryOp(".and.", left, right, span=op_tok.span)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            op_tok = self._advance()
            operand = self._parse_not()
            return ast.UnaryOp(".not.", operand, span=op_tok.span)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().kind in _COMPARE_TOKENS:
            op_tok = self._advance()
            right = self._parse_additive()
            return ast.BinaryOp(_COMPARE_TOKENS[op_tok.kind], left, right, span=op_tok.span)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op_tok = self._advance()
            right = self._parse_multiplicative()
            op = "+" if op_tok.kind == TokenKind.PLUS else "-"
            left = ast.BinaryOp(op, left, right, span=op_tok.span)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH):
            op_tok = self._advance()
            right = self._parse_unary()
            op = "*" if op_tok.kind == TokenKind.STAR else "/"
            left = ast.BinaryOp(op, left, right, span=op_tok.span)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp("-", operand, span=tok.span)
        if tok.kind == TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._at(TokenKind.POWER):
            op_tok = self._advance()
            # Right-associative: a ** b ** c == a ** (b ** c).
            exponent = self._parse_unary()
            return ast.BinaryOp("**", base, exponent, span=op_tok.span)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == TokenKind.INT:
            self._advance()
            return ast.IntLit(int(tok.value), span=tok.span)
        if tok.kind == TokenKind.REAL:
            self._advance()
            return ast.RealLit(float(tok.value), span=tok.span)
        if tok.kind == TokenKind.KW_TRUE:
            self._advance()
            return ast.LogicalLit(True, span=tok.span)
        if tok.kind == TokenKind.KW_FALSE:
            self._advance()
            return ast.LogicalLit(False, span=tok.span)
        if tok.kind == TokenKind.STRING:
            self._advance()
            return ast.StringLit(str(tok.value), span=tok.span)
        if tok.kind == TokenKind.IDENT:
            self._advance()
            name = str(tok.value)
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: list[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._at(TokenKind.COMMA):
                        self._advance()
                        args.append(self._parse_expr())
                close = self._expect(TokenKind.RPAREN)
                return ast.FunctionCall(
                    name, args, span=tok.span.merge(close.span),
                    name_span=tok.span,
                )
            return ast.VarRef(name, span=tok.span)
        if tok.kind == TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        raise ParseError(f"expected expression, found {tok.text!r}", tok.span.start)

    # -- token-stream helpers -------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        pos = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != TokenKind.EOF:
            self._pos += 1
        return tok

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind == kind

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.span.start
            )
        return self._advance()

    def _expect_ident(self, what: str) -> str:
        tok = self._peek()
        if tok.kind != TokenKind.IDENT:
            raise ParseError(f"expected {what}, found {tok.text!r}", tok.span.start)
        self._advance()
        return str(tok.value)

    def _expect_newline(self) -> None:
        if self._at(TokenKind.EOF):
            return
        self._expect(TokenKind.NEWLINE)

    def _skip_newlines(self) -> None:
        while self._at(TokenKind.NEWLINE):
            self._advance()


def parse_source(source: str) -> ast.CompilationUnit:
    """Lex and parse ``source`` into an unresolved compilation unit."""
    return Parser(tokenize(source), source).parse()
