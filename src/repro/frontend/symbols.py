"""Name resolution and semantic checking for MiniFortran.

This stage turns a parsed :class:`CompilationUnit` into a resolved
:class:`Program`:

- every name in every procedure is bound to a :class:`Symbol` (formal,
  local, COMMON global, named constant, or function result);
- ambiguous ``name(args)`` expressions are disambiguated into array
  references, intrinsic calls, or user function calls;
- COMMON blocks are storage-associated across procedures: member *i* of
  block ``/b/`` is the same variable everywhere, regardless of its local
  spelling (checked for consistent type and shape);
- FORTRAN implicit typing applies (names starting ``i``–``n`` are INTEGER,
  everything else REAL) for undeclared variables;
- DATA-initialized locals are modelled as procedure-private globals (FORTRAN
  SAVE semantics: one static instance initialized at program start), which
  lets every later phase treat "variables with cross-call storage" uniformly.

The paper treats global variables as extra parameters of every procedure
(footnote 1); :class:`GlobalId` is the program-wide identity that makes this
possible.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field

from repro.frontend import astnodes as ast
from repro.frontend.errors import SemanticError
from repro.frontend.parser import parse_source
from repro.frontend.source import DUMMY_SPAN, SourceSpan

#: Intrinsic functions: name -> (min_arity, max_arity).
INTRINSICS: dict[str, tuple[int, int]] = {
    "mod": (2, 2),
    "max": (2, 8),
    "min": (2, 8),
    "abs": (1, 1),
    "iabs": (1, 1),
    "int": (1, 1),
    "real": (1, 1),
    "nint": (1, 1),
    "isign": (2, 2),
}

#: Intrinsics whose result is INTEGER regardless of argument types.
INTEGER_INTRINSICS = frozenset({"mod", "iabs", "int", "nint", "isign"})


class SymbolKind(enum.Enum):
    FORMAL = "formal"
    LOCAL = "local"
    GLOBAL = "global"
    NAMED_CONST = "named_const"
    RESULT = "result"


@dataclass(frozen=True)
class GlobalId:
    """Program-wide identity of a COMMON-block member: block name + slot.

    GlobalIds key every entry environment and support index, so the hash
    is computed once and cached — the generated dataclass ``__hash__``
    would rebuild and rehash a ``(block, offset)`` tuple on every dict
    operation in the propagation hot loops.
    """

    block: str
    offset: int

    def __str__(self) -> str:
        return f"/{self.block}/[{self.offset}]"

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.block, self.offset))
            object.__setattr__(self, "_hash", value)
            return value

    # str hashes are salted per process: never serialize the cache
    # (GlobalIds cross process boundaries in sweep_programs).
    def __getstate__(self):
        return (self.block, self.offset)

    def __setstate__(self, state):
        object.__setattr__(self, "block", state[0])
        object.__setattr__(self, "offset", state[1])


@dataclass(eq=False)
class Symbol:
    """A resolved name within one procedure.

    Symbols are *identities*: equality and hashing are by object identity,
    and they survive ``deepcopy`` unchanged so copied IR still shares them.
    ``hidden`` marks synthesized symbols (e.g. shadow globals for COMMON
    members a procedure does not declare but must transmit).
    """

    name: str
    kind: SymbolKind
    type: ast.Type
    dims: tuple[int, ...] = ()
    global_id: GlobalId | None = None
    const_value: int | float | bool | None = None
    data_value: int | float | bool | None = None
    decl_span: SourceSpan = DUMMY_SPAN
    hidden: bool = False

    def __deepcopy__(self, memo):
        return self

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_global(self) -> bool:
        return self.global_id is not None

    def __repr__(self) -> str:
        return f"Symbol({self.name}, {self.kind.value}, {self.type.value})"


@dataclass
class GlobalVar:
    """Program-level view of one COMMON member (or SAVEd local)."""

    gid: GlobalId
    display: str
    type: ast.Type
    dims: tuple[int, ...] = ()
    data_value: int | float | bool | None = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


class SymbolTable:
    """Per-procedure map from (lower-case) names to :class:`Symbol`."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}", symbol.decl_span.start
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)


@dataclass
class Procedure:
    """A resolved program unit: AST plus its symbol table."""

    ast: ast.ProcedureDef
    symtab: SymbolTable

    @property
    def name(self) -> str:
        return self.ast.name

    @property
    def kind(self) -> ast.ProcedureKind:
        return self.ast.kind

    @property
    def is_function(self) -> bool:
        return self.ast.is_function

    @property
    def is_main(self) -> bool:
        return self.ast.is_main

    @property
    def formals(self) -> list[Symbol]:
        found = []
        for name in self.ast.params:
            symbol = self.symtab.lookup(name)
            assert symbol is not None
            found.append(symbol)
        return found

    @property
    def result_symbol(self) -> Symbol | None:
        if not self.is_function:
            return None
        return self.symtab.lookup(self.name)

    def globals_used(self) -> list[Symbol]:
        """Symbols in this procedure bound to global storage."""
        return [s for s in self.symtab if s.is_global]

    def __repr__(self) -> str:
        return f"Procedure({self.kind.value} {self.name})"


@dataclass
class Program:
    """A fully resolved MiniFortran program."""

    procedures: dict[str, Procedure]
    globals: dict[GlobalId, GlobalVar]
    main: str
    source: str = ""

    def procedure(self, name: str) -> Procedure:
        try:
            return self.procedures[name.lower()]
        except KeyError:
            raise SemanticError(f"no procedure named {name!r}") from None

    @property
    def main_procedure(self) -> Procedure:
        return self.procedures[self.main]

    def global_display(self, gid: GlobalId) -> str:
        return self.globals[gid].display

    # -- Table 1 style characteristics ------------------------------------

    def noncomment_lines(self) -> int:
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("!"):
                count += 1
        return count

    def lines_per_procedure(self) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for name, proc in self.procedures.items():
            span = proc.ast.span
            sizes[name] = max(1, span.end.line - span.start.line + 1)
        return sizes

    def characteristics(self) -> dict[str, float]:
        """Program shape in the format of the paper's Table 1."""
        sizes = list(self.lines_per_procedure().values())
        return {
            "lines": self.noncomment_lines(),
            "procedures": len(self.procedures),
            "mean_lines_per_proc": round(statistics.fmean(sizes), 1),
            "median_lines_per_proc": statistics.median(sizes),
        }


# --------------------------------------------------------------------------
# Resolution
# --------------------------------------------------------------------------


def _implicit_type(name: str) -> ast.Type:
    return ast.Type.INTEGER if name[0] in "ijklmn" else ast.Type.REAL


class _ConstEvaluator:
    """Evaluates constant expressions in declarations (dims, PARAMETER)."""

    def __init__(self, named_constants: dict[str, int | float | bool]):
        self._named = named_constants

    def eval(self, expr: ast.Expr) -> int | float | bool:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.RealLit):
            return expr.value
        if isinstance(expr, ast.LogicalLit):
            return expr.value
        if isinstance(expr, ast.VarRef):
            if expr.name in self._named:
                return self._named[expr.name]
            raise SemanticError(
                f"{expr.name!r} is not a named constant", expr.span.start
            )
        if isinstance(expr, ast.UnaryOp):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return -value  # type: ignore[operator]
            raise SemanticError(
                f"operator {expr.op!r} not allowed in constant expression",
                expr.span.start,
            )
        if isinstance(expr, ast.BinaryOp):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            if expr.op == "+":
                return left + right  # type: ignore[operator]
            if expr.op == "-":
                return left - right  # type: ignore[operator]
            if expr.op == "*":
                return left * right  # type: ignore[operator]
            if expr.op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    if right == 0:
                        raise SemanticError("division by zero in constant", expr.span.start)
                    return _fortran_int_div(left, right)
                return left / right  # type: ignore[operator]
            if expr.op == "**":
                return left**right  # type: ignore[operator]
            raise SemanticError(
                f"operator {expr.op!r} not allowed in constant expression",
                expr.span.start,
            )
        raise SemanticError("expected a constant expression", expr.span.start)


def _fortran_int_div(a: int, b: int) -> int:
    """FORTRAN integer division truncates toward zero."""
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


class _ProcedureResolver:
    """Resolves one program unit against the program-wide context."""

    def __init__(
        self,
        proc_def: ast.ProcedureDef,
        proc_kinds: dict[str, ast.ProcedureKind],
        proc_return_types: dict[str, ast.Type],
        global_vars: dict[GlobalId, GlobalVar],
    ):
        self._def = proc_def
        self._proc_kinds = proc_kinds
        self._proc_return_types = proc_return_types
        self._global_vars = global_vars
        self._symtab = SymbolTable()
        self._named_constants: dict[str, int | float | bool] = {}
        self._const_eval = _ConstEvaluator(self._named_constants)
        self._declared_types: dict[str, tuple[ast.Type, SourceSpan]] = {}
        self._declared_dims: dict[str, tuple[tuple[int, ...], SourceSpan]] = {}
        self._common_membership: dict[str, GlobalId] = {}
        self._data_values: dict[str, int | float | bool] = {}

    def resolve(self) -> Procedure:
        self._collect_declarations()
        self._define_formals()
        self._define_result()
        self._define_common_members()
        self._define_named_constants()
        self._define_declared_locals()
        self._resolve_statements(self._def.body)
        self._apply_local_data_values()
        return Procedure(ast=self._def, symtab=self._symtab)

    # -- declaration gathering ---------------------------------------------

    def _collect_declarations(self) -> None:
        for decl in self._def.decls:
            if isinstance(decl, ast.TypeDecl):
                for declarator in decl.declarators:
                    self._record_type(declarator.name, decl.type, declarator.span)
                    if declarator.dims:
                        self._record_dims(declarator)
            elif isinstance(decl, ast.DimensionDecl):
                for declarator in decl.declarators:
                    self._record_dims(declarator)
            elif isinstance(decl, ast.CommonDecl):
                self._record_common(decl)
            elif isinstance(decl, ast.ParameterDecl):
                for name, expr in decl.pairs:
                    if name in self._named_constants:
                        raise SemanticError(
                            f"duplicate named constant {name!r}", decl.span.start
                        )
                    self._named_constants[name] = self._const_eval.eval(expr)
            elif isinstance(decl, ast.DataDecl):
                for name, expr in decl.pairs:
                    if name in self._data_values:
                        raise SemanticError(
                            f"duplicate DATA initializer for {name!r}", decl.span.start
                        )
                    self._data_values[name] = self._const_eval.eval(expr)

    def _record_type(self, name: str, type_: ast.Type, span: SourceSpan) -> None:
        if name in self._declared_types:
            raise SemanticError(f"duplicate type declaration for {name!r}", span.start)
        self._declared_types[name] = (type_, span)

    def _record_dims(self, declarator: ast.Declarator) -> None:
        if declarator.name in self._declared_dims:
            raise SemanticError(
                f"duplicate dimension for {declarator.name!r}", declarator.span.start
            )
        dims = []
        for dim_expr in declarator.dims:
            extent = self._const_eval.eval(dim_expr)
            if not isinstance(extent, int) or extent <= 0:
                raise SemanticError(
                    f"array bound for {declarator.name!r} must be a positive "
                    "integer constant",
                    declarator.span.start,
                )
            dims.append(extent)
        self._declared_dims[declarator.name] = (tuple(dims), declarator.span)

    def _record_common(self, decl: ast.CommonDecl) -> None:
        for offset, declarator in enumerate(decl.declarators):
            if declarator.name in self._common_membership:
                raise SemanticError(
                    f"{declarator.name!r} appears in two COMMON blocks",
                    declarator.span.start,
                )
            if declarator.dims:
                self._record_dims(declarator)
            self._common_membership[declarator.name] = GlobalId(decl.block, offset)

    # -- symbol definition --------------------------------------------------

    def _type_of(self, name: str) -> ast.Type:
        if name in self._declared_types:
            return self._declared_types[name][0]
        return _implicit_type(name)

    def _dims_of(self, name: str) -> tuple[int, ...]:
        if name in self._declared_dims:
            return self._declared_dims[name][0]
        return ()

    def _define_formals(self) -> None:
        for name in self._def.params:
            if name in self._common_membership:
                raise SemanticError(
                    f"formal parameter {name!r} may not be in COMMON",
                    self._def.span.start,
                )
            self._symtab.define(
                Symbol(
                    name=name,
                    kind=SymbolKind.FORMAL,
                    type=self._type_of(name),
                    dims=self._dims_of(name),
                    decl_span=self._decl_span(name),
                )
            )

    def _define_result(self) -> None:
        if not self._def.is_function:
            return
        return_type = self._def.return_type or _implicit_type(self._def.name)
        self._symtab.define(
            Symbol(
                name=self._def.name,
                kind=SymbolKind.RESULT,
                type=return_type,
                decl_span=self._def.span,
            )
        )

    def _define_common_members(self) -> None:
        for name, gid in self._common_membership.items():
            if name in self._def.params:
                continue  # already rejected above, defensive
            type_ = self._type_of(name)
            dims = self._dims_of(name)
            data_value = self._data_values.pop(name, None)
            self._register_global(gid, name, type_, dims, data_value)
            self._symtab.define(
                Symbol(
                    name=name,
                    kind=SymbolKind.GLOBAL,
                    type=type_,
                    dims=dims,
                    global_id=gid,
                    data_value=data_value,
                    decl_span=self._decl_span(name),
                )
            )

    def _register_global(
        self,
        gid: GlobalId,
        local_name: str,
        type_: ast.Type,
        dims: tuple[int, ...],
        data_value: int | float | bool | None,
    ) -> None:
        existing = self._global_vars.get(gid)
        if existing is None:
            self._global_vars[gid] = GlobalVar(
                gid=gid,
                display=f"{gid.block}.{local_name}",
                type=type_,
                dims=dims,
                data_value=data_value,
            )
            return
        if existing.type is not type_ or existing.dims != dims:
            raise SemanticError(
                f"COMMON member {gid} declared with conflicting type/shape "
                f"({local_name!r} in {self._def.name!r})"
            )
        if data_value is not None:
            if existing.data_value is not None and existing.data_value != data_value:
                raise SemanticError(
                    f"COMMON member {gid} has conflicting DATA initializers"
                )
            existing.data_value = data_value

    def _define_named_constants(self) -> None:
        for name, value in self._named_constants.items():
            if isinstance(value, bool):
                type_ = ast.Type.LOGICAL
            elif isinstance(value, int):
                type_ = ast.Type.INTEGER
            else:
                type_ = ast.Type.REAL
            self._symtab.define(
                Symbol(
                    name=name,
                    kind=SymbolKind.NAMED_CONST,
                    type=type_,
                    const_value=value,
                    decl_span=self._decl_span(name),
                )
            )

    def _define_declared_locals(self) -> None:
        declared = set(self._declared_types) | set(self._declared_dims)
        for name in sorted(declared):
            if name in self._symtab:
                continue
            self._define_local(name)

    def _define_local(self, name: str) -> Symbol:
        return self._symtab.define(
            Symbol(
                name=name,
                kind=SymbolKind.LOCAL,
                type=self._type_of(name),
                dims=self._dims_of(name),
                decl_span=self._decl_span(name),
            )
        )

    def _apply_local_data_values(self) -> None:
        """Turn DATA-initialized locals into procedure-private globals.

        FORTRAN DATA implies static storage initialized once at program
        start. Modelling the variable as a single-member pseudo-COMMON
        block gives exactly those semantics to every downstream phase.
        """
        for name, value in self._data_values.items():
            symbol = self._symtab.lookup(name)
            if symbol is None:
                symbol = self._define_local(name)
            if symbol.kind is not SymbolKind.LOCAL:
                raise SemanticError(
                    f"DATA initializer not allowed for {symbol.kind.value} "
                    f"{name!r}"
                )
            gid = GlobalId(f"save${self._def.name}", _stable_offset(name))
            symbol.kind = SymbolKind.GLOBAL
            symbol.global_id = gid
            symbol.data_value = value
            self._register_global(gid, name, symbol.type, symbol.dims, value)

    def _decl_span(self, name: str) -> SourceSpan:
        if name in self._declared_types:
            return self._declared_types[name][1]
        if name in self._declared_dims:
            return self._declared_dims[name][1]
        return DUMMY_SPAN

    # -- statement / expression resolution -----------------------------------

    def _resolve_statements(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self._resolve_stmt(stmt)

    def _resolve_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            stmt.target = self._resolve_target(stmt.target)
            stmt.value = self._resolve_expr(stmt.value)
        elif isinstance(stmt, ast.IfStmt):
            stmt.cond = self._resolve_expr(stmt.cond)
            self._resolve_statements(stmt.then_body)
            self._resolve_statements(stmt.else_body)
        elif isinstance(stmt, ast.DoLoop):
            induction = self._lookup_or_implicit(stmt.var.name, stmt.var.span)
            if induction.is_array or induction.kind is SymbolKind.NAMED_CONST:
                raise SemanticError(
                    f"invalid DO induction variable {stmt.var.name!r}",
                    stmt.var.span.start,
                )
            stmt.first = self._resolve_expr(stmt.first)
            stmt.last = self._resolve_expr(stmt.last)
            if stmt.step is not None:
                stmt.step = self._resolve_expr(stmt.step)
            self._resolve_statements(stmt.body)
        elif isinstance(stmt, ast.DoWhile):
            stmt.cond = self._resolve_expr(stmt.cond)
            self._resolve_statements(stmt.body)
        elif isinstance(stmt, ast.CallStmt):
            kind = self._proc_kinds.get(stmt.name)
            if kind is None:
                raise SemanticError(
                    f"call to unknown subroutine {stmt.name!r}", stmt.span.start
                )
            if kind is not ast.ProcedureKind.SUBROUTINE:
                raise SemanticError(
                    f"{stmt.name!r} is not a subroutine", stmt.span.start
                )
            stmt.args = [self._resolve_argument(a) for a in stmt.args]
        elif isinstance(stmt, ast.ReadStmt):
            stmt.targets = [self._resolve_target(t) for t in stmt.targets]
        elif isinstance(stmt, ast.WriteStmt):
            stmt.values = [self._resolve_expr(v) for v in stmt.values]
        elif isinstance(stmt, (ast.Goto, ast.Continue, ast.ReturnStmt, ast.StopStmt)):
            pass
        else:  # pragma: no cover - parser produces no other statement kinds
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _resolve_target(
        self, target: ast.VarRef | ast.ArrayRef
    ) -> ast.VarRef | ast.ArrayRef:
        if isinstance(target, ast.ArrayRef):
            symbol = self._lookup_or_implicit(target.name, target.span)
            if not symbol.is_array:
                raise SemanticError(
                    f"{target.name!r} is not an array", target.span.start
                )
            if len(target.indices) != len(symbol.dims):
                raise SemanticError(
                    f"{target.name!r} expects {len(symbol.dims)} subscripts",
                    target.span.start,
                )
            target.indices = [self._resolve_expr(i) for i in target.indices]
            return target
        symbol = self._lookup_or_implicit(target.name, target.span)
        if symbol.kind is SymbolKind.NAMED_CONST:
            raise SemanticError(
                f"cannot assign to named constant {target.name!r}",
                target.span.start,
            )
        if symbol.is_array:
            raise SemanticError(
                f"array {target.name!r} needs subscripts", target.span.start
            )
        return target

    def _resolve_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.IntLit, ast.RealLit, ast.LogicalLit, ast.StringLit)):
            return expr
        if isinstance(expr, ast.VarRef):
            symbol = self._lookup_or_implicit(expr.name, expr.span)
            if symbol.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used without subscripts", expr.span.start
                )
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = self._resolve_expr(expr.operand)
            return expr
        if isinstance(expr, ast.BinaryOp):
            expr.left = self._resolve_expr(expr.left)
            expr.right = self._resolve_expr(expr.right)
            return expr
        if isinstance(expr, ast.ArrayRef):
            expr.indices = [self._resolve_expr(i) for i in expr.indices]
            return expr
        if isinstance(expr, ast.FunctionCall):
            return self._resolve_call_like(expr)
        raise SemanticError(f"unhandled expression {type(expr).__name__}")

    def _resolve_call_like(self, expr: ast.FunctionCall) -> ast.Expr:
        """Disambiguate ``name(args)``: array, intrinsic, or user function."""
        symbol = self._symtab.lookup(expr.name)
        if symbol is not None and symbol.is_array:
            if len(expr.args) != len(symbol.dims):
                raise SemanticError(
                    f"{expr.name!r} expects {len(symbol.dims)} subscripts",
                    expr.span.start,
                )
            indices = [self._resolve_expr(a) for a in expr.args]
            return ast.ArrayRef(expr.name, indices, span=expr.span)
        if expr.name in INTRINSICS:
            low, high = INTRINSICS[expr.name]
            if not low <= len(expr.args) <= high:
                raise SemanticError(
                    f"intrinsic {expr.name!r} takes {low}..{high} arguments",
                    expr.span.start,
                )
            expr.args = [self._resolve_expr(a) for a in expr.args]
            return expr
        kind = self._proc_kinds.get(expr.name)
        if kind is ast.ProcedureKind.FUNCTION:
            expr.args = [self._resolve_argument(a) for a in expr.args]
            return expr
        if kind is not None:
            raise SemanticError(
                f"{expr.name!r} is a {kind.value}, not a function", expr.span.start
            )
        raise SemanticError(
            f"{expr.name!r} is neither an array, an intrinsic, nor a function",
            expr.span.start,
        )

    def _resolve_argument(self, expr: ast.Expr) -> ast.Expr:
        """Resolve an actual parameter; unlike other expression positions,
        a bare array name is allowed here (whole-array actual)."""
        if isinstance(expr, ast.VarRef):
            symbol = self._lookup_or_implicit(expr.name, expr.span)
            if symbol.is_array:
                return expr  # whole array passed by reference
        return self._resolve_expr(expr)

    def _lookup_or_implicit(self, name: str, span: SourceSpan) -> Symbol:
        symbol = self._symtab.lookup(name)
        if symbol is not None:
            return symbol
        if name in self._proc_kinds and name != self._def.name:
            raise SemanticError(
                f"procedure name {name!r} used as a variable", span.start
            )
        return self._define_local(name)


def _stable_offset(name: str) -> int:
    """Deterministic small slot number for SAVEd locals (name-derived)."""
    return sum(ord(c) for c in name) % 1000 + len(name) * 1000


def resolve(unit: ast.CompilationUnit) -> Program:
    """Resolve a parsed compilation unit into a :class:`Program`."""
    proc_kinds: dict[str, ast.ProcedureKind] = {}
    proc_return_types: dict[str, ast.Type] = {}
    main_name: str | None = None
    for proc_def in unit.procedures:
        if proc_def.name in proc_kinds:
            raise SemanticError(
                f"duplicate procedure name {proc_def.name!r}", proc_def.span.start
            )
        if proc_def.name in INTRINSICS:
            raise SemanticError(
                f"procedure name {proc_def.name!r} shadows an intrinsic",
                proc_def.span.start,
            )
        proc_kinds[proc_def.name] = proc_def.kind
        if proc_def.is_function:
            return_type = proc_def.return_type or _implicit_type(proc_def.name)
            proc_return_types[proc_def.name] = return_type
        if proc_def.is_main:
            if main_name is not None:
                raise SemanticError("multiple PROGRAM units", proc_def.span.start)
            main_name = proc_def.name
    if main_name is None:
        raise SemanticError("no PROGRAM unit")

    global_vars: dict[GlobalId, GlobalVar] = {}
    procedures: dict[str, Procedure] = {}
    for proc_def in unit.procedures:
        resolver = _ProcedureResolver(
            proc_def, proc_kinds, proc_return_types, global_vars
        )
        procedures[proc_def.name] = resolver.resolve()

    _check_call_arities(procedures)
    return Program(
        procedures=procedures,
        globals=global_vars,
        main=main_name,
        source=unit.source,
    )


def _check_call_arities(procedures: dict[str, Procedure]) -> None:
    for proc in procedures.values():
        for stmt in ast.walk_stmts(proc.ast.body):
            for call_name, args, span in _calls_in_stmt(stmt, procedures):
                callee = procedures[call_name]
                expected = len(callee.ast.params)
                if len(args) != expected:
                    raise SemanticError(
                        f"{call_name!r} expects {expected} arguments, "
                        f"got {len(args)}",
                        span.start,
                    )


def _calls_in_stmt(stmt: ast.Stmt, procedures: dict[str, Procedure]):
    """Yield (callee, args, span) for every call appearing in ``stmt``."""
    if isinstance(stmt, ast.CallStmt):
        yield (stmt.name, stmt.args, stmt.span)
        exprs = list(stmt.args)
    else:
        exprs = _exprs_of_stmt(stmt)
    for expr in exprs:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.FunctionCall) and node.name in procedures:
                yield (node.name, node.args, node.span)


def _exprs_of_stmt(stmt: ast.Stmt) -> list[ast.Expr]:
    if isinstance(stmt, ast.Assign):
        exprs: list[ast.Expr] = [stmt.value]
        if isinstance(stmt.target, ast.ArrayRef):
            exprs.extend(stmt.target.indices)
        return exprs
    if isinstance(stmt, ast.IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ast.DoLoop):
        exprs = [stmt.first, stmt.last]
        if stmt.step is not None:
            exprs.append(stmt.step)
        return exprs
    if isinstance(stmt, ast.DoWhile):
        return [stmt.cond]
    if isinstance(stmt, ast.WriteStmt):
        return list(stmt.values)
    if isinstance(stmt, ast.ReadStmt):
        exprs = []
        for target in stmt.targets:
            if isinstance(target, ast.ArrayRef):
                exprs.extend(target.indices)
        return exprs
    return []


def parse_program(source: str) -> Program:
    """Parse and resolve MiniFortran ``source`` — the main front-end entry."""
    return resolve(parse_source(source))
