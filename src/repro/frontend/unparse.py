"""AST → MiniFortran source (the inverse of the parser).

Produces text that re-parses to a structurally identical program —
the round-trip property the hypothesis tests rely on — and is used by
procedure cloning to materialize duplicated routines.

Operator precedence is handled by parenthesizing any operand whose
operator binds less tightly than its parent (never *removing* parentheses
the semantics needs).
"""

from __future__ import annotations

from repro.frontend import astnodes as ast

_PRECEDENCE = {
    ".or.": 1,
    ".and.": 2,
    "==": 4,
    "/=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "**": 8,
}

_UNARY_PRECEDENCE = {".not.": 3, "-": 7, "+": 7}


def unparse_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    text, prec = _expr_with_prec(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _expr_with_prec(expr: ast.Expr) -> tuple[str, int]:
    if isinstance(expr, ast.IntLit):
        if expr.value < 0:
            return (str(expr.value), _UNARY_PRECEDENCE["-"])
        return (str(expr.value), 10)
    if isinstance(expr, ast.RealLit):
        text = repr(float(expr.value))
        if "e" not in text and "." not in text:  # pragma: no cover
            text += ".0"
        return (text, 10 if expr.value >= 0 else _UNARY_PRECEDENCE["-"])
    if isinstance(expr, ast.LogicalLit):
        return (".true." if expr.value else ".false.", 10)
    if isinstance(expr, ast.StringLit):
        return (f"'{expr.value}'", 10)
    if isinstance(expr, ast.VarRef):
        return (expr.name, 10)
    if isinstance(expr, ast.ArrayRef):
        inner = ", ".join(unparse_expr(i) for i in expr.indices)
        return (f"{expr.name}({inner})", 10)
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(unparse_expr(a) for a in expr.args)
        return (f"{expr.name}({inner})", 10)
    if isinstance(expr, ast.UnaryOp):
        prec = _UNARY_PRECEDENCE[expr.op]
        operand = unparse_expr(expr.operand, prec)
        space = " " if expr.op == ".not." else ""
        return (f"{expr.op}{space}{operand}", prec)
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE[expr.op]
        # Binary operators are left-associative except '**'.
        left_prec = prec if expr.op == "**" else prec
        right_prec = prec + (0 if expr.op == "**" else 1)
        left = unparse_expr(expr.left, left_prec)
        right = unparse_expr(expr.right, right_prec)
        return (f"{left} {expr.op} {right}", prec)
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def _unparse_decl(decl: ast.Decl) -> str:
    if isinstance(decl, ast.TypeDecl):
        names = ", ".join(_declarator(d) for d in decl.declarators)
        return f"  {decl.type.value} {names}"
    if isinstance(decl, ast.DimensionDecl):
        names = ", ".join(_declarator(d) for d in decl.declarators)
        return f"  dimension {names}"
    if isinstance(decl, ast.CommonDecl):
        names = ", ".join(_declarator(d) for d in decl.declarators)
        return f"  common /{decl.block}/ {names}"
    if isinstance(decl, ast.DataDecl):
        pairs = ", ".join(
            f"{name} /{unparse_expr(value)}/" for name, value in decl.pairs
        )
        return f"  data {pairs}"
    if isinstance(decl, ast.ParameterDecl):
        pairs = ", ".join(
            f"{name} = {unparse_expr(value)}" for name, value in decl.pairs
        )
        return f"  parameter ({pairs})"
    raise TypeError(f"cannot unparse {type(decl).__name__}")


def _declarator(declarator: ast.Declarator) -> str:
    if not declarator.dims:
        return declarator.name
    dims = ", ".join(unparse_expr(d) for d in declarator.dims)
    return f"{declarator.name}({dims})"


def _unparse_stmt(stmt: ast.Stmt, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    label = f"{stmt.label} " if stmt.label is not None else ""

    def put(text: str) -> None:
        lines.append(f"{pad}{label}{text}")

    if isinstance(stmt, ast.Assign):
        target = (
            stmt.target.name
            if isinstance(stmt.target, ast.VarRef)
            else _expr_with_prec(stmt.target)[0]
        )
        put(f"{target} = {unparse_expr(stmt.value)}")
    elif isinstance(stmt, ast.IfStmt):
        put(f"if ({unparse_expr(stmt.cond)}) then")
        for inner in stmt.then_body:
            _unparse_stmt(inner, indent + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}else")
            for inner in stmt.else_body:
                _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}endif")
    elif isinstance(stmt, ast.DoLoop):
        head = (
            f"do {stmt.var.name} = {unparse_expr(stmt.first)}, "
            f"{unparse_expr(stmt.last)}"
        )
        if stmt.step is not None:
            head += f", {unparse_expr(stmt.step)}"
        put(head)
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}enddo")
    elif isinstance(stmt, ast.DoWhile):
        put(f"do while ({unparse_expr(stmt.cond)})")
        for inner in stmt.body:
            _unparse_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}enddo")
    elif isinstance(stmt, ast.CallStmt):
        if stmt.args:
            args = ", ".join(unparse_expr(a) for a in stmt.args)
            put(f"call {stmt.name}({args})")
        else:
            put(f"call {stmt.name}")
    elif isinstance(stmt, ast.Goto):
        put(f"goto {stmt.target}")
    elif isinstance(stmt, ast.Continue):
        put("continue")
    elif isinstance(stmt, ast.ReturnStmt):
        put("return")
    elif isinstance(stmt, ast.StopStmt):
        put("stop")
    elif isinstance(stmt, ast.ReadStmt):
        targets = ", ".join(_expr_with_prec(t)[0] for t in stmt.targets)
        put(f"read {targets}")
    elif isinstance(stmt, ast.WriteStmt):
        values = ", ".join(unparse_expr(v) for v in stmt.values)
        put(f"write {values}")
    else:
        raise TypeError(f"cannot unparse {type(stmt).__name__}")


def unparse_procedure(proc: ast.ProcedureDef) -> str:
    """One program unit back to source."""
    if proc.kind is ast.ProcedureKind.PROGRAM:
        head = f"program {proc.name}"
    elif proc.kind is ast.ProcedureKind.SUBROUTINE:
        params = f"({', '.join(proc.params)})" if proc.params else ""
        head = f"subroutine {proc.name}{params}"
    else:
        return_type = proc.return_type.value if proc.return_type else "integer"
        head = f"{return_type} function {proc.name}({', '.join(proc.params)})"
    lines = [head]
    for decl in proc.decls:
        lines.append(_unparse_decl(decl))
    for stmt in proc.body:
        _unparse_stmt(stmt, 1, lines)
    lines.append("end")
    return "\n".join(lines)


def unparse(unit: ast.CompilationUnit) -> str:
    """A whole compilation unit back to source text."""
    return "\n\n".join(unparse_procedure(p) for p in unit.procedures) + "\n"
