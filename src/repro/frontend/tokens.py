"""Token definitions for MiniFortran.

MiniFortran is free-form (no fixed columns) and case-insensitive, like
FORTRAN 77. Identifiers and keywords are normalized to lower case by the
lexer; the original spelling survives only through source spans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.source import SourceSpan


class TokenKind(enum.Enum):
    """All lexical categories the parser distinguishes."""

    # Literals and names.
    IDENT = "ident"
    INT = "int"
    REAL = "real"
    STRING = "string"

    # Keywords.
    KW_PROGRAM = "program"
    KW_SUBROUTINE = "subroutine"
    KW_FUNCTION = "function"
    KW_END = "end"
    KW_INTEGER = "integer"
    KW_REAL = "real_kw"
    KW_LOGICAL = "logical"
    KW_DIMENSION = "dimension"
    KW_COMMON = "common"
    KW_DATA = "data"
    KW_PARAMETER = "parameter"
    KW_IF = "if"
    KW_THEN = "then"
    KW_ELSE = "else"
    KW_ELSEIF = "elseif"
    KW_ENDIF = "endif"
    KW_DO = "do"
    KW_WHILE = "while"
    KW_ENDDO = "enddo"
    KW_CALL = "call"
    KW_RETURN = "return"
    KW_GOTO = "goto"
    KW_CONTINUE = "continue"
    KW_STOP = "stop"
    KW_READ = "read"
    KW_WRITE = "write"
    KW_TRUE = ".true."
    KW_FALSE = ".false."

    # Operators and punctuation.
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    ASSIGN = "="
    COLON = ":"
    EQ = "=="
    NE = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = ".and."
    OR = ".or."
    NOT = ".not."
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS: dict[str, TokenKind] = {
    "program": TokenKind.KW_PROGRAM,
    "subroutine": TokenKind.KW_SUBROUTINE,
    "function": TokenKind.KW_FUNCTION,
    "end": TokenKind.KW_END,
    "integer": TokenKind.KW_INTEGER,
    "real": TokenKind.KW_REAL,
    "logical": TokenKind.KW_LOGICAL,
    "dimension": TokenKind.KW_DIMENSION,
    "common": TokenKind.KW_COMMON,
    "data": TokenKind.KW_DATA,
    "parameter": TokenKind.KW_PARAMETER,
    "if": TokenKind.KW_IF,
    "then": TokenKind.KW_THEN,
    "else": TokenKind.KW_ELSE,
    "elseif": TokenKind.KW_ELSEIF,
    "endif": TokenKind.KW_ENDIF,
    "do": TokenKind.KW_DO,
    "while": TokenKind.KW_WHILE,
    "enddo": TokenKind.KW_ENDDO,
    "call": TokenKind.KW_CALL,
    "return": TokenKind.KW_RETURN,
    "goto": TokenKind.KW_GOTO,
    "continue": TokenKind.KW_CONTINUE,
    "stop": TokenKind.KW_STOP,
    "read": TokenKind.KW_READ,
    "write": TokenKind.KW_WRITE,
}

DOT_OPERATORS: dict[str, TokenKind] = {
    ".and.": TokenKind.AND,
    ".or.": TokenKind.OR,
    ".not.": TokenKind.NOT,
    ".true.": TokenKind.KW_TRUE,
    ".false.": TokenKind.KW_FALSE,
    ".eq.": TokenKind.EQ,
    ".ne.": TokenKind.NE,
    ".lt.": TokenKind.LT,
    ".le.": TokenKind.LE,
    ".gt.": TokenKind.GT,
    ".ge.": TokenKind.GE,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source span.

    ``value`` holds the normalized payload: the lower-cased name for
    identifiers, an ``int`` for integer literals, a ``float`` for real
    literals, and the raw text otherwise.
    """

    kind: TokenKind
    value: object
    span: SourceSpan

    @property
    def text(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.span})"
