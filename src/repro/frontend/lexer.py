"""The MiniFortran lexer.

Hand-written scanner producing a flat token stream. Design points:

- Free-form source; statements end at newlines, so NEWLINE is a token.
  A trailing ``&`` continues a statement onto the next line (the newline
  is swallowed), mirroring Fortran 90 free-form continuation.
- ``!`` starts a comment that runs to end of line.
- Case-insensitive: identifiers and keywords are lower-cased.
- Dot-operators (``.and.``, ``.lt.``, ``.true.``, ...) are recognized as
  single tokens, as are the modern comparison spellings (``<=``, ``/=``).
- A real literal requires a digit on at least one side of the dot and must
  not form a dot-operator (``1.eq.2`` lexes as INT DOT-OP INT).
"""

from __future__ import annotations

from repro.frontend.errors import LexError
from repro.frontend.source import SourceLocation, SourceSpan
from repro.frontend.tokens import DOT_OPERATORS, KEYWORDS, Token, TokenKind

_SINGLE_CHAR: dict[str, TokenKind] = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
}


class Lexer:
    """Scans MiniFortran source text into :class:`Token` objects."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1
        self._tokens: list[Token] = []

    def tokenize(self) -> list[Token]:
        """Scan the whole input; always ends with a single EOF token."""
        while self._pos < len(self._source):
            self._scan_one()
        self._ensure_trailing_newline()
        self._emit(TokenKind.EOF, "", self._here(), 0)
        return self._tokens

    # -- scanning ---------------------------------------------------------

    def _scan_one(self) -> None:
        ch = self._peek()
        if ch in " \t\r":
            self._advance()
            return
        if ch == "!":
            self._skip_comment()
            return
        if ch == "&":
            self._consume_continuation()
            return
        if ch == "\n":
            self._consume_newline()
            return
        if ch.isdigit():
            self._scan_number()
            return
        if ch == "." and self._peek(1).isdigit():
            self._scan_number()
            return
        if ch == ".":
            self._scan_dot_operator()
            return
        if ch.isalpha() or ch == "_":
            self._scan_word()
            return
        if ch == "'" or ch == '"':
            self._scan_string(ch)
            return
        self._scan_operator()

    def _skip_comment(self) -> None:
        while self._pos < len(self._source) and self._peek() != "\n":
            self._advance()

    def _consume_continuation(self) -> None:
        start = self._here()
        self._advance()  # the '&'
        while self._pos < len(self._source) and self._peek() in " \t\r":
            self._advance()
        if self._pos < len(self._source) and self._peek() == "!":
            self._skip_comment()
        if self._pos >= len(self._source) or self._peek() != "\n":
            raise LexError("'&' must end its line", start)
        self._advance_line()

    def _consume_newline(self) -> None:
        loc = self._here()
        self._advance_line()
        # Collapse runs of blank lines into one NEWLINE token.
        if self._tokens and self._tokens[-1].kind == TokenKind.NEWLINE:
            return
        span = SourceSpan(loc, self._here())
        self._tokens.append(Token(TokenKind.NEWLINE, "\n", span))

    def _scan_number(self) -> None:
        start = self._here()
        text = []
        is_real = False
        while self._pos < len(self._source) and self._peek().isdigit():
            text.append(self._advance())
        if self._pos < len(self._source) and self._peek() == ".":
            # '1.eq.2' must lex the '.eq.' as an operator, not '1.' as real.
            if not self._looks_like_dot_operator():
                is_real = True
                text.append(self._advance())
                while self._pos < len(self._source) and self._peek().isdigit():
                    text.append(self._advance())
        if self._pos < len(self._source) and self._peek() in "eEdD":
            save = (self._pos, self._line, self._column)
            exp = [self._advance()]
            if self._pos < len(self._source) and self._peek() in "+-":
                exp.append(self._advance())
            if self._pos < len(self._source) and self._peek().isdigit():
                is_real = True
                while self._pos < len(self._source) and self._peek().isdigit():
                    exp.append(self._advance())
                text.extend(exp)
            else:
                self._pos, self._line, self._column = save
        literal = "".join(text)
        if is_real:
            value: object = float(literal.lower().replace("d", "e"))
            self._emit_span(TokenKind.REAL, value, start)
        else:
            self._emit_span(TokenKind.INT, int(literal), start)

    def _looks_like_dot_operator(self) -> bool:
        rest = self._source[self._pos : self._pos + 7].lower()
        return any(rest.startswith(op) for op in DOT_OPERATORS)

    def _scan_dot_operator(self) -> None:
        start = self._here()
        rest = self._source[self._pos : self._pos + 7].lower()
        for text, kind in DOT_OPERATORS.items():
            if rest.startswith(text):
                for _ in text:
                    self._advance()
                self._emit_span(kind, text, start)
                return
        raise LexError(f"unrecognized dot-operator starting {rest[:4]!r}", start)

    def _scan_word(self) -> None:
        start = self._here()
        chars = []
        while self._pos < len(self._source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            chars.append(self._advance())
        word = "".join(chars).lower()
        kind = KEYWORDS.get(word, TokenKind.IDENT)
        self._emit_span(kind, word, start)

    def _scan_string(self, quote: str) -> None:
        start = self._here()
        self._advance()
        chars = []
        while self._pos < len(self._source) and self._peek() != quote:
            if self._peek() == "\n":
                raise LexError("unterminated string literal", start)
            chars.append(self._advance())
        if self._pos >= len(self._source):
            raise LexError("unterminated string literal", start)
        self._advance()
        self._emit_span(TokenKind.STRING, "".join(chars), start)

    def _scan_operator(self) -> None:
        start = self._here()
        ch = self._peek()
        two = self._source[self._pos : self._pos + 2]
        if two == "**":
            self._advance()
            self._advance()
            self._emit_span(TokenKind.POWER, "**", start)
        elif two == "==":
            self._advance()
            self._advance()
            self._emit_span(TokenKind.EQ, "==", start)
        elif two == "/=":
            self._advance()
            self._advance()
            self._emit_span(TokenKind.NE, "/=", start)
        elif two == "<=":
            self._advance()
            self._advance()
            self._emit_span(TokenKind.LE, "<=", start)
        elif two == ">=":
            self._advance()
            self._advance()
            self._emit_span(TokenKind.GE, ">=", start)
        elif ch == "<":
            self._advance()
            self._emit_span(TokenKind.LT, "<", start)
        elif ch == ">":
            self._advance()
            self._emit_span(TokenKind.GT, ">", start)
        elif ch == "=":
            self._advance()
            self._emit_span(TokenKind.ASSIGN, "=", start)
        elif ch == "*":
            self._advance()
            self._emit_span(TokenKind.STAR, "*", start)
        elif ch == "/":
            self._advance()
            self._emit_span(TokenKind.SLASH, "/", start)
        elif ch in _SINGLE_CHAR:
            self._advance()
            self._emit_span(_SINGLE_CHAR[ch], ch, start)
        else:
            raise LexError(f"unexpected character {ch!r}", start)

    # -- low-level cursor -------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        pos = self._pos + ahead
        if pos >= len(self._source):
            return "\0"
        return self._source[pos]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        self._column += 1
        return ch

    def _advance_line(self) -> None:
        self._pos += 1
        self._line += 1
        self._column = 1

    def _here(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._pos)

    def _emit(self, kind: TokenKind, value: object, start: SourceLocation, length: int) -> None:
        end = SourceLocation(start.line, start.column + length, start.offset + length)
        self._tokens.append(Token(kind, value, SourceSpan(start, end)))

    def _emit_span(self, kind: TokenKind, value: object, start: SourceLocation) -> None:
        span = SourceSpan(start, self._here())
        self._tokens.append(Token(kind, value, span))

    def _ensure_trailing_newline(self) -> None:
        if self._tokens and self._tokens[-1].kind != TokenKind.NEWLINE:
            span = SourceSpan(self._here(), self._here())
            self._tokens.append(Token(TokenKind.NEWLINE, "\n", span))


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source).tokenize()
