"""Source locations and spans.

Every token and every AST node that names a variable carries a span back
into the original text. The substitution stage (``repro.core.substitute``)
relies on these spans to splice constant literals into the program source,
reproducing the paper's "transformed version of the original source".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in the source text.

    ``line`` and ``column`` are 1-based (editor convention); ``offset`` is
    the 0-based character index into the source string.
    """

    line: int
    column: int
    offset: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True, order=True)
class SourceSpan:
    """A half-open character range ``[start, end)`` in the source text."""

    start: SourceLocation
    end: SourceLocation

    @property
    def text_range(self) -> tuple[int, int]:
        return (self.start.offset, self.end.offset)

    def extract(self, source: str) -> str:
        """Return the text this span covers in ``source``."""
        return source[self.start.offset : self.end.offset]

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return SourceSpan(start, end)

    def __str__(self) -> str:
        return f"{self.start}-{self.end}"


def span_at(line: int, column: int, offset: int, length: int) -> SourceSpan:
    """Build a single-line span of ``length`` characters."""
    start = SourceLocation(line, column, offset)
    end = SourceLocation(line, column + length, offset + length)
    return SourceSpan(start, end)


DUMMY_SPAN = span_at(0, 0, 0, 0)
"""Span used for synthesized nodes that have no source counterpart."""
