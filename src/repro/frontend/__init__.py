"""MiniFortran front end: lexer, parser, AST, and symbol resolution.

MiniFortran is a FORTRAN-77-flavoured language designed to exercise the
semantic features that the Grove--Torczon study depends on: reference
parameters, COMMON-block globals, integer constants that feed loop bounds,
and procedure calls that may or may not modify their arguments.

The usual entry point is :func:`parse_program`, which turns source text into
a resolved :class:`~repro.frontend.symbols.Program`.
"""

from repro.frontend.astnodes import (
    ArrayRef,
    Assign,
    BinaryOp,
    CallStmt,
    CompilationUnit,
    Continue,
    DoLoop,
    DoWhile,
    FunctionCall,
    Goto,
    IfStmt,
    IntLit,
    LogicalLit,
    ProcedureDef,
    ReadStmt,
    RealLit,
    ReturnStmt,
    StopStmt,
    UnaryOp,
    VarRef,
    WriteStmt,
)
from repro.frontend.errors import FrontendError, LexError, ParseError, SemanticError
from repro.frontend.lexer import Lexer, tokenize
from repro.frontend.parser import Parser, parse_source
from repro.frontend.source import SourceLocation, SourceSpan
from repro.frontend.symbols import (
    GlobalId,
    Procedure,
    Program,
    Symbol,
    SymbolKind,
    SymbolTable,
    parse_program,
)
from repro.frontend.tokens import Token, TokenKind

__all__ = [
    "ArrayRef",
    "Assign",
    "BinaryOp",
    "CallStmt",
    "CompilationUnit",
    "Continue",
    "DoLoop",
    "DoWhile",
    "FrontendError",
    "FunctionCall",
    "GlobalId",
    "Goto",
    "IfStmt",
    "IntLit",
    "LexError",
    "Lexer",
    "LogicalLit",
    "ParseError",
    "Parser",
    "Procedure",
    "ProcedureDef",
    "Program",
    "ReadStmt",
    "RealLit",
    "ReturnStmt",
    "SemanticError",
    "SourceLocation",
    "SourceSpan",
    "StopStmt",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "Token",
    "TokenKind",
    "UnaryOp",
    "VarRef",
    "WriteStmt",
    "parse_program",
    "parse_source",
    "tokenize",
]
