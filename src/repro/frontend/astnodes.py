"""Abstract syntax for MiniFortran.

The AST is deliberately close to FORTRAN 77's statement forms. Every node
that *references a variable by name* (``VarRef``, ``ArrayRef``, the DO-loop
induction variable) carries the source span of the name so later passes can
substitute constants back into the program text.

Expression operators are kept as strings using the modern spellings
(``==``, ``<=``, ``.and.`` ...); the parser canonicalizes the FORTRAN 77
dot-forms onto them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.frontend.source import DUMMY_SPAN, SourceSpan


class Type(enum.Enum):
    """MiniFortran's types. CHARACTER exists only for WRITE literals."""

    INTEGER = "integer"
    REAL = "real"
    LOGICAL = "logical"
    CHARACTER = "character"


class ProcedureKind(enum.Enum):
    PROGRAM = "program"
    SUBROUTINE = "subroutine"
    FUNCTION = "function"


ARITH_OPS = ("+", "-", "*", "/", "**")
COMPARE_OPS = ("==", "/=", "<", "<=", ">", ">=")
LOGICAL_OPS = (".and.", ".or.")
UNARY_OPS = ("-", "+", ".not.")


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions; concrete nodes set ``span``."""

    span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class RealLit(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class LogicalLit(Expr):
    value: bool

    def __str__(self) -> str:
        return ".true." if self.value else ".false."


@dataclass
class StringLit(Expr):
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class VarRef(Expr):
    """A scalar variable reference. ``span`` covers exactly the name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class ArrayRef(Expr):
    """An array element reference ``name(i, j, ...)``."""

    name: str
    indices: list[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.indices)
        return f"{self.name}({inner})"


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr = field(default=None)  # type: ignore[assignment]
    right: Expr = field(default=None)  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class UnaryOp(Expr):
    op: str
    operand: Expr = field(default=None)  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass
class FunctionCall(Expr):
    """A call in expression position: either an intrinsic or a user function.

    The parser cannot always distinguish ``f(i)`` (function call) from an
    array reference; symbol resolution rewrites :class:`FunctionCall` into
    :class:`ArrayRef` (or vice versa) once declarations are known.
    ``name_span`` covers exactly the callee name (procedure cloning
    rewrites it in place).
    """

    name: str
    args: list[Expr] = field(default_factory=list)
    name_span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements. ``label`` is the FORTRAN numeric label."""

    span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)
    label: int | None = field(default=None, kw_only=True)


@dataclass
class Assign(Stmt):
    target: VarRef | ArrayRef = field(default=None)  # type: ignore[assignment]
    value: Expr = field(default=None)  # type: ignore[assignment]


@dataclass
class IfStmt(Stmt):
    """Block IF with optional ELSEIF chain (desugared to nested IfStmt)."""

    cond: Expr = field(default=None)  # type: ignore[assignment]
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class DoLoop(Stmt):
    """``do var = first, last [, step]`` ... ``enddo``."""

    var: VarRef = field(default=None)  # type: ignore[assignment]
    first: Expr = field(default=None)  # type: ignore[assignment]
    last: Expr = field(default=None)  # type: ignore[assignment]
    step: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    cond: Expr = field(default=None)  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class CallStmt(Stmt):
    name: str = ""
    args: list[Expr] = field(default_factory=list)
    name_span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class Goto(Stmt):
    target: int = 0


@dataclass
class Continue(Stmt):
    """``continue`` — a no-op, usually a GOTO landing pad."""


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class StopStmt(Stmt):
    pass


@dataclass
class ReadStmt(Stmt):
    """``read v1, v2, ...`` — models runtime input (values become unknown)."""

    targets: list[VarRef | ArrayRef] = field(default_factory=list)


@dataclass
class WriteStmt(Stmt):
    """``write e1, e2, ...`` — a pure use of its operands."""

    values: list[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Declarator:
    """One name in a type declaration, with optional constant array dims."""

    name: str
    dims: list[Expr] = field(default_factory=list)
    span: SourceSpan = DUMMY_SPAN

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class Decl:
    span: SourceSpan = field(default=DUMMY_SPAN, kw_only=True)


@dataclass
class TypeDecl(Decl):
    type: Type = Type.INTEGER
    declarators: list[Declarator] = field(default_factory=list)


@dataclass
class DimensionDecl(Decl):
    declarators: list[Declarator] = field(default_factory=list)


@dataclass
class CommonDecl(Decl):
    """``common /block/ a, b, c`` — members are matched across procedures
    by block name and position, as in FORTRAN storage association."""

    block: str = ""
    declarators: list[Declarator] = field(default_factory=list)


@dataclass
class DataDecl(Decl):
    """``data name /literal/ [, name /literal/ ...]`` — static initializers."""

    pairs: list[tuple[str, Expr]] = field(default_factory=list)


@dataclass
class ParameterDecl(Decl):
    """``parameter (name = const-expr, ...)`` — compile-time named constants."""

    pairs: list[tuple[str, Expr]] = field(default_factory=list)


# --------------------------------------------------------------------------
# Program units
# --------------------------------------------------------------------------


@dataclass
class ProcedureDef:
    """One program unit: PROGRAM, SUBROUTINE, or FUNCTION."""

    kind: ProcedureKind
    name: str
    params: list[str] = field(default_factory=list)
    return_type: Type | None = None
    decls: list[Decl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    span: SourceSpan = DUMMY_SPAN

    @property
    def is_function(self) -> bool:
        return self.kind is ProcedureKind.FUNCTION

    @property
    def is_main(self) -> bool:
        return self.kind is ProcedureKind.PROGRAM


@dataclass
class CompilationUnit:
    """A whole MiniFortran source file: a list of program units."""

    procedures: list[ProcedureDef] = field(default_factory=list)
    source: str = ""

    def find(self, name: str) -> ProcedureDef | None:
        lowered = name.lower()
        for proc in self.procedures:
            if proc.name == lowered:
                return proc
        return None


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, (FunctionCall, ArrayRef)):
        children = expr.args if isinstance(expr, FunctionCall) else expr.indices
        for child in children:
            yield from walk_expr(child)


def walk_stmts(stmts: list[Stmt]):
    """Yield every statement in ``stmts``, recursing into bodies, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, IfStmt):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, (DoLoop, DoWhile)):
            yield from walk_stmts(stmt.body)
