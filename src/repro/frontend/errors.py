"""Front-end error types.

All front-end failures derive from :class:`FrontendError` so callers can
catch one type. Each error carries the source location it was raised at and
formats as ``line:col: message``.
"""

from __future__ import annotations

from repro.frontend.source import SourceLocation


class FrontendError(Exception):
    """Base class for lexing, parsing, and semantic errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        super().__init__(self._format())

    def _format(self) -> str:
        if self.location is None:
            return self.message
        return f"{self.location}: {self.message}"


class LexError(FrontendError):
    """An unrecognized or malformed token."""


class ParseError(FrontendError):
    """A syntactically invalid program."""


class SemanticError(FrontendError):
    """A program that parses but violates MiniFortran's static rules.

    Examples: calling an undeclared procedure, inconsistent COMMON block
    layouts, using an array name as a scalar, duplicate procedure names.
    """
