"""FORTRAN 77 arithmetic semantics, shared by every evaluator.

The compile-time evaluators (value numbering, SCCP, jump-function
evaluation) and the reference interpreter must agree *exactly* on integer
arithmetic, or the differential soundness tests would flag false positives.
This module is the single source of truth.

Notable FORTRAN rules implemented here:

- integer division truncates toward zero (``(-7)/2 == -3``);
- ``mod(a, p)`` takes the sign of ``a`` (it is a remainder, not a modulus);
- ``isign(a, b)`` transfers the sign of ``b`` onto ``|a|``;
- ``nint`` rounds half away from zero.
"""

from __future__ import annotations


class EvalError(Exception):
    """Raised for operations with no defined result (e.g. division by 0)."""


def int_div(a: int, b: int) -> int:
    """FORTRAN integer division: truncate toward zero."""
    if b == 0:
        raise EvalError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def int_mod(a: int, b: int) -> int:
    """FORTRAN MOD: remainder with the sign of the first operand."""
    if b == 0:
        raise EvalError("MOD with zero divisor")
    return a - int_div(a, b) * b


def int_pow(base: int, exponent: int) -> int:
    """Integer exponentiation; negative exponents truncate like division."""
    if exponent >= 0:
        return base**exponent
    # FORTRAN defines i**(-n) as 1/i**n with integer division.
    return int_div(1, base**exponent_abs(exponent))


def exponent_abs(exponent: int) -> int:
    return -exponent


def nint(x: float) -> int:
    """Round half away from zero (FORTRAN NINT)."""
    if x >= 0:
        return int(x + 0.5)
    return -int(-x + 0.5)


def isign(a: int, b: int) -> int:
    """|a| with the sign of b."""
    magnitude = abs(a)
    return -magnitude if b < 0 else magnitude


def apply_binary(op: str, left, right):
    """Apply a MiniFortran binary operator to two Python values.

    Integer pairs use FORTRAN integer semantics; any float operand promotes
    the arithmetic to floats. Comparisons yield bool. Raises
    :class:`EvalError` on division by zero.
    """
    both_int = isinstance(left, int) and isinstance(right, int) and not (
        isinstance(left, bool) or isinstance(right, bool)
    )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if both_int:
            return int_div(left, right)
        if right == 0:
            raise EvalError("division by zero")
        return left / right
    if op == "**":
        if both_int:
            return int_pow(left, right)
        result = left**right
        if isinstance(result, complex):
            raise EvalError("complex result from exponentiation")
        return result
    if op == "==":
        return left == right
    if op == "/=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == ".and.":
        return bool(left) and bool(right)
    if op == ".or.":
        return bool(left) or bool(right)
    raise EvalError(f"unknown binary operator {op!r}")


def apply_unary(op: str, operand):
    if op == "-":
        return -operand
    if op == "+":
        return operand
    if op == ".not.":
        return not operand
    raise EvalError(f"unknown unary operator {op!r}")


def apply_intrinsic(name: str, args: list):
    """Apply an intrinsic function to Python values."""
    if name == "mod":
        a, b = args
        if isinstance(a, int) and isinstance(b, int):
            return int_mod(a, b)
        if b == 0:
            raise EvalError("MOD with zero divisor")
        import math

        return math.fmod(a, b)
    if name == "max":
        return max(args)
    if name == "min":
        return min(args)
    if name in ("abs", "iabs"):
        return abs(args[0])
    if name == "int":
        return int(args[0])
    if name == "real":
        return float(args[0])
    if name == "nint":
        return nint(float(args[0]))
    if name == "isign":
        return isign(int(args[0]), int(args[1]))
    raise EvalError(f"unknown intrinsic {name!r}")
