"""One-shot regeneration of every experiment as a markdown report.

``python -c "from repro.reporting.experiments import write_report; write_report('report.md')"``
(or the ``repro tables`` CLI for the plain-text versions) reproduces the
full evaluation: Figure 1, Tables 1–3, the §3.1.5 cost report, the §1
motivation clients, and the §5 cloning ablation. EXPERIMENTS.md pairs
these measured numbers with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cloning import clone_and_reanalyze
from repro.depend import classify_loops, classify_subscripts
from repro.core.driver import analyze
from repro.reporting.costs import format_cost_report, run_cost_report
from repro.reporting.tables import (
    figure1_meet_table,
    format_sweep_failures,
    format_table1,
    format_table2,
    format_table3,
    run_table1,
    run_table2_outcome,
    run_table3_outcome,
)
from repro.resilience.executor import SweepPolicy
from repro.workloads import load, suite_names
from repro.workloads.library import library_program


@dataclass
class ExperimentReport:
    """All measured artifacts from one full run."""

    scale: float
    table1: list = field(default_factory=list)
    table2: list = field(default_factory=list)
    table3: list = field(default_factory=list)
    costs: list = field(default_factory=list)
    motivation: dict = field(default_factory=dict)
    cloning: list = field(default_factory=list)
    #: "table2"/"table3" → SweepOutcome (failures, retries, quarantine).
    outcomes: dict = field(default_factory=dict)

    def to_markdown(self) -> str:
        sections = [
            f"# Measured experiment report (scale={self.scale})",
            "",
            "## Figure 1",
            "```",
            figure1_meet_table(),
            "```",
            "",
            "## Table 1",
            "```",
            format_table1(self.table1),
            "```",
            "",
            "## Table 2",
            "```",
            format_table2(self.table2, self.outcomes.get("table2")),
            "```",
            "",
            "## Table 3",
            "```",
            format_table3(self.table3, self.outcomes.get("table3")),
            "```",
            "",
            "## Jump function costs (§3.1.5)",
            "```",
            format_cost_report(self.costs),
            "```",
            "",
            "## Motivation clients (§1)",
            self._motivation_markdown(),
            "",
            "## Procedure cloning (§5)",
            self._cloning_markdown(),
            "",
        ]
        failures = self._failures_markdown()
        if failures:
            sections.extend(["## Sweep failures", failures, ""])
        return "\n".join(sections)

    def _failures_markdown(self) -> str:
        """Explicit failure reporting — a partial report never passes
        itself off as a complete one."""
        blocks = []
        for label, outcome in self.outcomes.items():
            section = format_sweep_failures(outcome)
            if section:
                blocks.append(f"### {label}\n```\n{section}\n```")
        return "\n".join(blocks)

    def _motivation_markdown(self) -> str:
        stats = self.motivation
        improved = stats["nonlinear_before"] - stats["nonlinear_after"]
        return "\n".join(
            [
                f"- array subscripts: {stats['subscripts']}",
                f"- nonlinear without ICP: {stats['nonlinear_before']}",
                f"- nonlinear with ICP: {stats['nonlinear_after']} "
                f"(recovered {improved}, "
                f"{improved / max(1, stats['nonlinear_before']):.0%})",
                f"- profitably parallel loops: "
                f"{stats['profitable_before']} → {stats['profitable_after']}",
            ]
        )

    def _cloning_markdown(self) -> str:
        lines = ["| program | before | after | clones | growth |",
                 "|---|---|---|---|---|"]
        for row in self.cloning:
            lines.append(
                f"| {row['program']} | {row['before']} | {row['after']} | "
                f"{row['clones']} | {row['growth']:.2f}x |"
            )
        return "\n".join(lines)


def run_experiments(
    scale: float = 1.0,
    processes: int | None = None,
    policy: SweepPolicy | None = None,
) -> ExperimentReport:
    """Run the full evaluation and collect every measured artifact.

    Stage-0 artifacts are shared through the global cache, so the
    Table 2 sweep, the Table 3 sweep, and the cost report all reuse one
    lowering + call graph + MOD/REF per program. ``processes`` fans the
    table sweeps across worker processes; pass a full ``policy`` instead
    for timeouts/retries/journaling. Table sweeps run through the
    fault-tolerant executor — a failing program leaves ``None`` holes and
    an explicit "Sweep failures" section rather than aborting the report.
    """
    if policy is None:
        policy = SweepPolicy(processes=processes)
    report = ExperimentReport(scale=scale)
    report.table1 = run_table1(scale)
    report.table2, report.outcomes["table2"] = run_table2_outcome(scale, policy)
    report.table3, report.outcomes["table3"] = run_table3_outcome(scale, policy)
    report.costs = run_cost_report(scale)

    library_result = analyze(library_program())
    before = classify_subscripts(library_result, constants_env=False)
    after = classify_subscripts(library_result, constants_env=True)
    loops_before = classify_loops(library_result, constants_env=False)
    loops_after = classify_loops(library_result, constants_env=True)
    report.motivation = {
        "subscripts": before.total,
        "nonlinear_before": before.nonlinear,
        "nonlinear_after": after.nonlinear,
        "profitable_before": sum(v.profitable for v in loops_before),
        "profitable_after": sum(v.profitable for v in loops_after),
    }

    for name in suite_names():
        cloning = clone_and_reanalyze(load(name, scale).source)
        report.cloning.append(
            {
                "program": name,
                "before": cloning.constants_before,
                "after": cloning.constants_after,
                "clones": cloning.clones_created,
                "growth": cloning.code_growth,
            }
        )
    return report


def write_report(
    path: str,
    scale: float = 1.0,
    processes: int | None = None,
    policy: SweepPolicy | None = None,
) -> ExperimentReport:
    """Run everything and write the markdown report to ``path``."""
    report = run_experiments(scale, processes, policy)
    with open(path, "w") as handle:
        handle.write(report.to_markdown())
    return report
