"""Regeneration of the paper's tables and figures.

- :func:`run_table1` / :func:`format_table1` — program characteristics.
- :func:`run_table2` / :func:`format_table2` — constants found per jump
  function, with and without return jump functions.
- :func:`run_table3` / :func:`format_table3` — MOD ablation, complete
  propagation, and the intraprocedural baseline.
- :func:`figure1_meet_table` — the lattice meet rules of Figure 1.
- :func:`run_cost_report` — measured construction/solve cost per jump
  function kind (the §3.1.5 discussion, measured).
- :func:`run_table2_outcome` / :func:`run_table3_outcome` — the
  fault-tolerant variants: rows (``None`` holes render ``-``) plus the
  :class:`~repro.resilience.executor.SweepOutcome` with every failure.
"""

from repro.reporting.tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    figure1_meet_table,
    format_sweep_failures,
    format_table1,
    format_table2,
    format_table3,
    run_table1,
    run_table2,
    run_table2_outcome,
    run_table3,
    run_table3_outcome,
)
from repro.reporting.costs import CostRow, format_cost_report, run_cost_report

__all__ = [
    "CostRow",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "figure1_meet_table",
    "format_cost_report",
    "format_sweep_failures",
    "format_table1",
    "format_table2",
    "format_table3",
    "run_cost_report",
    "run_table1",
    "run_table2",
    "run_table2_outcome",
    "run_table3",
    "run_table3_outcome",
]
