"""Table 1, Table 2, Table 3, and Figure 1 regeneration.

Each ``run_tableN`` sweeps the workload suite through the corresponding
configurations and returns structured rows; ``format_tableN`` renders the
paper's layout. Pass ``scale`` < 1.0 for quick runs (tests use 0.4; the
benchmark harness runs full scale). Pass ``processes`` to fan the
12-program sweeps across worker processes (each worker builds stage 0
once per program and ships back picklable summaries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TABLE2_CONFIGS, TABLE3_CONFIGS
from repro.core.driver import sweep_programs
from repro.core.lattice import BOTTOM, TOP, meet
from repro.frontend.symbols import parse_program
from repro.workloads import load, suite_names


def _suite_sources(scale: float) -> dict[str, str]:
    return {name: load(name, scale).source for name in suite_names()}


@dataclass(frozen=True)
class Table1Row:
    program: str
    lines: int
    procedures: int
    mean_lines: float
    median_lines: float


@dataclass(frozen=True)
class Table2Row:
    program: str
    polynomial: int
    pass_through: int
    intraprocedural: int
    literal: int
    polynomial_no_rjf: int
    pass_through_no_rjf: int


@dataclass(frozen=True)
class Table3Row:
    program: str
    polynomial_no_mod: int
    polynomial_with_mod: int
    complete: int
    intraprocedural_only: int


def run_table1(scale: float = 1.0) -> list[Table1Row]:
    """Characteristics of the program test suite (paper Table 1)."""
    rows = []
    for name in suite_names():
        program = parse_program(load(name, scale).source)
        chars = program.characteristics()
        rows.append(
            Table1Row(
                program=name,
                lines=int(chars["lines"]),
                procedures=int(chars["procedures"]),
                mean_lines=chars["mean_lines_per_proc"],
                median_lines=chars["median_lines_per_proc"],
            )
        )
    return rows


def run_table2(scale: float = 1.0, processes: int | None = None) -> list[Table2Row]:
    """Constants found through use of jump functions (paper Table 2)."""
    sweeps = sweep_programs(_suite_sources(scale), TABLE2_CONFIGS, processes)
    rows = []
    for name in suite_names():
        counts = {key: cell.constants_found for key, cell in sweeps[name].items()}
        rows.append(
            Table2Row(
                program=name,
                polynomial=counts["polynomial"],
                pass_through=counts["pass_through"],
                intraprocedural=counts["intraprocedural"],
                literal=counts["literal"],
                polynomial_no_rjf=counts["polynomial_no_rjf"],
                pass_through_no_rjf=counts["pass_through_no_rjf"],
            )
        )
    return rows


def run_table3(scale: float = 1.0, processes: int | None = None) -> list[Table3Row]:
    """Most precise jump function vs. other techniques (paper Table 3)."""
    sweeps = sweep_programs(_suite_sources(scale), TABLE3_CONFIGS, processes)
    rows = []
    for name in suite_names():
        counts = {key: cell.constants_found for key, cell in sweeps[name].items()}
        rows.append(
            Table3Row(
                program=name,
                polynomial_no_mod=counts["polynomial_no_mod"],
                polynomial_with_mod=counts["polynomial_with_mod"],
                complete=counts["complete"],
                intraprocedural_only=counts["intraprocedural_only"],
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    header = (
        f"{'Program':<12} {'Lines':>6} {'Procs':>6} "
        f"{'Mean lines/proc':>16} {'Median lines/proc':>18}"
    )
    lines = [
        "Table 1: Characteristics of program test suite.",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.lines:>6} {row.procedures:>6} "
            f"{row.mean_lines:>16.1f} {row.median_lines:>18.1f}"
        )
    return "\n".join(lines)


def format_table2(rows: list[Table2Row]) -> str:
    header = (
        f"{'Program':<12} | {'Poly':>6} {'Pass':>6} {'Intra':>6} {'Lit':>6} "
        f"| {'PolyNR':>7} {'PassNR':>7}"
    )
    lines = [
        "Table 2: Constants found through use of jump functions.",
        "(left: with return jump functions; right: without)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} | {row.polynomial:>6} {row.pass_through:>6} "
            f"{row.intraprocedural:>6} {row.literal:>6} "
            f"| {row.polynomial_no_rjf:>7} {row.pass_through_no_rjf:>7}"
        )
    return "\n".join(lines)


def format_table3(rows: list[Table3Row]) -> str:
    header = (
        f"{'Program':<12} {'Poly w/o MOD':>13} {'Poly w/ MOD':>12} "
        f"{'Complete':>9} {'Intraproc':>10}"
    )
    lines = [
        "Table 3: Comparison of most precise jump function with other "
        "propagation techniques.",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.polynomial_no_mod:>13} "
            f"{row.polynomial_with_mod:>12} {row.complete:>9} "
            f"{row.intraprocedural_only:>10}"
        )
    return "\n".join(lines)


def figure1_meet_table() -> str:
    """The meet rules of Figure 1, computed from the implementation."""
    c1, c2 = 3, 7
    samples = [("T", TOP), ("ci", c1), ("cj", c2), ("_|_", BOTTOM)]
    width = 6
    lines = [
        "Figure 1: the constant propagation lattice (meet table).",
        " " * width + "".join(f"{label:>{width}}" for label, _ in samples),
    ]
    for row_label, row_value in samples:
        cells = []
        for _, col_value in samples:
            result = meet(row_value, col_value)
            if result is TOP:
                cells.append("T")
            elif result is BOTTOM:
                cells.append("_|_")
            else:
                cells.append(str(result))
        lines.append(
            f"{row_label:>{width}}" + "".join(f"{c:>{width}}" for c in cells)
        )
    lines.append("")
    lines.append("depth bound: T -> c -> _|_ (a value lowers at most twice)")
    return "\n".join(lines)
