"""Table 1, Table 2, Table 3, and Figure 1 regeneration.

Each ``run_tableN`` sweeps the workload suite through the corresponding
configurations and returns structured rows; ``format_tableN`` renders the
paper's layout. Pass ``scale`` < 1.0 for quick runs (tests use 0.4; the
benchmark harness runs full scale). Pass ``processes`` to fan the
12-program sweeps across worker processes (each worker builds stage 0
once per program and ships back picklable summaries).

``run_table2_outcome``/``run_table3_outcome`` are the fault-tolerant
variants: they accept a :class:`~repro.resilience.executor.SweepPolicy`
(timeouts, retries, chaos, checkpoint journal) and return the rows
*plus* the :class:`~repro.resilience.executor.SweepOutcome`. Cells a
failed program never produced come back ``None`` and render as ``-``;
``format_tableN(rows, outcome=...)`` appends an explicit failures
section, so a partial table is always visibly partial.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import TABLE2_CONFIGS, TABLE3_CONFIGS, AnalysisConfig
from repro.core.driver import SweepSummary, sweep_programs
from repro.core.lattice import BOTTOM, TOP, meet
from repro.frontend.symbols import parse_program
from repro.resilience.executor import SweepOutcome, SweepPolicy, run_sweep
from repro.workloads import load, suite_names


def _suite_sources(scale: float) -> dict[str, str]:
    return {name: load(name, scale).source for name in suite_names()}


def _parallelize(
    configs: dict[str, AnalysisConfig], parallel: int | None
) -> dict[str, AnalysisConfig]:
    """The table configs with ``parallel_regions`` applied (identity when
    ``parallel`` is falsy). Every cell keeps its own name — the parallel
    schedule is byte-identical on VALs, so the table counts are too."""
    if not parallel:
        return configs
    return {
        name: replace(config, parallel_regions=parallel)
        for name, config in configs.items()
    }


@dataclass(frozen=True)
class Table1Row:
    program: str
    lines: int
    procedures: int
    mean_lines: float
    median_lines: float


@dataclass(frozen=True)
class Table2Row:
    """``None`` cells mean the sweep failed to produce that cell (they
    render as ``-``); the strict :func:`run_table2` never yields them."""

    program: str
    polynomial: int | None
    pass_through: int | None
    intraprocedural: int | None
    literal: int | None
    polynomial_no_rjf: int | None
    pass_through_no_rjf: int | None


@dataclass(frozen=True)
class Table3Row:
    program: str
    polynomial_no_mod: int | None
    polynomial_with_mod: int | None
    complete: int | None
    intraprocedural_only: int | None


def run_table1(scale: float = 1.0) -> list[Table1Row]:
    """Characteristics of the program test suite (paper Table 1)."""
    rows = []
    for name in suite_names():
        program = parse_program(load(name, scale).source)
        chars = program.characteristics()
        rows.append(
            Table1Row(
                program=name,
                lines=int(chars["lines"]),
                procedures=int(chars["procedures"]),
                mean_lines=chars["mean_lines_per_proc"],
                median_lines=chars["median_lines_per_proc"],
            )
        )
    return rows


def _count(cells: dict[str, SweepSummary], key: str) -> int | None:
    cell = cells.get(key)
    return cell.constants_found if cell is not None else None


def _table2_rows(sweeps: dict[str, dict[str, SweepSummary]]) -> list[Table2Row]:
    rows = []
    for name in suite_names():
        cells = sweeps.get(name, {})
        rows.append(
            Table2Row(
                program=name,
                polynomial=_count(cells, "polynomial"),
                pass_through=_count(cells, "pass_through"),
                intraprocedural=_count(cells, "intraprocedural"),
                literal=_count(cells, "literal"),
                polynomial_no_rjf=_count(cells, "polynomial_no_rjf"),
                pass_through_no_rjf=_count(cells, "pass_through_no_rjf"),
            )
        )
    return rows


def _table3_rows(sweeps: dict[str, dict[str, SweepSummary]]) -> list[Table3Row]:
    rows = []
    for name in suite_names():
        cells = sweeps.get(name, {})
        rows.append(
            Table3Row(
                program=name,
                polynomial_no_mod=_count(cells, "polynomial_no_mod"),
                polynomial_with_mod=_count(cells, "polynomial_with_mod"),
                complete=_count(cells, "complete"),
                intraprocedural_only=_count(cells, "intraprocedural_only"),
            )
        )
    return rows


def run_table2(
    scale: float = 1.0,
    processes: int | None = None,
    parallel: int | None = None,
) -> list[Table2Row]:
    """Constants found through use of jump functions (paper Table 2)."""
    return _table2_rows(
        sweep_programs(
            _suite_sources(scale),
            _parallelize(TABLE2_CONFIGS, parallel),
            processes,
        )
    )


def run_table3(
    scale: float = 1.0,
    processes: int | None = None,
    parallel: int | None = None,
) -> list[Table3Row]:
    """Most precise jump function vs. other techniques (paper Table 3)."""
    return _table3_rows(
        sweep_programs(
            _suite_sources(scale),
            _parallelize(TABLE3_CONFIGS, parallel),
            processes,
        )
    )


def run_table2_outcome(
    scale: float = 1.0,
    policy: SweepPolicy | None = None,
    parallel: int | None = None,
) -> tuple[list[Table2Row], SweepOutcome]:
    """Table 2 through the fault-tolerant executor: always returns rows
    (with ``None`` holes for failed cells) plus the sweep's outcome."""
    outcome = run_sweep(
        _suite_sources(scale), _parallelize(TABLE2_CONFIGS, parallel), policy
    )
    return _table2_rows(outcome.summaries), outcome


def run_table3_outcome(
    scale: float = 1.0,
    policy: SweepPolicy | None = None,
    parallel: int | None = None,
) -> tuple[list[Table3Row], SweepOutcome]:
    """Table 3 through the fault-tolerant executor."""
    outcome = run_sweep(
        _suite_sources(scale), _parallelize(TABLE3_CONFIGS, parallel), policy
    )
    return _table3_rows(outcome.summaries), outcome


def format_table1(rows: list[Table1Row]) -> str:
    header = (
        f"{'Program':<12} {'Lines':>6} {'Procs':>6} "
        f"{'Mean lines/proc':>16} {'Median lines/proc':>18}"
    )
    lines = [
        "Table 1: Characteristics of program test suite.",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {row.lines:>6} {row.procedures:>6} "
            f"{row.mean_lines:>16.1f} {row.median_lines:>18.1f}"
        )
    return "\n".join(lines)


def _cell(value: int | None) -> str:
    return "-" if value is None else str(value)


def format_sweep_failures(outcome: SweepOutcome) -> str:
    """The failures/quarantine section appended to partial tables.
    Empty string when the sweep completed cleanly."""
    if (
        not outcome.failures
        and not outcome.quarantined
        and not outcome.degradation_count()
    ):
        return ""
    lines: list[str] = []
    if outcome.failures:
        lines.append(f"failures ({len(outcome.failures)}):")
        for record in outcome.failures:
            lines.append(f"  {record.diagnostic().code} {record.describe()}")
    if outcome.quarantined:
        lines.append("quarantined: " + ", ".join(outcome.quarantined))
    degraded = outcome.degradation_count()
    if degraded:
        lines.append(f"degraded cells: {degraded} (see --stats for RL5xx codes)")
    return "\n".join(lines)


def format_table2(rows: list[Table2Row], outcome: SweepOutcome | None = None) -> str:
    header = (
        f"{'Program':<12} | {'Poly':>6} {'Pass':>6} {'Intra':>6} {'Lit':>6} "
        f"| {'PolyNR':>7} {'PassNR':>7}"
    )
    lines = [
        "Table 2: Constants found through use of jump functions.",
        "(left: with return jump functions; right: without)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} | {_cell(row.polynomial):>6} "
            f"{_cell(row.pass_through):>6} "
            f"{_cell(row.intraprocedural):>6} {_cell(row.literal):>6} "
            f"| {_cell(row.polynomial_no_rjf):>7} "
            f"{_cell(row.pass_through_no_rjf):>7}"
        )
    if outcome is not None:
        section = format_sweep_failures(outcome)
        if section:
            lines.append(section)
    return "\n".join(lines)


def format_table3(rows: list[Table3Row], outcome: SweepOutcome | None = None) -> str:
    header = (
        f"{'Program':<12} {'Poly w/o MOD':>13} {'Poly w/ MOD':>12} "
        f"{'Complete':>9} {'Intraproc':>10}"
    )
    lines = [
        "Table 3: Comparison of most precise jump function with other "
        "propagation techniques.",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.program:<12} {_cell(row.polynomial_no_mod):>13} "
            f"{_cell(row.polynomial_with_mod):>12} {_cell(row.complete):>9} "
            f"{_cell(row.intraprocedural_only):>10}"
        )
    if outcome is not None:
        section = format_sweep_failures(outcome)
        if section:
            lines.append(section)
    return "\n".join(lines)


def figure1_meet_table() -> str:
    """The meet rules of Figure 1, computed from the implementation."""
    c1, c2 = 3, 7
    samples = [("T", TOP), ("ci", c1), ("cj", c2), ("_|_", BOTTOM)]
    width = 6
    lines = [
        "Figure 1: the constant propagation lattice (meet table).",
        " " * width + "".join(f"{label:>{width}}" for label, _ in samples),
    ]
    for row_label, row_value in samples:
        cells = []
        for _, col_value in samples:
            result = meet(row_value, col_value)
            if result is TOP:
                cells.append("T")
            elif result is BOTTOM:
                cells.append("_|_")
            else:
                cells.append(str(result))
        lines.append(
            f"{row_label:>{width}}" + "".join(f"{c:>{width}}" for c in cells)
        )
    lines.append("")
    lines.append("depth bound: T -> c -> _|_ (a value lowers at most twice)")
    return "\n".join(lines)
