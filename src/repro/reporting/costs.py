"""Measured jump-function costs (the §3.1.5 discussion, quantified).

The paper argues analytically that

- the literal jump function is cheapest to build (a textual scan),
- the other three require intraprocedural analysis (SSA + value
  numbering) of similar cost, and
- polynomial evaluation cost approaches pass-through in practice because
  real polynomial jump functions are small (|support| → 1).

This module measures all of that on the workload suite: per-stage
wall-clock from the analyzer's timings, plus static statistics about the
constructed jump functions (expression sizes and support sizes).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import Analyzer
from repro.workloads import load, suite_names


@dataclass(frozen=True)
class CostRow:
    kind: str
    build_seconds: float  # stages 1+2 (jump function construction)
    solve_seconds: float  # stage 3 (interprocedural propagation)
    record_seconds: float  # stage 4
    mean_cost: float  # mean jump-function expression size
    mean_support: float  # mean |support| over non-bottom functions
    constants_found: int


def run_cost_report(scale: float = 1.0) -> list[CostRow]:
    # One analyzer per program, shared across all four kinds: stage 0
    # (lowering, call graph, MOD/REF) is configuration-independent, so the
    # report prices only what differs between jump functions.
    analyzers = {
        name: Analyzer(load(name, scale).source) for name in suite_names()
    }
    rows = []
    for kind in JumpFunctionKind:
        build = solve = record = 0.0
        sizes: list[int] = []
        supports: list[int] = []
        constants = 0
        for name in suite_names():
            result = analyzers[name].run(AnalysisConfig(jump_function=kind))
            build += result.timings["returns"] + result.timings["forward"]
            solve += result.timings["solve"]
            record += result.timings["record"]
            constants += result.constants_found
            for site in result.forward.sites.values():
                for _, function in site.all_functions():
                    if function.is_bottom:
                        continue
                    sizes.append(function.cost)
                    supports.append(len(function.support))
        rows.append(
            CostRow(
                kind=kind.value,
                build_seconds=build,
                solve_seconds=solve,
                record_seconds=record,
                mean_cost=statistics.fmean(sizes) if sizes else 0.0,
                mean_support=statistics.fmean(supports) if supports else 0.0,
                constants_found=constants,
            )
        )
    return rows


def format_cost_report(rows: list[CostRow]) -> str:
    header = (
        f"{'Jump function':<16} {'build(s)':>9} {'solve(s)':>9} "
        f"{'record(s)':>10} {'mean size':>10} {'mean |sup|':>11} "
        f"{'constants':>10}"
    )
    lines = [
        "Jump function costs over the whole suite (paper §3.1.5, measured).",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.kind:<16} {row.build_seconds:>9.3f} {row.solve_seconds:>9.3f} "
            f"{row.record_seconds:>10.3f} {row.mean_cost:>10.2f} "
            f"{row.mean_support:>11.2f} {row.constants_found:>10}"
        )
    return "\n".join(lines)
