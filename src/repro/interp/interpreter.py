"""IR-level interpreter with entry-value tracing.

Execution model:

- every scalar lives in a :class:`Cell`; call-by-reference passes the
  caller's cell (or an :class:`ElementCell` view into an array) so callee
  writes are visible to the caller, exactly like FORTRAN;
- COMMON storage is one cell/array per :class:`GlobalId`, shared by all
  frames; DATA initializers are applied once at program start;
- expression actuals get a fresh cell — callee writes to them are lost
  (the FORTRAN "temporary actual" rule);
- reading an undefined value raises (programs under test must be
  deterministic for the differential oracle to be meaningful);
- arithmetic comes from :mod:`repro.semantics`, the same helpers the
  compile-time evaluators use.

``max_steps`` bounds execution so buggy workloads fail fast instead of
hanging the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import semantics
from repro.frontend.astnodes import Type
from repro.frontend.symbols import GlobalId, Program, Symbol, SymbolKind
from repro.ir.instructions import (
    Argument,
    ArgumentKind,
    BinOp,
    Call,
    CallKill,
    CJump,
    Const,
    Convert,
    Copy,
    IntrinsicOp,
    Jump,
    LoadArr,
    Operand,
    Phi,
    ReadArr,
    ReadVar,
    Return,
    Stop,
    StoreArr,
    Temp,
    UnOp,
    VarDef,
    VarUse,
    WriteOut,
)
from repro.ir.lower import LoweredProgram, lower_program


class InterpError(Exception):
    """Any runtime failure: undefined value, bad subscript, step limit."""


class _StopSignal(Exception):
    """Raised by STOP; unwinds to the top level."""


_UNDEFINED = object()


class Cell:
    """A mutable scalar storage location."""

    __slots__ = ("value",)

    def __init__(self, value=_UNDEFINED):
        self.value = value

    def load(self, what: str):
        if self.value is _UNDEFINED:
            raise InterpError(f"read of undefined value: {what}")
        return self.value

    def store(self, value) -> None:
        self.value = value

    @property
    def is_defined(self) -> bool:
        return self.value is not _UNDEFINED


class ArrayStorage:
    """A FORTRAN array: column-major, 1-based subscripts."""

    def __init__(self, name: str, dims: tuple[int, ...]):
        self.name = name
        self.dims = dims
        total = 1
        for extent in dims:
            total *= extent
        self.data = [_UNDEFINED] * total

    def _flat(self, indices: list[int]) -> int:
        if len(indices) != len(self.dims):
            raise InterpError(f"{self.name}: wrong subscript count")
        flat = 0
        stride = 1
        for index, extent in zip(indices, self.dims):
            if not 1 <= index <= extent:
                raise InterpError(
                    f"{self.name}: subscript {index} out of bounds 1..{extent}"
                )
            flat += (index - 1) * stride
            stride *= extent
        return flat

    def load(self, indices: list[int]):
        value = self.data[self._flat(indices)]
        if value is _UNDEFINED:
            raise InterpError(f"read of undefined element {self.name}{indices}")
        return value

    def store(self, indices: list[int], value) -> None:
        self.data[self._flat(indices)] = value


class ElementCell:
    """A cell view onto one array element (array-element actuals)."""

    __slots__ = ("storage", "indices")

    def __init__(self, storage: ArrayStorage, indices: list[int]):
        self.storage = storage
        self.indices = indices

    def load(self, what: str):
        return self.storage.load(self.indices)

    def store(self, value) -> None:
        self.storage.store(self.indices, value)

    @property
    def is_defined(self) -> bool:
        try:
            self.storage.load(self.indices)
        except InterpError:
            return False
        return True


@dataclass
class ExecutionTrace:
    """What one run observed."""

    outputs: list = field(default_factory=list)
    #: proc -> list of {entry key -> value} snapshots, one per invocation.
    entries: dict[str, list[dict]] = field(default_factory=dict)
    steps: int = 0
    stopped: bool = False

    def invocations(self, proc: str) -> list[dict]:
        return self.entries.get(proc.lower(), [])


class _Frame:
    """One procedure activation."""

    __slots__ = ("proc_name", "cells", "arrays", "temps")

    def __init__(self, proc_name: str):
        self.proc_name = proc_name
        self.cells: dict[Symbol, Cell | ElementCell] = {}
        self.arrays: dict[Symbol, ArrayStorage] = {}
        self.temps: dict[Temp, object] = {}


class Interpreter:
    """Executes a lowered program."""

    def __init__(
        self,
        lowered: LoweredProgram,
        inputs: list | None = None,
        max_steps: int = 2_000_000,
    ):
        self.lowered = lowered
        self.program: Program = lowered.program
        self.inputs = list(inputs or [])
        self._input_pos = 0
        self.max_steps = max_steps
        self.trace = ExecutionTrace()
        self.global_cells: dict[GlobalId, Cell] = {}
        self.global_arrays: dict[GlobalId, ArrayStorage] = {}
        for gid, gvar in self.program.globals.items():
            if gvar.is_array:
                self.global_arrays[gid] = ArrayStorage(gvar.display, gvar.dims)
            else:
                cell = Cell()
                if gvar.data_value is not None:
                    cell.store(gvar.data_value)
                self.global_cells[gid] = cell

    # -- public API --------------------------------------------------------

    def run(self) -> ExecutionTrace:
        """Execute from the main program to completion."""
        try:
            self._invoke(self.program.main, [])
        except _StopSignal:
            self.trace.stopped = True
        return self.trace

    # -- invocation ---------------------------------------------------------

    def _invoke(self, name: str, bound_args: list) -> object:
        lowered_proc = self.lowered.procedures[name]
        procedure = lowered_proc.procedure
        frame = _Frame(name)

        formals = procedure.formals
        if len(bound_args) != len(formals):
            raise InterpError(f"{name}: argument count mismatch")
        for formal, bound in zip(formals, bound_args):
            if formal.is_array:
                if not isinstance(bound, ArrayStorage):
                    raise InterpError(f"{name}: array expected for {formal.name}")
                frame.arrays[formal] = bound
            else:
                frame.cells[formal] = bound

        for symbol in procedure.symtab:
            if symbol.kind is SymbolKind.FORMAL or symbol.kind is SymbolKind.NAMED_CONST:
                continue
            if symbol.kind is SymbolKind.GLOBAL:
                assert symbol.global_id is not None
                if symbol.is_array:
                    frame.arrays[symbol] = self.global_arrays[symbol.global_id]
                else:
                    frame.cells[symbol] = self.global_cells[symbol.global_id]
            elif symbol.is_array:
                frame.arrays[symbol] = ArrayStorage(symbol.name, symbol.dims)
            else:
                frame.cells[symbol] = Cell()

        self._record_entry(name, procedure, frame)
        self._execute(lowered_proc, frame)

        result_symbol = procedure.result_symbol
        if result_symbol is not None:
            return frame.cells[result_symbol].load(f"{name} result")
        return None

    def _record_entry(self, name: str, procedure, frame: _Frame) -> None:
        snapshot: dict = {}
        for symbol, cell in frame.cells.items():
            if symbol.type not in (Type.INTEGER, Type.LOGICAL):
                continue
            key = None
            if symbol.kind is SymbolKind.FORMAL:
                key = symbol.name
            elif symbol.kind is SymbolKind.GLOBAL:
                key = symbol.global_id
            if key is None or not cell.is_defined:
                continue
            snapshot[key] = cell.load(symbol.name)
        # Globals the procedure does not declare still have entry values.
        seen_gids = {s.global_id for s in frame.cells if s.kind is SymbolKind.GLOBAL}
        for gid, cell in self.global_cells.items():
            if gid in seen_gids or not cell.is_defined:
                continue
            gvar = self.program.globals[gid]
            if gvar.type in (Type.INTEGER, Type.LOGICAL):
                snapshot[gid] = cell.load(gvar.display)
        self.trace.entries.setdefault(name, []).append(snapshot)

    # -- execution ----------------------------------------------------------

    def _execute(self, lowered_proc, frame: _Frame) -> None:
        cfg = lowered_proc.cfg
        block = cfg.blocks[cfg.entry_id]
        index = 0
        while True:
            if index >= len(block.instrs):
                raise InterpError(
                    f"{frame.proc_name}: fell off block B{block.id}"
                )
            instr = block.instrs[index]
            self.trace.steps += 1
            if self.trace.steps > self.max_steps:
                raise InterpError("step limit exceeded")

            if isinstance(instr, Jump):
                block = cfg.blocks[instr.target]
                index = 0
                continue
            if isinstance(instr, CJump):
                taken = bool(self._load(instr.cond, frame))
                block = cfg.blocks[instr.if_true if taken else instr.if_false]
                index = 0
                continue
            if isinstance(instr, Return):
                return
            if isinstance(instr, Stop):
                raise _StopSignal()

            self._execute_simple(instr, frame)
            index += 1

    def _execute_simple(self, instr, frame: _Frame) -> None:
        if isinstance(instr, BinOp):
            left = self._load(instr.left, frame)
            right = self._load(instr.right, frame)
            try:
                value = semantics.apply_binary(instr.op, left, right)
            except semantics.EvalError as exc:
                raise InterpError(str(exc)) from exc
            self._store(instr.dest, value, frame)
        elif isinstance(instr, UnOp):
            operand = self._load(instr.operand, frame)
            self._store(instr.dest, semantics.apply_unary(instr.op, operand), frame)
        elif isinstance(instr, IntrinsicOp):
            args = [self._load(a, frame) for a in instr.args]
            try:
                value = semantics.apply_intrinsic(instr.name, args)
            except semantics.EvalError as exc:
                raise InterpError(str(exc)) from exc
            self._store(instr.dest, value, frame)
        elif isinstance(instr, Convert):
            value = self._load(instr.operand, frame)
            if instr.to_type is Type.INTEGER:
                value = int(value)
            elif instr.to_type is Type.REAL:
                value = float(value)
            self._store(instr.dest, value, frame)
        elif isinstance(instr, Copy):
            self._store(instr.dest, self._load(instr.src, frame), frame)
        elif isinstance(instr, LoadArr):
            storage = self._array_of(instr.array, frame)
            indices = [int(self._load(i, frame)) for i in instr.indices]
            self._store(instr.dest, storage.load(indices), frame)
        elif isinstance(instr, StoreArr):
            storage = self._array_of(instr.array, frame)
            indices = [int(self._load(i, frame)) for i in instr.indices]
            value = self._load(instr.src, frame)
            if instr.array.type is Type.INTEGER:
                value = int(value)
            elif instr.array.type is Type.REAL:
                value = float(value)
            storage.store(indices, value)
        elif isinstance(instr, Call):
            self._execute_call(instr, frame)
        elif isinstance(instr, ReadVar):
            cell = frame.cells[instr.target.symbol]
            cell.store(self._next_input(instr.target.symbol))
        elif isinstance(instr, ReadArr):
            storage = self._array_of(instr.array, frame)
            indices = [int(self._load(i, frame)) for i in instr.indices]
            storage.store(indices, self._next_input(instr.array))
        elif isinstance(instr, WriteOut):
            for operand in instr.values:
                self.trace.outputs.append(self._load(operand, frame))
        elif isinstance(instr, (Phi, CallKill)):
            raise InterpError(
                f"{type(instr).__name__} in executable IR (run on pre-SSA form)"
            )
        else:  # pragma: no cover
            raise InterpError(f"cannot execute {type(instr).__name__}")

    def _execute_call(self, call: Call, frame: _Frame) -> None:
        bound = [self._bind_argument(arg, frame) for arg in call.args]
        result = self._invoke(call.callee, bound)
        if call.dest is not None:
            self._store(call.dest, result, frame)

    def _bind_argument(self, arg: Argument, frame: _Frame):
        if arg.kind is ArgumentKind.VAR:
            assert isinstance(arg.value, VarUse)
            return frame.cells[arg.value.symbol]
        if arg.kind is ArgumentKind.ARRAY:
            assert arg.symbol is not None
            return self._array_of(arg.symbol, frame)
        if arg.kind is ArgumentKind.ARRAY_ELEMENT:
            assert arg.symbol is not None
            storage = self._array_of(arg.symbol, frame)
            indices = [int(self._load(i, frame)) for i in arg.indices]
            return ElementCell(storage, indices)
        assert arg.value is not None
        value = self._load(arg.value, frame)
        return Cell(value)

    def _next_input(self, what) -> object:
        if self._input_pos >= len(self.inputs):
            raise InterpError(f"input exhausted reading {what}")
        value = self.inputs[self._input_pos]
        self._input_pos += 1
        return value

    # -- operand access -------------------------------------------------------

    def _load(self, operand: Operand, frame: _Frame):
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Temp):
            if operand not in frame.temps:
                raise InterpError(f"read of undefined temp {operand}")
            return frame.temps[operand]
        if isinstance(operand, VarUse):
            return frame.cells[operand.symbol].load(operand.symbol.name)
        raise InterpError(f"cannot load operand {operand!r}")

    def _store(self, dest, value, frame: _Frame) -> None:
        if isinstance(dest, Temp):
            frame.temps[dest] = value
            return
        assert isinstance(dest, VarDef)
        symbol = dest.symbol
        if symbol.type is Type.INTEGER and isinstance(value, float):
            value = int(value)
        frame.cells[symbol].store(value)

    def _array_of(self, symbol: Symbol, frame: _Frame) -> ArrayStorage:
        storage = frame.arrays.get(symbol)
        if storage is None:
            raise InterpError(f"no storage for array {symbol.name}")
        return storage


def run_program(
    source_or_program,
    inputs: list | None = None,
    max_steps: int = 2_000_000,
) -> ExecutionTrace:
    """Parse (if needed), lower, and execute a program."""
    from repro.frontend.symbols import parse_program

    if isinstance(source_or_program, str):
        program = parse_program(source_or_program)
        lowered = lower_program(program)
    elif isinstance(source_or_program, LoweredProgram):
        lowered = source_or_program
    else:
        lowered = lower_program(source_or_program)
    return Interpreter(lowered, inputs=inputs, max_steps=max_steps).run()
