"""Reference interpreter for MiniFortran.

Executes the lowered IR directly (call-by-reference, COMMON storage,
FORTRAN arithmetic) and records the values of every formal and global at
every procedure entry. The recorded trace is the ground truth against
which the analyzer's CONSTANTS sets are differentially tested: every
claimed interprocedural constant must equal the observed value on every
recorded invocation.
"""

from repro.interp.interpreter import (
    ExecutionTrace,
    InterpError,
    Interpreter,
    run_program,
)
from repro.interp.soundness import SoundnessViolation, check_soundness

__all__ = [
    "ExecutionTrace",
    "InterpError",
    "Interpreter",
    "SoundnessViolation",
    "check_soundness",
    "run_program",
]
