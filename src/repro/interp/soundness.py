"""Differential soundness checking.

``CONSTANTS(p)`` claims that a (name, value) pair holds on *every* entry
to ``p`` (paper §2). The interpreter records the actual entry values; this
module cross-checks every claim against every recorded invocation. Any
mismatch is a soundness bug in the analyzer — the strongest form of
validation the reproduction has.

A claimed constant for an entry the trace never recorded (the variable was
undefined at run time, or the procedure was never called) is vacuously
sound and is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.driver import AnalysisResult
from repro.diagnostics.core import Diagnostic, Severity, describe_code
from repro.interp.interpreter import ExecutionTrace

CODE_UNSOUND_CONSTANT = describe_code(
    "RL401", "CONSTANTS claim contradicted by an observed execution"
)


@dataclass(frozen=True)
class SoundnessViolation:
    """One observed contradiction of a CONSTANTS claim."""

    procedure: str
    key: object
    claimed: object
    observed: object
    invocation: int

    def __str__(self) -> str:
        return (
            f"{self.procedure}: claimed {self.key} = {self.claimed!r} but "
            f"invocation {self.invocation} observed {self.observed!r}"
        )

    def diagnostic(self) -> Diagnostic:
        """The violation as the shared lint report type, so ``repro run
        --check`` and ``repro lint`` speak one format."""
        return Diagnostic(
            code=CODE_UNSOUND_CONSTANT,
            severity=Severity.ERROR,
            message=str(self),
            pass_name="soundness",
            procedure=self.procedure,
        )


def check_soundness(
    result: AnalysisResult, trace: ExecutionTrace
) -> list[SoundnessViolation]:
    """Return every violated constant claim (empty list = sound run)."""
    violations: list[SoundnessViolation] = []
    for proc_name in result.lowered.procedures:
        claims = result.solved.constants(proc_name)
        if not claims:
            continue
        for invocation, snapshot in enumerate(trace.invocations(proc_name)):
            for key, claimed in claims.items():
                if key not in snapshot:
                    continue
                observed = snapshot[key]
                matches = observed == claimed and isinstance(
                    observed, bool
                ) == isinstance(claimed, bool)
                if not matches:
                    violations.append(
                        SoundnessViolation(
                            procedure=proc_name,
                            key=key,
                            claimed=claimed,
                            observed=observed,
                            invocation=invocation,
                        )
                    )
    return violations


def soundness_diagnostics(
    result: AnalysisResult, trace: ExecutionTrace
) -> list[Diagnostic]:
    """:func:`check_soundness`, reported as :class:`Diagnostic` objects."""
    return [violation.diagnostic() for violation in check_soundness(result, trace)]
