"""Canonical serialization and content fingerprints for the store.

Everything persisted is JSON produced by :func:`canonical_dumps` —
sorted keys, no whitespace — so byte identity means structural identity
and sha256 over the bytes is a usable content address.

Two properties matter for soundness:

- **Site ids never appear in payloads.** Lowered call-site ids are
  assigned program-wide and shift when an unrelated procedure gains or
  loses a call, so a stored jump-function table keyed by raw site id
  would spuriously mismatch (or worse, silently alias) after an edit.
  Forward jump functions are instead serialized per procedure in the
  procedure's textual call-site order, which is stable under edits to
  *other* procedures.
- **The fingerprint covers everything a procedure's jump functions and
  MOD/REF behaviour are derived from**: the lowered IR listing, the
  formal signature, the procedure's transitive MOD/REF slice, and the
  analysis configuration. A callee body change that alters MOD/REF
  propagates into every transitive caller's fingerprint through the
  slice, which is exactly when callers' SSA/value numbering can change.
"""

from __future__ import annotations

import hashlib
import json

from repro.analysis.valuenum import RESULT_KEY
from repro.core.config import AnalysisConfig
from repro.core.exprs import (
    BOTTOM_EXPR,
    ConstExpr,
    EntryExpr,
    EntryKey,
    OpExpr,
    ValueExpr,
    const_expr,
    entry_expr,
    make_binary,
    make_intrinsic,
    make_unary,
)
from repro.core.lattice import BOTTOM, TOP, LatticeValue
from repro.frontend.symbols import GlobalId, Program
from repro.ir.lower import LoweredProgram
from repro.ir.printer import format_cfg

#: bump when any serialized shape changes — a store written by another
#: schema is treated as foreign and rebuilt from scratch.
SCHEMA = 1


def canonical_dumps(payload) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def sha256_of(payload) -> str:
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


# -- lattice values and entry keys --------------------------------------------


def encode_value(value: LatticeValue):
    if value is TOP:
        return "T"
    if value is BOTTOM:
        return "B"
    if isinstance(value, bool):
        return ["b", value]
    return ["i", int(value)]


def decode_value(encoded) -> LatticeValue:
    if encoded == "T":
        return TOP
    if encoded == "B":
        return BOTTOM
    tag, raw = encoded
    if tag == "b":
        return bool(raw)
    if tag == "i":
        return int(raw)
    raise ValueError(f"unknown lattice value encoding: {encoded!r}")


def encode_key(key: EntryKey) -> str:
    if isinstance(key, GlobalId):
        return f"g:{key.block}:{key.offset}"
    if key == RESULT_KEY:
        return "r:"
    return f"f:{key}"


def decode_key(encoded: str) -> EntryKey:
    kind, _, rest = encoded.partition(":")
    if kind == "g":
        block, _, offset = rest.rpartition(":")
        return GlobalId(block, int(offset))
    if kind == "r":
        return RESULT_KEY
    if kind == "f":
        return rest
    raise ValueError(f"unknown entry key encoding: {encoded!r}")


# -- jump-function expressions ------------------------------------------------


def encode_expr(expr: ValueExpr):
    if expr.is_bottom:
        return ["bot"]
    cls = expr.__class__
    if cls is ConstExpr:
        tag = "b" if isinstance(expr.value, bool) else "i"
        return ["c", tag, expr.value]
    if cls is EntryExpr:
        return ["e", encode_key(expr.key)]
    if cls is OpExpr:
        return ["o", expr.op, expr.arity, [encode_expr(a) for a in expr.args]]
    raise ValueError(f"unencodable expression type: {cls.__name__}")


def decode_expr(encoded) -> ValueExpr:
    """Rebuild an interned expression through the smart constructors, so
    a decoded tree is identical (by identity) to a freshly built one."""
    tag = encoded[0]
    if tag == "bot":
        return BOTTOM_EXPR
    if tag == "c":
        _, kind, raw = encoded
        return const_expr(bool(raw) if kind == "b" else int(raw))
    if tag == "e":
        return entry_expr(decode_key(encoded[1]))
    if tag == "o":
        _, op, arity, raw_args = encoded
        args = [decode_expr(a) for a in raw_args]
        if arity == "bin":
            return make_binary(op, args[0], args[1])
        if arity == "un":
            return make_unary(op, args[0])
        if arity == "intrinsic":
            return make_intrinsic(op, args)
        raise ValueError(f"unknown operator arity: {arity!r}")
    raise ValueError(f"unknown expression encoding: {encoded!r}")


def encode_env(env: dict[EntryKey, LatticeValue]) -> dict:
    return {encode_key(key): encode_value(value) for key, value in env.items()}


def decode_env(
    encoded: dict, keys: list[EntryKey]
) -> dict[EntryKey, LatticeValue]:
    """Decode a stored entry environment against the *current* key set.

    Raises ``ValueError`` when the stored environment does not cover
    exactly the procedure's current entry keys — a shape mismatch means
    the snapshot does not describe this program and the caller must fall
    back to a cold run.
    """
    env: dict[EntryKey, LatticeValue] = {}
    for key in keys:
        slot = encoded.get(encode_key(key))
        if slot is None:
            raise ValueError(f"stored environment is missing {key!r}")
        env[key] = decode_value(slot)
    if len(encoded) != len(keys):
        raise ValueError("stored environment has extra keys")
    return env


# -- procedure payloads -------------------------------------------------------


def config_key(config: AnalysisConfig) -> str:
    """A stable identity for everything configuration-dependent in the
    pipeline. The dataclass repr enumerates every field, so any new
    config knob automatically partitions the store."""
    return repr(config)


def procedure_fingerprint(
    name: str,
    lowered: LoweredProgram,
    modref,
    cfg_key: str,
) -> str:
    """Content fingerprint of one procedure: lowered IR + formal
    signature + the procedure's transitive MOD/REF slice + config."""
    proc = lowered.procedures[name]
    signature = [
        [f.name, f.type.name, bool(f.is_array)]
        for f in proc.procedure.formals
    ]
    slice_payload = {
        "mod_formals": sorted(modref.mod_formals.get(name, ())),
        "mod_globals": sorted(
            encode_key(g) for g in modref.mod_globals.get(name, ())
        ),
        "ref_formals": sorted(modref.ref_formals.get(name, ())),
        "ref_globals": sorted(
            encode_key(g) for g in modref.ref_globals.get(name, ())
        ),
    }
    payload = {
        "schema": SCHEMA,
        "proc": name,
        "config": cfg_key,
        "ir": format_cfg(proc.cfg, name),
        "signature": signature,
        "modref": slice_payload,
    }
    return sha256_of(payload)


def globals_fingerprint(program: Program) -> str:
    """Identity of the COMMON-block layout and DATA initializations —
    the main program's seed environment and every procedure's global key
    set derive from it, so a change invalidates everything."""
    rows = sorted(
        [
            gid.block,
            gid.offset,
            gvar.type.name,
            bool(gvar.is_array),
            encode_value(gvar.data_value)
            if isinstance(gvar.data_value, (bool, int))
            else None,
        ]
        for gid, gvar in program.globals.items()
    )
    return sha256_of({"schema": SCHEMA, "globals": rows})


def encode_forward_jfs(proc: str, lowered: LoweredProgram, sites) -> list:
    """The procedure's forward jump functions, one entry per call site
    in textual (lowering) order, without raw site ids."""
    entries = []
    for site_id in sorted(lowered.call_sites):
        caller, _ = lowered.call_sites[site_id]
        if caller != proc:
            continue
        site = sites.get(site_id)
        if site is None:
            continue
        entries.append(
            {
                "callee": site.callee,
                "formals": {
                    name: encode_expr(jf.expr)
                    for name, jf in sorted(site.formals.items())
                },
                "globals": {
                    encode_key(gid): encode_expr(jf.expr)
                    for gid, jf in sorted(
                        site.globals.items(), key=lambda kv: encode_key(kv[0])
                    )
                },
            }
        )
    return entries


def encode_return_jfs(proc: str, table) -> dict:
    """The procedure's return jump functions (stage 1), stored for
    observability. Deliberately *not* part of the change comparison: a
    procedure's own return jump function affects neither its entry
    environment nor its outgoing forward jump functions — callers'
    forward functions absorb callee return functions during value
    numbering, so any effect shows up in the callers' payloads."""
    row = table.get(proc, {})
    return {
        encode_key(key): encode_expr(expr)
        for key, expr in sorted(row.items(), key=lambda kv: encode_key(kv[0]))
    }
