"""Snapshot publication, the change diff, and the warm-start plan.

A *snapshot* records, per procedure and configuration: the content
fingerprint, the canonical forward jump-function payload (by object
sha), the stage-1 return jump functions (observability only — see
:func:`repro.store.fingerprints.encode_return_jfs` for why they are
excluded from the change comparison), the solved entry environment, the
reached flag, and the call-graph adjacency at publication time.

The invalidation rule, given that stages 0–2 are rebuilt from source on
every run (they are cheap and config-independent stage 0 is cached
anyway):

    changed  = procedures whose fingerprint differs from the snapshot,
               whose freshly built forward jump-function payload differs
               from the stored one, or which are new to the program
             ∪ procedures removed since the snapshot
    INVALID  = changed ∪ descendants(changed)   (callee direction,
               over the union of the current adjacency and the
               snapshot adjacency of changed/removed procedures)
    clean    = everything else

Why descendants suffice — and ancestors are *not* needed: a procedure's
entry environment is determined by its callers' environments and their
jump functions. For a clean procedure every caller is clean (the
closure guarantees it: an invalid caller would make the procedure a
descendant of something changed), callers' jump functions are
byte-identical to the snapshot, and — inductively, in condensation
order — callers' environments are identical too, as is reachability.
Entry environments only propagate *down* the call graph, so nothing
above a changed procedure can observe the change; its substitutions are
recomputed from fresh IR every run regardless. The snapshot adjacency
of changed/removed procedures joins the closure so that a *deleted*
call edge still invalidates its former callee (whose meet lost a
contributor).

A globals-table change (COMMON layout or DATA values) shifts every
procedure's key set and the main program's seed environment, so it
marks every procedure changed — an effectively cold run, but not a
store *fallback* (the snapshot was consistent, just fully stale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.callgraph.graph import CallGraph
from repro.core.engine import entry_keys
from repro.core.solver import SolveResult, WarmStart
from repro.ir.lower import LoweredProgram
from repro.store.artifacts import StoreError
from repro.store.fingerprints import (
    SCHEMA,
    decode_env,
    encode_env,
    encode_forward_jfs,
    encode_return_jfs,
    globals_fingerprint,
    procedure_fingerprint,
    sha256_of,
)


@dataclass(frozen=True)
class IncrementalReport:
    """What one incremental attempt did, for --stats and the benchmarks.

    ``mode`` is ``"cold"`` (no usable snapshot — including the very
    first run), ``"warm"`` (clean regions adopted), or ``"fallback"``
    (a snapshot existed but could not be trusted: the RL530 path).
    The flat engine's slab tier (:mod:`repro.store.slabs`) adds
    ``"slab"`` (a persistent slab adopted wholesale) and
    ``"slab-patch"`` (loaded, then the changed procedures' firing
    blocks spliced); its untrusted-artifact path reuses ``"fallback"``
    (RL532).
    """

    mode: str
    changed: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    invalid: tuple[str, ...] = ()
    clean: int = 0
    store_fallbacks: int = 0
    detail: str = ""

    def counters(self) -> dict[str, int]:
        return {
            "procs_changed": len(self.changed),
            "procs_invalid": len(self.invalid),
            "procs_clean": self.clean,
            "store_fallbacks": self.store_fallbacks,
        }


def publish_snapshot(
    store,
    *,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref,
    forward,
    returns_table,
    solved: SolveResult,
) -> dict:
    """Write one configuration's artifacts and append the snapshot line.
    Returns the snapshot meta (tests inspect it)."""
    procs: dict[str, dict] = {}
    for name in sorted(lowered.procedures):
        jf_payload = encode_forward_jfs(name, lowered, forward.sites)
        procs[name] = {
            "fp": procedure_fingerprint(name, lowered, modref, cfg_key),
            "jf": store.put_object(jf_payload),
            "rjf": store.put_object(encode_return_jfs(name, returns_table)),
            "env": store.put_object(encode_env(solved.val.get(name, {}))),
            "reached": name in solved.reached,
            "callees": graph.callees(name),
        }
    meta = {
        "schema": SCHEMA,
        "main": lowered.program.main,
        "globals_fp": globals_fingerprint(lowered.program),
        "procs": procs,
    }
    store.append_snapshot(cfg_key, lowered.program.main, meta)
    return meta


def diff_snapshot(
    snapshot: dict,
    *,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref,
    forward,
) -> tuple[set[str], set[str], set[str]]:
    """``(changed, removed, invalid)`` per the module-docstring rule.
    Raises :class:`StoreError` on a malformed snapshot."""
    try:
        if snapshot.get("schema") != SCHEMA:
            raise StoreError("snapshot schema mismatch")
        stored_procs = snapshot["procs"]
        current = set(lowered.procedures)
        removed = set(stored_procs) - current
        if snapshot.get("globals_fp") != globals_fingerprint(lowered.program):
            changed = set(current)
        else:
            changed = set()
            for name in current:
                stored = stored_procs.get(name)
                if stored is None:
                    changed.add(name)
                    continue
                fp = procedure_fingerprint(name, lowered, modref, cfg_key)
                if stored["fp"] != fp:
                    changed.add(name)
                    continue
                jf_sha = sha256_of(
                    encode_forward_jfs(name, lowered, forward.sites)
                )
                if stored["jf"] != jf_sha:
                    changed.add(name)
        # descendants over current adjacency plus the snapshot adjacency
        # of changed/removed procedures (a deleted edge must still
        # invalidate its former callee)
        stack = list(changed | removed)
        invalid = set(stack)
        while stack:
            proc = stack.pop()
            callees = list(graph.callees(proc)) if proc in current else []
            if proc in changed or proc in removed:
                stored = stored_procs.get(proc)
                if stored is not None:
                    callees.extend(stored.get("callees", ()))
            for callee in callees:
                if callee not in invalid:
                    invalid.add(callee)
                    stack.append(callee)
        invalid &= current  # removed procedures have no environment now
        return changed, removed, invalid
    except (KeyError, TypeError, AttributeError) as exc:
        raise StoreError(f"snapshot malformed: {exc}") from exc


def plan_warm_start(
    store,
    snapshot: dict,
    *,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref,
    forward,
) -> tuple[WarmStart, IncrementalReport]:
    """Build the solver's :class:`WarmStart` from a trusted snapshot.

    Raises :class:`StoreError` whenever anything about the snapshot or
    its objects cannot be verified — the caller falls back to a cold
    run (RL530) and republishes.
    """
    changed, removed, invalid = diff_snapshot(
        snapshot,
        cfg_key=cfg_key,
        lowered=lowered,
        graph=graph,
        modref=modref,
        forward=forward,
    )
    current = set(lowered.procedures)
    clean = current - invalid
    keys_of = entry_keys(lowered)
    envs = {}
    reached = set()
    try:
        stored_procs = snapshot["procs"]
        for name in clean:
            stored = stored_procs[name]
            encoded = store.get_object(stored["env"])
            if not isinstance(encoded, dict):
                raise StoreError(f"environment object for {name} malformed")
            envs[name] = decode_env(encoded, keys_of.get(name, []))
            if stored.get("reached"):
                reached.add(name)
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"snapshot inconsistent: {exc}") from exc
    if snapshot.get("main") != lowered.program.main:
        raise StoreError("snapshot belongs to a different program")
    warm = WarmStart(
        clean=frozenset(clean),
        envs=envs,
        reached=frozenset(reached),
    )
    report = IncrementalReport(
        mode="warm",
        changed=tuple(sorted(changed)),
        removed=tuple(sorted(removed)),
        invalid=tuple(sorted(invalid)),
        clean=len(clean),
    )
    return warm, report
