"""Persistent content-addressed artifact store for incremental analysis.

- :mod:`repro.store.fingerprints` — canonical serialization of lattice
  values, entry keys, jump-function expressions, and procedure-level
  content fingerprints (lowered IR + MOD/REF slice + configuration).
- :mod:`repro.store.artifacts` — the on-disk store: a fingerprinted,
  fsync'd, torn-line-tolerant ``index.jsonl`` (same discipline as the
  resilience journal) over content-addressed ``objects/<sha256>.json``
  payloads, plus an in-memory stand-in with the same duck type.
- :mod:`repro.store.incremental` — snapshot construction, the
  fingerprint/jump-function diff, the invalidation closure, and the
  warm-start plan the solvers consume.
- :mod:`repro.store.slabs` — persistent flat-engine slabs: the
  self-verifying binary blob format, publication keyed by source sha
  and per-procedure fingerprints, and the load/patch warm plan.
"""

from repro.store.artifacts import ArtifactStore, MemoryStore, StoreError
from repro.store.incremental import IncrementalReport
from repro.store.slabs import (
    SLAB_SCHEMA,
    deserialize_slab,
    plan_slab,
    publish_slab,
    serialize_slab,
)

__all__ = [
    "ArtifactStore",
    "MemoryStore",
    "StoreError",
    "IncrementalReport",
    "SLAB_SCHEMA",
    "deserialize_slab",
    "plan_slab",
    "publish_slab",
    "serialize_slab",
]
