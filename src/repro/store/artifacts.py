"""The persistent content-addressed artifact store.

Layout under the store directory::

    index.jsonl              append-only snapshot index (fsync'd)
    objects/<sha256>.json    canonical-JSON payloads, content-addressed
    objects/<sha256>.bin     raw binary blobs (slab artifacts), ditto

``index.jsonl`` follows the resilience journal's discipline: line 0 is a
header carrying the store schema; a torn final line (crash mid-append)
is skipped; a missing, foreign, or corrupt header resets the index —
every object file it pointed at simply becomes garbage that later
snapshots may re-reference (content addressing makes re-publication
free). Snapshot lines are keyed by ``(config, program)``; the *last*
matching line wins, so re-publishing is an append, never a rewrite.

Objects are written canonically (sorted keys, no whitespace) to a
temporary file and renamed into place, and every read re-hashes the
bytes against the file's name — a truncated or tampered object can only
produce a :class:`StoreError`, never a silently wrong payload.

:class:`MemoryStore` is the in-process stand-in with the same duck type
(the default store of :class:`repro.core.driver.Analyzer`, so
``reanalyze`` works without touching disk).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile

try:  # advisory index locking; POSIX-only, degrades to unlocked
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.store.fingerprints import SCHEMA, canonical_dumps

_INDEX = "index.jsonl"
_LOCK = "index.lock"
_OBJECTS = "objects"


class StoreError(Exception):
    """A store entry could not be trusted (missing, truncated, foreign,
    or content-hash mismatch). Callers treat this as "no snapshot" and
    fall back to a cold run — never as a fatal error."""


class StoreIndexError(StoreError):
    """The index itself was unreadable or foreign and has been reset."""


class ArtifactStore:
    """On-disk store; see the module docstring for the layout."""

    def __init__(self, path: str):
        self.path = path
        self._objects_dir = os.path.join(path, _OBJECTS)
        self._index_path = os.path.join(path, _INDEX)
        self._lock_path = os.path.join(path, _LOCK)
        os.makedirs(self._objects_dir, exist_ok=True)

    @contextlib.contextmanager
    def _index_lock(self):
        """Advisory exclusive lock serializing index mutation.

        Two daemon requests (or two sweep workers) publishing the same
        fingerprint race on ``index.jsonl``: the append itself is a
        single ``write`` on an ``O_APPEND`` descriptor, but the
        check-then-write-header path can *truncate* the index a
        concurrent writer just appended to. The lock lives on a separate
        file so readers (which tolerate torn lines by design) never
        block and the index file itself is never opened just to lock it.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        fd = os.open(self._lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- objects --------------------------------------------------------------

    def put_object(self, payload) -> str:
        """Persist one canonical-JSON payload; returns its sha256 name.
        Identical payloads across snapshots share one file."""
        text = canonical_dumps(payload)
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        target = os.path.join(self._objects_dir, f"{sha}.json")
        if os.path.exists(target):
            # dedup only against a *verified* twin; a corrupted or torn
            # file on disk gets rewritten so re-publication self-heals
            try:
                with open(target, encoding="utf-8") as handle:
                    if handle.read() == text:
                        return sha
            except OSError:
                pass
        fd, tmp = tempfile.mkstemp(dir=self._objects_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return sha

    def get_object(self, sha: str):
        """Load and verify one payload; :class:`StoreError` on any
        missing, truncated, or corrupted object."""
        target = os.path.join(self._objects_dir, f"{sha}.json")
        try:
            with open(target, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise StoreError(f"object {sha} unreadable: {exc}") from exc
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest != sha:
            raise StoreError(
                f"object {sha} failed content verification (got {digest})"
            )
        self._touch(target)
        try:
            return json.loads(text)
        except ValueError as exc:
            raise StoreError(f"object {sha} is not JSON: {exc}") from exc

    # -- binary blobs ---------------------------------------------------------

    def put_blob(self, data: bytes) -> str:
        """Persist one raw binary blob (a serialized slab); returns its
        sha256 name. Same write discipline as :meth:`put_object` — dedup
        only against a verified twin, temp-file + rename + fsync."""
        sha = hashlib.sha256(data).hexdigest()
        target = os.path.join(self._objects_dir, f"{sha}.bin")
        if os.path.exists(target):
            try:
                with open(target, "rb") as handle:
                    if handle.read() == data:
                        return sha
            except OSError:
                pass
        fd, tmp = tempfile.mkstemp(dir=self._objects_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return sha

    def get_blob(self, sha: str) -> bytes:
        """Load and verify one blob; :class:`StoreError` on any missing,
        truncated, or corrupted blob. A verified read refreshes the
        file's mtime — the "recently verified" signal :meth:`gc` evicts
        by."""
        target = os.path.join(self._objects_dir, f"{sha}.bin")
        try:
            with open(target, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StoreError(f"blob {sha} unreadable: {exc}") from exc
        digest = hashlib.sha256(data).hexdigest()
        if digest != sha:
            raise StoreError(
                f"blob {sha} failed content verification (got {digest})"
            )
        self._touch(target)
        return data

    @staticmethod
    def _touch(target: str) -> None:
        """Refresh mtime after a successful verification (best-effort):
        eviction order becomes least-recently-*verified*, so a blob that
        keeps serving warm loads is never the first to go."""
        try:
            os.utime(target)
        except OSError:  # pragma: no cover - read-only store is still usable
            pass

    # -- size control ---------------------------------------------------------

    def gc(self, max_bytes: int) -> dict:
        """Evict least-recently-verified objects until the objects
        directory fits ``max_bytes``, then compact the snapshot index.

        Eviction order is ascending mtime — reads refresh mtime on
        successful verification, so the blobs that keep serving warm
        loads survive. The whole pass (including the index rewrite,
        which drops snapshot lines whose meta references an evicted
        sha) runs under the advisory index lock, so a concurrent
        publisher can neither append to a line set being compacted nor
        observe a half-rewritten index. Returns a report dict.
        """
        with self._index_lock():
            entries = []
            total = 0
            for name in os.listdir(self._objects_dir):
                if not name.endswith((".json", ".bin")):
                    continue
                path = os.path.join(self._objects_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, name, path))
                total += stat.st_size
            before = total
            removed = []
            for _, size, name, path in sorted(entries):
                if total <= max_bytes:
                    break
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                removed.append(name.rsplit(".", 1)[0])
            dropped = 0
            if removed:
                dropped = self._compact_index(set(removed))
        return {
            "before_bytes": before,
            "after_bytes": total,
            "removed_objects": len(removed),
            "dropped_snapshots": dropped,
        }

    def _compact_index(self, removed: set[str]) -> int:
        """Rewrite the index without snapshot lines whose meta references
        an evicted sha (their objects are gone; keeping the lines would
        turn every future load into a verification failure). Caller
        holds the index lock."""
        if not os.path.exists(self._index_path):
            return 0
        kept: list[str] = []
        dropped = 0
        with open(self._index_path) as handle:
            for line_no, line in enumerate(handle):
                if line_no == 0:
                    continue  # header is rewritten below
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn line: compacting drops it
                if (
                    isinstance(event, dict)
                    and event.get("kind") == "snapshot"
                    and _references_any(event.get("meta"), removed)
                ):
                    dropped += 1
                    continue
                kept.append(line if line.endswith("\n") else line + "\n")
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(
                    json.dumps({"kind": "header", "schema": SCHEMA}) + "\n"
                )
                handle.writelines(kept)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._index_path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return dropped

    # -- the snapshot index ---------------------------------------------------

    def append_snapshot(self, config_key: str, program: str, meta: dict) -> None:
        """Publish a snapshot line (fsync'd append; header written on
        first use or after a reset). The whole check-header-then-append
        runs under the advisory index lock so two concurrent publishers
        can neither interleave a torn entry nor have one truncate the
        index (header rewrite) while the other appends."""
        line = json.dumps(
            {
                "kind": "snapshot",
                "config": config_key,
                "program": program,
                "meta": meta,
            }
        )
        with self._index_lock():
            if not os.path.exists(self._index_path):
                self._write_header()
            with open(self._index_path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def load_snapshot(self, config_key: str, program: str) -> dict | None:
        """The latest snapshot for ``(config, program)``, or ``None``.

        Torn/malformed body lines are skipped (earlier snapshots still
        count). A missing index means "no snapshot yet". An unreadable
        or foreign *header* raises :class:`StoreIndexError` after
        resetting the index — the caller reports the reset and runs
        cold.
        """
        if not os.path.exists(self._index_path):
            return None
        found: dict | None = None
        header_ok = False
        with open(self._index_path) as handle:
            for line_no, line in enumerate(handle):
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn write: ignore, keep earlier lines
                if line_no == 0:
                    header_ok = (
                        isinstance(event, dict)
                        and event.get("kind") == "header"
                        and event.get("schema") == SCHEMA
                    )
                    if not header_ok:
                        break
                    continue
                if not isinstance(event, dict):
                    continue
                if event.get("kind") != "snapshot":
                    continue
                if (
                    event.get("config") == config_key
                    and event.get("program") == program
                    and isinstance(event.get("meta"), dict)
                ):
                    found = event["meta"]  # last matching line wins
        if not header_ok:
            with self._index_lock():
                self._write_header()
            raise StoreIndexError(
                "store index unreadable or foreign; reset to empty"
            )
        return found

    def _write_header(self) -> None:
        with open(self._index_path, "w") as handle:
            handle.write(
                json.dumps({"kind": "header", "schema": SCHEMA}) + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())


def _references_any(meta, shas: set[str]) -> bool:
    """Whether any string anywhere inside ``meta`` names one of ``shas``
    (snapshot metas reference objects by bare sha256 hex strings)."""
    if isinstance(meta, str):
        return meta in shas
    if isinstance(meta, dict):
        return any(_references_any(v, shas) for v in meta.values())
    if isinstance(meta, (list, tuple)):
        return any(_references_any(v, shas) for v in meta)
    return False


class MemoryStore:
    """In-process stand-in with the :class:`ArtifactStore` duck type."""

    def __init__(self):
        self._objects: dict[str, str] = {}
        self._blobs: dict[str, bytes] = {}
        self._snapshots: dict[tuple[str, str], dict] = {}

    def put_object(self, payload) -> str:
        text = canonical_dumps(payload)
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self._objects[sha] = text
        return sha

    def get_object(self, sha: str):
        text = self._objects.get(sha)
        if text is None:
            raise StoreError(f"object {sha} not present")
        return json.loads(text)

    def put_blob(self, data: bytes) -> str:
        sha = hashlib.sha256(data).hexdigest()
        self._blobs[sha] = data
        return sha

    def get_blob(self, sha: str) -> bytes:
        data = self._blobs.get(sha)
        if data is None:
            raise StoreError(f"blob {sha} not present")
        return data

    def append_snapshot(self, config_key: str, program: str, meta: dict) -> None:
        self._snapshots[(config_key, program)] = json.loads(json.dumps(meta))

    def load_snapshot(self, config_key: str, program: str) -> dict | None:
        return self._snapshots.get((config_key, program))
