"""Persistent slab artifacts: serialize, publish, load, and patch.

The flat engine's :class:`~repro.core.slab.SlabProgram` is expensive to
build (the phase-1 structural sweep dominates cold wall-clock at the
10k-procedure tier) but value-independent — nothing about the 3-level
lattice requires rebuilding structure when only values change. This
module makes built slabs first-class store artifacts:

- :func:`serialize_slab` / :func:`deserialize_slab` — a compact binary
  blob: a 4-byte magic, a versioned header, an ASCII JSON manifest
  (names, the *unique* entry keys, pool values, kernel expressions,
  section table), the raw ``array.tobytes()`` sections back to back
  (including the slot→key-table map), and a sha256 trailer over
  everything preceding it. Kernel closures are not
  picklable, so the manifest stores each kernel's encoded expression
  plus its owning procedure id and the load recompiles it against the
  re-derived slot map; the constant pool is re-interned in stored order
  so every baked pool code stays valid.
- :func:`publish_slab` — puts the blob (content-addressed, binary) and
  a per-procedure ``{fingerprint, jump-function sha}`` map, then
  appends a ``slab:<main>`` snapshot line tying them to the source
  text's sha and the globals fingerprint.
- :func:`plan_slab` — the warm path. Identical source loads the blob
  outright (skipping ``build_slab`` and the phase-1 precompute
  entirely); an edited source falls back to the PR-5 fingerprint diff
  and, when the edit is structure-preserving, splices only the changed
  procedures' firing-stream blocks via
  :func:`~repro.core.slab.patch_slab`. Any header, checksum, schema, or
  object problem raises :class:`~repro.store.artifacts.StoreError`,
  which the driver converts to an RL532 cold rebuild — never a stale
  slab. A snapshot that is merely *absent* or an edit the patcher
  cannot express are plan misses, not fallbacks: the run is cold and no
  degradation is recorded.

Trust model: the blob is covered end to end by its own sha256 trailer
*and* addressed by the sha of its bytes, so truncation, bit flips, and
version skew are all detected on load. The meta line additionally pins
the fingerprint schema and the platform array layout (byte order and
``array('i')`` item size) — a store carried across heterogeneous
machines degrades to a rebuild instead of reinterpreting raw bytes.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array
from time import perf_counter

from repro.callgraph.graph import CallGraph
from repro.core.exprs import compile_slab_expr
from repro.core.slab import CONST_BASE, SlabProgram, patch_slab
from repro.ir.lower import LoweredProgram
from repro.store.artifacts import StoreError
from repro.store.fingerprints import (
    SCHEMA,
    decode_expr,
    decode_key,
    decode_value,
    encode_expr,
    encode_key,
    encode_value,
    globals_fingerprint,
    procedure_fingerprint,
    sha256_of,
)
from repro.store.incremental import IncrementalReport

#: Blob/meta format version — bump on any layout change; a skewed blob
#: is untrusted and degrades to a cold rebuild (RL532).
SLAB_SCHEMA = 1

_MAGIC = b"RSLB"
_HEADER = struct.Struct("<II")  # (schema, manifest length)
_DIGEST_SIZE = 32

#: The slab's array sections, in serialization order. Every entry is an
#: ``array`` attribute of :class:`SlabProgram`; typecodes are pinned so
#: a manifest disagreeing with the running build is rejected.
_SECTIONS = (
    ("slot_base", "i"),
    ("dep_indptr", "i"),
    ("dep_edges", "i"),
    ("init_slots", "i"),
    ("init_vals", "i"),
    ("p1_target", "i"),
    ("p1_kind", "b"),
    ("p1_payload", "i"),
    ("p1_enq", "b"),
    ("p1_block_starts", "i"),
    ("pid_rank", "i"),
    ("callee_indptr", "i"),
    ("callee_ids", "i"),
    ("reached_pids", "i"),
)


def _source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def serialize_slab(slab: SlabProgram) -> bytes:
    """Flatten ``slab`` into the self-verifying binary blob format.

    ``keys_flat`` is huge (one entry per slot) but massively repetitive
    (every procedure shares the program's global ids), so the manifest
    carries only the *unique* encoded keys and a trailing binary section
    maps each slot to its table row — at the 10k tier this more than
    halves the blob and keeps the load's key decoding out of JSON."""
    key_ids: dict = {}
    key_table: list[str] = []
    key_refs = array("i")
    for key in slab.keys_flat:
        ref = key_ids.get(key)
        if ref is None:
            ref = key_ids[key] = len(key_table)
            key_table.append(encode_key(key))
        key_refs.append(ref)
    manifest = {
        "main_id": slab.main_id,
        "nslots": slab.nslots,
        "proc_names": list(slab.proc_names),
        "key_table": key_table,
        "pool": [encode_value(value) for value in slab.pool.values],
        "kernels": [
            [pid, encode_expr(expr)]
            for pid, expr in zip(slab.kernel_pids, slab.kernel_exprs)
        ],
        "sections": [
            [name, typecode, len(getattr(slab, name))]
            for name, typecode in _SECTIONS
        ]
        + [["key_refs", "i", len(key_refs)]],
        "byteorder": sys.byteorder,
        "itemsize": array("i").itemsize,
    }
    manifest_bytes = json.dumps(
        manifest, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")
    parts = [_MAGIC, _HEADER.pack(SLAB_SCHEMA, len(manifest_bytes)), manifest_bytes]
    for name, _typecode in _SECTIONS:
        parts.append(getattr(slab, name).tobytes())
    parts.append(key_refs.tobytes())
    body = b"".join(parts)
    return body + hashlib.sha256(body).digest()


def deserialize_slab(blob: bytes) -> SlabProgram:
    """Rebuild a :class:`SlabProgram` from :func:`serialize_slab` output.

    Raises :class:`StoreError` on *any* problem — bad magic, checksum
    mismatch (truncation, bit flips), schema or platform-layout skew,
    malformed manifest, or inconsistent section shapes. The caller
    treats every failure identically: rebuild cold (RL532).
    """
    try:
        prefix = len(_MAGIC) + _HEADER.size
        if len(blob) < prefix + _DIGEST_SIZE:
            raise ValueError("blob shorter than its fixed header")
        if blob[: len(_MAGIC)] != _MAGIC:
            raise ValueError("bad magic")
        body, digest = blob[:-_DIGEST_SIZE], blob[-_DIGEST_SIZE:]
        if hashlib.sha256(body).digest() != digest:
            raise ValueError("checksum mismatch")
        schema, manifest_len = _HEADER.unpack_from(blob, len(_MAGIC))
        if schema != SLAB_SCHEMA:
            raise ValueError(f"slab blob schema {schema} != {SLAB_SCHEMA}")
        manifest = json.loads(
            blob[prefix : prefix + manifest_len].decode("ascii")
        )
        if (
            manifest["byteorder"] != sys.byteorder
            or manifest["itemsize"] != array("i").itemsize
        ):
            raise ValueError("platform array layout mismatch")

        slab = SlabProgram()
        slab.proc_names = tuple(manifest["proc_names"])
        slab.main_id = int(manifest["main_id"])
        slab.nslots = int(manifest["nslots"])
        pool = slab.pool
        for i, enc in enumerate(manifest["pool"]):
            if pool.encode(decode_value(enc)) != CONST_BASE + i:
                raise ValueError("pool re-interning disagrees with manifest")

        offset = prefix + manifest_len
        table = manifest["sections"]
        expected = [name for name, _ in _SECTIONS] + ["key_refs"]
        if [row[0] for row in table] != expected:
            raise ValueError("section table mismatch")
        key_refs = array("i")
        for (name, typecode), row in zip(
            _SECTIONS + (("key_refs", "i"),), table
        ):
            if row[1] != typecode:
                raise ValueError(f"section {name} typecode skew")
            arr = array(typecode)
            nbytes = int(row[2]) * arr.itemsize
            chunk = body[offset : offset + nbytes]
            if len(chunk) != nbytes:
                raise ValueError(f"section {name} truncated")
            arr.frombytes(chunk)
            if name == "key_refs":
                key_refs = arr
            else:
                setattr(slab, name, arr)
            offset += nbytes
        if offset != len(body):
            raise ValueError("trailing bytes after sections")
        key_table = [decode_key(enc) for enc in manifest["key_table"]]
        slab.keys_flat = tuple(map(key_table.__getitem__, key_refs))

        # Structural sanity — cheap shape invariants the engine relies on.
        nprocs = len(slab.proc_names)
        if (
            len(slab.slot_base) != nprocs + 1
            or slab.nslots != len(slab.keys_flat)
            or (slab.slot_base[-1] if nprocs else 0) != slab.nslots
            or len(slab.dep_indptr) != slab.nslots + 1
            or not (
                len(slab.p1_target)
                == len(slab.p1_kind)
                == len(slab.p1_payload)
                == len(slab.p1_enq)
            )
            or len(slab.p1_block_starts) != len(slab.reached_pids) + 1
            or (
                len(slab.p1_block_starts) > 0
                and slab.p1_block_starts[-1] != len(slab.p1_target)
            )
            or len(slab.pid_rank) != nprocs
            or len(slab.callee_indptr) != nprocs + 1
        ):
            raise ValueError("inconsistent section shapes")

        key_index_cache: dict[int, dict] = {}

        def key_index(pid: int) -> dict:
            ki = key_index_cache.get(pid)
            if ki is None:
                base, end = slab.slot_base[pid], slab.slot_base[pid + 1]
                ki = {
                    slab.keys_flat[slot]: slot for slot in range(base, end)
                }
                key_index_cache[pid] = ki
            return ki

        for pid, enc in manifest["kernels"]:
            if not 0 <= pid < nprocs:
                raise ValueError("kernel owner out of range")
            expr = decode_expr(enc)
            slab.kernels.append(
                compile_slab_expr(expr, key_index(pid), pool.values)
            )
            slab.kernel_pids.append(pid)
            slab.kernel_exprs.append(expr)
        return slab
    except StoreError:
        raise
    except Exception as exc:
        raise StoreError(f"slab blob untrusted: {exc}") from exc


# -- jump-function payloads, one pass ----------------------------------------


def encode_all_forward_jfs(
    lowered: LoweredProgram, sites
) -> dict[str, list]:
    """Every procedure's forward jump-function payload in one sweep.

    Byte-identical per procedure to
    :func:`repro.store.fingerprints.encode_forward_jfs`, but a single
    sorted iteration over the program's call sites instead of one full
    rescan per procedure — the per-procedure version is quadratic at the
    10k tier, which would eat the entire warm-path win during the diff.
    """
    payloads: dict[str, list] = {name: [] for name in lowered.procedures}
    for site_id in sorted(lowered.call_sites):
        caller, _ = lowered.call_sites[site_id]
        site = sites.get(site_id)
        if site is None:
            continue
        entries = payloads.get(caller)
        if entries is None:
            continue
        entries.append(
            {
                "callee": site.callee,
                "formals": {
                    name: encode_expr(jf.expr)
                    for name, jf in sorted(site.formals.items())
                },
                "globals": {
                    encode_key(gid): encode_expr(jf.expr)
                    for gid, jf in sorted(
                        site.globals.items(), key=lambda kv: encode_key(kv[0])
                    )
                },
            }
        )
    return payloads


# -- publish and plan ---------------------------------------------------------


def publish_slab(
    store,
    *,
    cfg_key: str,
    lowered: LoweredProgram,
    modref,
    forward,
    slab: SlabProgram,
) -> dict:
    """Write the slab blob + per-procedure identity map and append the
    ``slab:<main>`` snapshot line. Returns the meta (tests inspect it)."""
    payloads = encode_all_forward_jfs(lowered, forward.sites)
    procs = {
        name: {
            "fp": procedure_fingerprint(name, lowered, modref, cfg_key),
            "jf": sha256_of(payloads[name]),
        }
        for name in sorted(lowered.procedures)
    }
    meta = {
        "schema": SLAB_SCHEMA,
        "fingerprint_schema": SCHEMA,
        "main": lowered.program.main,
        "source_sha": _source_sha(lowered.program.source),
        "globals_fp": globals_fingerprint(lowered.program),
        "blob": store.put_blob(serialize_slab(slab)),
        "procs": store.put_object(procs),
    }
    store.append_snapshot(cfg_key, "slab:" + lowered.program.main, meta)
    return meta


def plan_slab(
    store,
    *,
    cfg_key: str,
    lowered: LoweredProgram,
    graph: CallGraph,
    modref,
    forward,
) -> tuple[SlabProgram | None, IncrementalReport]:
    """Load (or load-and-patch) the stored slab for this program/config.

    Returns ``(slab, report)`` — ``slab`` is ``None`` on a plan miss
    (no artifact, or an edit the patcher cannot express), in which case
    the report's mode is ``"cold"`` and the caller builds normally.
    A loaded slab reports mode ``"slab"``; a spliced one
    ``"slab-patch"``. ``slab.load_seconds`` covers the whole plan —
    blob fetch, deserialization, diff, and splice.

    Raises :class:`~repro.store.artifacts.StoreIndexError` when the
    snapshot index had to be reset (RL531) and :class:`StoreError` when
    an artifact exists but cannot be trusted (RL532); the driver
    degrades both to a cold rebuild.
    """
    main = lowered.program.main
    meta = store.load_snapshot(cfg_key, "slab:" + main)
    if meta is None:
        return None, IncrementalReport(mode="cold", detail="no slab artifact")
    started = perf_counter()
    try:
        if (
            meta.get("schema") != SLAB_SCHEMA
            or meta.get("fingerprint_schema") != SCHEMA
        ):
            raise StoreError("slab meta schema mismatch")
        if meta.get("main") != main:
            raise StoreError("slab artifact names a different program")
        source_sha = _source_sha(lowered.program.source)
        if meta.get("source_sha") == source_sha:
            # Identical text ⇒ identical structure: adopt wholesale.
            slab = deserialize_slab(store.get_blob(meta["blob"]))
            if set(slab.proc_names) != set(lowered.procedures):
                raise StoreError("slab blob names different procedures")
            slab.load_seconds = perf_counter() - started
            return slab, IncrementalReport(
                mode="slab", clean=len(slab.proc_names)
            )

        # Edited source: fingerprint-diff against the stored identity
        # map, then splice only the changed procedures' blocks.
        if meta.get("globals_fp") != globals_fingerprint(lowered.program):
            return None, IncrementalReport(
                mode="cold", detail="globals table changed"
            )
        procs = store.get_object(meta["procs"])
        if not isinstance(procs, dict):
            raise StoreError("slab procedure map malformed")
        current = set(lowered.procedures)
        if set(procs) != current:
            return None, IncrementalReport(
                mode="cold", detail="procedure set changed"
            )
        payloads = encode_all_forward_jfs(lowered, forward.sites)
        changed = []
        for name in sorted(current):
            stored = procs[name]
            if stored.get("fp") != procedure_fingerprint(
                name, lowered, modref, cfg_key
            ) or stored.get("jf") != sha256_of(payloads[name]):
                changed.append(name)
        slab = deserialize_slab(store.get_blob(meta["blob"]))
        if changed and not patch_slab(
            slab, lowered, forward.support_index(lowered), changed
        ):
            return None, IncrementalReport(
                mode="cold",
                changed=tuple(changed),
                detail="edit not structure-preserving",
            )
        slab.load_seconds = perf_counter() - started
        return slab, IncrementalReport(
            mode="slab-patch",
            changed=tuple(changed),
            clean=len(current) - len(changed),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise StoreError(f"slab meta malformed: {exc}") from exc
