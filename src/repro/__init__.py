"""repro — a full reproduction of Grove & Torczon,
"Interprocedural Constant Propagation: A Study of Jump Function
Implementations" (PLDI 1993).

Quick start::

    from repro import analyze, AnalysisConfig, JumpFunctionKind

    result = analyze(source_text,
                     AnalysisConfig(jump_function=JumpFunctionKind.PASS_THROUGH))
    print(result.constants_found)          # the Table 2 cell
    print(result.constants("solver"))      # CONSTANTS(solver)
    print(result.transformed_source())     # constants spliced into the text

Package map:

- :mod:`repro.frontend` — MiniFortran lexer/parser/resolver
- :mod:`repro.ir` — three-address IR and CFGs
- :mod:`repro.analysis` — dominance, SSA, value numbering, SCCP, DCE
- :mod:`repro.callgraph` — call graph and MOD/REF summaries
- :mod:`repro.core` — jump functions, the interprocedural solver,
  substitution, complete propagation (the paper's contribution)
- :mod:`repro.interp` — reference interpreter (differential soundness)
- :mod:`repro.workloads` — the synthetic SPEC/PERFECT-style suite
- :mod:`repro.reporting` — Table 1/2/3 regeneration
"""

# Before the subpackage imports: submodules deep in the tree (e.g. the
# diagnostics emitters) read it while this module is still initializing.
__version__ = "1.0.0"

from repro.core.config import AnalysisConfig, JumpFunctionKind
from repro.core.driver import (
    GLOBAL_STAGE0_CACHE,
    AnalysisResult,
    Analyzer,
    Stage0Artifacts,
    Stage0Cache,
    SweepError,
    SweepSummary,
    analyze,
    build_stage0,
    sweep_programs,
)
from repro.core.lattice import BOTTOM, TOP, is_constant, meet
from repro.frontend.symbols import parse_program
from repro.resilience import (
    ChaosSpec,
    FailureRecord,
    Fault,
    SweepOutcome,
    SweepPolicy,
    run_sweep,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "Analyzer",
    "BOTTOM",
    "ChaosSpec",
    "FailureRecord",
    "Fault",
    "GLOBAL_STAGE0_CACHE",
    "JumpFunctionKind",
    "Stage0Artifacts",
    "Stage0Cache",
    "SweepError",
    "SweepOutcome",
    "SweepPolicy",
    "SweepSummary",
    "TOP",
    "analyze",
    "build_stage0",
    "is_constant",
    "meet",
    "parse_program",
    "run_sweep",
    "sweep_programs",
    "__version__",
]
