"""The generic fixed-point drivers — the scheduling core of stage 3.

Both loops were extracted verbatim from ``repro.core.solver`` (PR 8):
:func:`drive_region_schedule` is the SCC-condensed callers-first
schedule of :func:`repro.core.solver.solve`, and
:func:`drive_global_schedule` is the PR-2 global priority-worklist
schedule of the legacy path. They are analysis-agnostic: the ``engine``
is duck-typed to the four-method surface both
:class:`repro.core.engine.DeltaEngine` and
:class:`repro.framework.engine.ClientEngine` expose —

``seed(proc) -> dict[callee, dict[key, None]]``
    first visit: evaluate every (intra-region) edge once, kill unbound
    keys, return the lowered callee bindings grouped by callee;
``apply_deltas(proc, keys) -> dict[callee, dict[key, None]]``
    re-evaluate only the edges whose support read a lowered key;
``callees(proc) -> tuple[str, ...]``
    flow successors, for reachability;
``flush_region(proc, only=None) -> dict[callee, dict[key, None]]``
    evaluate the cross-region edges exactly once (region mode only).

``result`` is likewise duck-typed: the drivers read/write ``reached``,
``passes``, ``pops``, ``regions``, ``region_passes``, and (warm starts)
``regions_warm``/``val`` — the attribute surface shared by
:class:`repro.core.solver.SolveResult` and
:class:`repro.framework.engine.ClientSolveResult`.

Soundness of the region schedule does not depend on the condensation
order being topological for the flow direction: a delta delivered to an
already-converged region re-queues it (the ``inbox``/``activate``
machinery below), so even a client whose flow graph is processed
against the stored order — e.g. the reverse-graph MOD/REF client —
converges to the same greatest fixpoint, merely with more region
passes.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Iterable


def drive_region_schedule(
    engine,
    schedule,
    worklist,
    result,
    *,
    roots: Iterable[str],
    budget=None,
    warm=None,
) -> None:
    """Converge each SCC region to its local fixed point exactly once,
    callers-first; evaluate every cross-region edge exactly once with
    its caller's final environment. Mutates ``result`` in place (VAL
    through the engine, counters directly)."""
    region_of = schedule.region_of
    #: procedure -> entry keys that lowered since its last visit
    #: (insertion-ordered so counter totals are run-to-run deterministic).
    pending: dict[str, dict] = defaultdict(dict)
    seeded: set[str] = set()
    #: region index -> members reached but not yet processed there.
    active: dict[int, set[str]] = {}
    #: region index -> deltas delivered after the region converged
    #: (defensive: cannot happen on a topologically ordered schedule).
    inbox: dict[int, dict[str, dict]] = {}
    dirty: list[int] = []
    queued: set[int] = set()

    def activate(proc: str) -> None:
        index = region_of[proc]
        active.setdefault(index, set()).add(proc)
        if index not in queued:
            queued.add(index)
            heapq.heappush(dirty, index)

    def deliver(proc: str, keys: dict) -> None:
        # A cross-region flush lowered `proc`'s entry keys. If proc has
        # not been seeded yet its future seed reads the updated — final —
        # environment, so no delta bookkeeping is needed; if it has (a
        # re-queued earlier region), the keys must re-propagate there.
        if proc in seeded:
            slot = inbox.setdefault(region_of[proc], {}).setdefault(proc, {})
            slot.update(keys)
        activate(proc)

    if warm is not None:
        clean_regions = {region_of[proc] for proc in warm.clean}
        result.regions_warm = len(clean_regions)
        for proc in warm.clean:
            env = warm.envs.get(proc)
            if env:
                result.val[proc].update(env)
            seeded.add(proc)  # adopted: never seed a clean procedure
        result.reached.update(warm.reached)
        # The warm frontier: each reached clean caller evaluates its
        # edges into invalidated regions exactly once, from its adopted
        # (final) environment. Edges between clean procedures stay
        # unevaluated — both endpoints' stored solutions already agree.
        for proc in sorted(warm.reached, key=worklist.priority_of):
            invalid = {
                callee
                for callee in engine.callees(proc)
                if callee not in warm.clean
            }
            if not invalid:
                continue
            for callee in sorted(invalid):
                activate(callee)
            for callee, keys in engine.flush_region(proc, only=invalid).items():
                deliver(callee, keys)
    for root in roots:
        if warm is None or root not in warm.clean:
            activate(root)

    max_local = 0
    while dirty:
        index = heapq.heappop(dirty)
        queued.discard(index)
        members = active.pop(index, set())
        box = inbox.pop(index, {})
        if not members and not box:
            continue
        result.regions += 1
        # Fast path: a non-recursive singleton region (every region of a
        # DAG-shaped call graph) converges in exactly one visit — seed or
        # apply deltas, reach callees, flush. Bypassing the worklist
        # machinery here is what keeps region scheduling from costing
        # wall-clock on programs with no recursion at all.
        region = schedule.regions[index]
        if not box and not region.recursive and len(members) == 1:
            (proc,) = members
            if budget is not None:
                budget.check_passes(1)
            worklist.pops += 1
            result.reached.add(proc)
            if proc not in seeded:
                seeded.add(proc)
                pending.pop(proc, None)  # the seed evaluates everything
                engine.seed(proc)  # a singleton has no internal edges
            else:
                deltas = pending.pop(proc, None)
                if deltas:
                    engine.apply_deltas(proc, deltas)
            for callee in engine.callees(proc):
                activate(callee)
            result.region_passes += 1
            if max_local < 1:
                max_local = 1
            for callee, keys in engine.flush_region(proc).items():
                deliver(callee, keys)
            continue
        mark = worklist.begin_segment()
        for proc in sorted(members):
            worklist.push(proc, proc)
        for proc, keys in box.items():
            pending[proc].update(keys)
            worklist.push(proc, proc)
        processed: dict[str, None] = {}
        while worklist:
            caller = worklist.pop()
            if budget is not None:
                budget.check_passes(worklist.passes - mark)
            result.reached.add(caller)
            processed[caller] = None
            if caller not in seeded:
                seeded.add(caller)
                pending.pop(caller, None)  # the seed evaluates everything
                changed = engine.seed(caller)
            else:
                deltas = pending.pop(caller, None)
                changed = engine.apply_deltas(caller, deltas) if deltas else {}
            for callee, keys in changed.items():
                # intra-region by construction of the partition
                pending[callee].update(keys)
                worklist.push(callee, callee)
            for callee in engine.callees(caller):
                if region_of[callee] == index:
                    if callee not in seeded:
                        worklist.push(callee, callee)  # reach without deltas
                else:
                    activate(callee)  # cross-region reach
        local = worklist.passes - mark
        result.region_passes += local
        if local > max_local:
            max_local = local
        # The region is at its local fixed point: evaluate every
        # cross-region edge of its reached members exactly once.
        for caller in processed:
            for callee, keys in engine.flush_region(caller).items():
                deliver(callee, keys)
    result.passes = max_local
    result.pops = worklist.pops


def drive_global_schedule(
    engine,
    worklist,
    result,
    *,
    roots: Iterable[str],
    budget=None,
) -> None:
    """One reverse-postorder priority queue over the whole flow graph,
    every edge re-evaluated whenever its support lowers. The fully
    iterating schedule sanitizers observe; computes the identical
    fixpoint as the region schedule."""
    for root in roots:
        worklist.push(root, root)
    pending: dict[str, dict] = defaultdict(dict)
    seeded: set[str] = set()
    while worklist:
        caller = worklist.pop()
        if budget is not None:
            budget.check_passes(worklist.passes)
        result.reached.add(caller)
        if caller not in seeded:
            seeded.add(caller)
            pending.pop(caller, None)  # the seed evaluates everything
            changed = engine.seed(caller)
        else:
            deltas = pending.pop(caller, None)
            changed = engine.apply_deltas(caller, deltas) if deltas else {}
        for callee, keys in changed.items():
            pending[callee].update(keys)
            worklist.push(callee, callee)
        for callee in engine.callees(caller):
            if callee not in seeded:
                worklist.push(callee, callee)  # reach even without deltas
    result.passes = worklist.passes
    result.pops = worklist.pops
