"""Analysis-agnostic interprocedural dataflow framework.

The stage-3 machinery built across PRs 2–7 — the sparse delta engine,
the reverse-postorder priority worklist, SCC region scheduling, solve
budgets, and sanitizer hooks — solves one specific problem: the paper's
3-level constant lattice driven by jump-function binding edges. This
package factors that machinery into an analysis-agnostic core in the
IFDS/IDE tradition (and the value-contexts formulation of Padhye &
Khedker): a client supplies a :class:`~repro.framework.lattice.Lattice`,
:class:`~repro.framework.edges.EdgeFunction` transfers attached to
:class:`~repro.framework.client.FlowEdge` call-graph edges, seed
environments, and roots; :func:`~repro.framework.engine.solve_client`
runs the identical seed/delta/flush fixed-point discipline over them.

Layering (no cycles):

- :mod:`repro.framework.worklist` and :mod:`repro.framework.driver`
  hold the scheduling core *moved out of* ``repro.core.solver`` — the
  specialized constant-propagation :func:`~repro.core.solver.solve`
  now delegates to them, so the framework and the paper pipeline
  literally share one scheduler.
- :mod:`repro.framework.lattice`, :mod:`repro.framework.edges`, and
  :mod:`repro.framework.client` define the client contracts.
- :mod:`repro.framework.engine` is the generic twin of
  :class:`repro.core.engine.DeltaEngine`, reporting through the same
  counter keys as :class:`repro.core.solver.SolveResult`.
- :mod:`repro.framework.clients` hosts the shipped analyses:
  constant propagation (byte-identical to ``solve()``), interprocedural
  copy propagation (subsumes constprop), and MOD/REF-as-dataflow
  (cross-checked against :mod:`repro.callgraph.modref`).
"""

from repro.framework.client import (
    AnalysisClient,
    FlowEdge,
    FlowIndex,
    flow_edge,
)
from repro.framework.edges import (
    BottomEdge,
    ConstantEdge,
    EdgeFunction,
    ExprEdge,
    IdentityEdge,
)
from repro.framework.engine import ClientSolveResult, solve_client
from repro.framework.lattice import (
    ConstantLattice,
    Lattice,
    PowersetLattice,
)

__all__ = [
    "AnalysisClient",
    "BottomEdge",
    "ClientSolveResult",
    "ConstantEdge",
    "ConstantLattice",
    "EdgeFunction",
    "ExprEdge",
    "FlowEdge",
    "FlowIndex",
    "flow_edge",
    "IdentityEdge",
    "Lattice",
    "PowersetLattice",
    "solve_client",
]
