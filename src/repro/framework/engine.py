"""The generic sparse engine and the client solve entry point.

:class:`ClientEngine` is the analysis-agnostic twin of
:class:`repro.core.engine.DeltaEngine`: the same seed / delta / flush
discipline, the same inlined fast paths (hoisted constants, identity
pass-throughs, support-free floors, already-⊥ targets), the same
memoization shape — but over any :class:`~repro.framework.lattice.Lattice`
and any :class:`~repro.framework.edges.EdgeFunction`, with the lattice's
``top``/``is_bottom``/``meet`` in place of the hard-coded 3-level
operations. The memo holds a strong reference to each edge function's
``memo_token()`` so identity-keyed entries can never alias a recycled
id (the specialized engine gets the same guarantee from the intern
table's generation counter).

:func:`solve_client` is the generic mirror of
:func:`repro.core.solver.solve`: region-scheduled by default, legacy
global schedule under a sanitizer, the same
:class:`~repro.framework.driver` loops, the same budget hooks, and a
:class:`ClientSolveResult` whose ``counters()`` keys are identical to
:class:`repro.core.solver.SolveResult` — benchmark and ``--bench-check``
tooling reads either without knowing which engine produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import ENGINE_COUNTERS, RegionPartition, _memo_value
from repro.core.regions import region_schedule
from repro.framework.client import AnalysisClient
from repro.framework.worklist import PriorityWorklist

__all__ = ["ClientEngine", "ClientSolveResult", "solve_client"]

_MISSING = object()

assert ENGINE_COUNTERS  # the shared counter contract both engines honor


@dataclass(slots=True)
class ClientSolveResult:
    """VAL sets plus solver statistics for a framework client solve.

    Field-for-field the counter surface of
    :class:`repro.core.solver.SolveResult` (``tests/framework`` asserts
    the ``counters()`` key sets are identical so ``--bench-check``
    comparisons never silently skip framework runs); ``analysis`` names
    the client that produced it.
    """

    analysis: str = ""
    val: dict[str, dict] = field(default_factory=dict)
    reached: set[str] = field(default_factory=set)
    passes: int = 0
    pops: int = 0
    evaluations: int = 0
    meets: int = 0
    deltas: int = 0
    skipped: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    bottom_skips: int = 0
    kernel_compiles: int = 0
    kernel_hits: int = 0
    regions: int = 0
    region_passes: int = 0
    regions_warm: int = 0
    waves: int = 0
    regions_parallel: int = 0
    slab_slots: int = 0
    slab_bytes: int = 0
    batch_drains: int = 0
    slab_build_seconds: float = 0.0
    slab_load_seconds: float = 0.0
    slab_patched_procs: int = 0
    slab_patched_slots: int = 0

    def env(self, node: str) -> dict:
        """VAL(node): the node's entry-key environment."""
        return self.val.get(node, {})

    def counters(self) -> dict[str, int]:
        """The solver statistics as a flat mapping — the same keys as
        :meth:`repro.core.solver.SolveResult.counters`."""
        return {
            "passes": self.passes,
            "pops": self.pops,
            "evaluations": self.evaluations,
            "meets": self.meets,
            "deltas": self.deltas,
            "skipped": self.skipped,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "bottom_skips": self.bottom_skips,
            "kernel_compiles": self.kernel_compiles,
            "kernel_hits": self.kernel_hits,
            "regions": self.regions,
            "region_passes": self.region_passes,
            "regions_warm": self.regions_warm,
            "waves": self.waves,
            "regions_parallel": self.regions_parallel,
            "slab_slots": self.slab_slots,
            "slab_bytes": self.slab_bytes,
            "batch_drains": self.batch_drains,
            "slab_build_seconds": self.slab_build_seconds,
            "slab_load_seconds": self.slab_load_seconds,
            "slab_patched_procs": self.slab_patched_procs,
            "slab_patched_slots": self.slab_patched_slots,
        }


class ClientEngine:
    """Evaluate-and-meet over a :class:`~repro.framework.client.FlowIndex`.

    One engine serves one solve; it owns the evaluation memo and mutates
    ``val`` in place, reporting through the stats object's
    :data:`repro.core.engine.ENGINE_COUNTERS` attributes. ``sanitizer``
    and ``budget`` are the same duck-typed hooks the specialized engine
    takes (``observe_transfer``/``observe_update``;
    ``check_engine(stats)`` once per batch).
    """

    __slots__ = (
        "_index",
        "_lattice",
        "_val",
        "_stats",
        "_memo",
        "_tokens",
        "_sanitizer",
        "_budget",
        "_partition",
        "_seeds",
        "_kills",
        "_dependents",
        "_top",
        "_floor",
        "_is_bottom",
        "_meet",
        "_default",
    )

    def __init__(
        self,
        index,
        lattice,
        val: dict[str, dict],
        stats,
        sanitizer=None,
        budget=None,
        partition: RegionPartition | None = None,
    ):
        self._index = index
        self._lattice = lattice
        self._val = val
        self._stats = stats
        self._memo: dict[tuple, object] = {}
        self._tokens: list = []  # strong refs: memo ids never recycle
        self._sanitizer = sanitizer
        self._budget = budget
        self._partition = partition
        self._top = lattice.top
        self._floor = lattice.bottom
        self._is_bottom = lattice.is_bottom
        self._meet = lattice.meet
        # what a missing source key reads as: the floor when the lattice
        # has one (constprop parity), else ⊤ (the neutral element).
        self._default = lattice.bottom if lattice.bottom is not None else lattice.top
        if partition is None:
            self._seeds = index.seeds
            self._kills = index.kills
            self._dependents = index.dependents
        else:
            self._seeds = partition.internal_seeds
            self._kills = partition.internal_kills
            self._dependents = partition.internal_dependents

    def callees(self, caller: str) -> tuple[str, ...]:
        return self._index.callees.get(caller, ())

    def _transfer_edges(self, caller: str, edges, changed: dict) -> None:
        """The inlined edge transfer shared by seed / delta / flush —
        structurally the loop body of the specialized engine's three
        drains, with the lattice operations indirected once per solve
        (bound locals), not once per edge."""
        val = self._val
        caller_env = val[caller]
        sanitizer = self._sanitizer
        top = self._top
        is_bottom = self._is_bottom
        lattice_meet = self._meet
        default = self._default
        evaluations = meets = bottom_skips = 0
        for edge in edges:
            callee = edge.callee
            env = val[callee]
            key = edge.key
            old = env[key]
            if is_bottom(old):
                bottom_skips += 1  # already at the lattice floor
                continue
            incoming = edge.const
            if incoming is None:
                passthrough = edge.passthrough
                if passthrough is not None:
                    # pass-through: the evaluation *is* the env fetch
                    evaluations += 1
                    incoming = caller_env.get(passthrough, default)
                elif edge.support:
                    incoming = self._poly_value(edge, caller_env)
                else:
                    # support-free and not constant ⇒ the floor, applied
                    # without evaluation
                    bottom_skips += 1
                    incoming = self._floor
            if sanitizer is not None:
                sanitizer.observe_transfer(edge.site_id, callee, key, incoming)
            meets += 1
            new = incoming if old is top else lattice_meet(old, incoming)
            if new != old:
                if sanitizer is not None:
                    sanitizer.observe_update(callee, key, old, new)
                env[key] = new
                keys = changed.get(callee)
                if keys is None:
                    keys = changed[callee] = {}
                keys[key] = None
        stats = self._stats
        stats.evaluations += evaluations
        stats.meets += meets
        stats.bottom_skips += bottom_skips

    def _apply_kills(self, pairs, changed: dict, only=None) -> None:
        val = self._val
        stats = self._stats
        sanitizer = self._sanitizer
        floor = self._floor
        for callee, key in pairs:
            if only is not None and callee not in only:
                continue
            stats.skipped += 1
            env = val[callee]
            old = env[key]
            if self._is_bottom(old):
                continue
            stats.meets += 1
            if sanitizer is not None:
                sanitizer.observe_update(callee, key, old, floor)
            env[key] = floor  # meet(old, ⊥) is ⊥ for every old
            keys = changed.get(callee)
            if keys is None:
                keys = changed[callee] = {}
            keys[key] = None

    def seed(self, caller: str) -> dict[str, dict]:
        """First visit of ``caller``: transfer every (intra-region) edge
        once and apply its kills. Returns lowered callee bindings grouped
        by callee, keys in evaluation order."""
        changed: dict[str, dict] = {}
        self._transfer_edges(caller, self._seeds.get(caller, ()), changed)
        self._apply_kills(self._kills.get(caller, ()), changed)
        if self._budget is not None:
            self._budget.check_engine(self._stats)
        return changed

    def apply_deltas(self, proc: str, keys) -> dict[str, dict]:
        """Re-transfer only the edges whose support read a lowered key;
        an edge dependent on several keys of the batch runs once."""
        changed: dict[str, dict] = {}
        visited: set[int] = set()
        batch: list = []
        dependents = self._dependents
        stats = self._stats
        for key in keys:
            stats.deltas += 1
            for edge in dependents.get((proc, key), ()):
                edge_id = id(edge)
                if edge_id in visited:
                    continue
                visited.add(edge_id)
                batch.append(edge)
        if batch:
            self._transfer_edges(proc, batch, changed)
        if self._budget is not None:
            self._budget.check_engine(stats)
        return changed

    def flush_region(self, caller: str, only=None) -> dict[str, dict]:
        """Transfer ``caller``'s cross-region edges (and kills) exactly
        once with its final environment. Requires a partition."""
        partition = self._partition
        changed: dict[str, dict] = {}
        edges = partition.external_seeds.get(caller, ())
        if only is not None:
            edges = [edge for edge in edges if edge.callee in only]
        self._transfer_edges(caller, edges, changed)
        self._apply_kills(
            partition.external_kills.get(caller, ()), changed, only=only
        )
        if self._budget is not None:
            self._budget.check_engine(self._stats)
        return changed

    def _poly_value(self, edge, caller_env: dict):
        """Memoized evaluation of a genuine (environment-reading) edge
        function, keyed on the function's memo token identity plus the
        support slice of the source environment."""
        stats = self._stats
        support = edge.support
        default = self._default
        if len(support) == 1:
            values = _memo_value(caller_env.get(support[0], default))
        else:
            values = tuple(
                _memo_value(caller_env.get(key, default)) for key in support
            )
        token = edge.func.memo_token()
        memo_key = (id(token), values)
        incoming = self._memo.get(memo_key, _MISSING)
        if incoming is _MISSING:
            stats.memo_misses += 1
            stats.evaluations += 1
            incoming = edge.func.apply(caller_env)
            self._memo[memo_key] = incoming
            self._tokens.append(token)
        else:
            stats.memo_hits += 1
        return incoming


def solve_client(
    lowered,
    graph,
    client: AnalysisClient,
    *,
    region_scheduled: bool = True,
    budget=None,
    sanitizer=None,
) -> ClientSolveResult:
    """Solve ``client``'s dataflow problem to its greatest fixpoint —
    the generic mirror of :func:`repro.core.solver.solve`.

    Region-scheduled by default over the client's flow graph (SCC
    condensation, callers-first, cross-region edges deferred to one
    final-environment flush); ``region_scheduled=False`` or an attached
    ``sanitizer`` runs the fully iterating global schedule, exactly as
    the specialized solver does. ``budget`` caps passes and engine fuel
    through the same :class:`~repro.resilience.budgets.SolveBudget`
    hooks.
    """
    from repro.framework.driver import (
        drive_global_schedule,
        drive_region_schedule,
    )

    if sanitizer is not None:
        # Sanitizing wants to observe every transfer of an iterating
        # schedule; region deferral hides cross-region re-evaluations.
        region_scheduled = False
    flow_graph = client.flow_graph(lowered, graph)
    index = client.flow_edges(lowered, graph)
    result = ClientSolveResult(
        analysis=client.name, val=client.initial_env(lowered, graph)
    )
    roots = client.roots(lowered, graph)
    worklist = PriorityWorklist(flow_graph.rpo_index())
    if region_scheduled:
        schedule = region_schedule(flow_graph)
        engine = ClientEngine(
            index,
            client.lattice,
            result.val,
            result,
            sanitizer,
            budget,
            partition=client.partition(lowered, graph, schedule.region_of),
        )
        drive_region_schedule(
            engine, schedule, worklist, result, roots=roots, budget=budget
        )
    else:
        engine = ClientEngine(
            index, client.lattice, result.val, result, sanitizer, budget
        )
        drive_global_schedule(
            engine, worklist, result, roots=roots, budget=budget
        )
    return result
