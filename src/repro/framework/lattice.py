"""The lattice contract and the shipped lattices.

A framework lattice is a *meet* semilattice with a greatest element
(``top``) and, optionally, a least element (``bottom``). The generic
engine only ever moves values *down*: every transfer is met into the
target key, and the solve terminates because each key can lower at most
``height`` times. The engine exploits two structural facts when the
lattice provides them:

- ``top`` is a singleton object, so ``meet(top, x) = x`` is applied by
  identity test without a call;
- ``is_bottom(v)`` detects the floor, so edges into an already-⊥ key
  are skipped entirely (``bottom_skips``) — lattices with no finite
  floor (e.g. powersets under union) simply return ``False`` and give
  up that short-circuit, nothing else.

Values must be hashable (they ride in the evaluation-memo key) and
comparable with ``==``; the memo slices pair each value with its class
(:func:`repro.core.engine._memo_value`) so ``True`` never aliases ``1``.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.core.lattice import BOTTOM, TOP, meet as constant_meet

#: A framework lattice value — any hashable object the client's lattice
#: understands. The engine never inspects values beyond identity/equality
#: tests against ``top``/``bottom`` and calls to ``meet``.
Value = Hashable


class Lattice:
    """Client contract: a bounded-height meet semilattice.

    ``top`` must be a singleton (compared with ``is``); ``bottom`` may
    be ``None``-able semantics via :meth:`is_bottom` returning ``False``
    always (no finite floor). ``meet`` must be commutative, associative,
    idempotent, and monotone-descending: ``meet(a, b) ⊑ a``.
    """

    #: the greatest element (a singleton object).
    top: Value = None
    #: the least element, or a conventional floor; meaningful only when
    #: :meth:`is_bottom` can recognize it.
    bottom: Value = None

    def meet(self, a: Value, b: Value) -> Value:
        raise NotImplementedError

    def is_bottom(self, value: Value) -> bool:
        """Whether ``value`` is the floor (enables the ⊥ short-circuit
        and seed-time kills). Default: identity with ``bottom``."""
        return value is self.bottom

    def meet_all(self, values: Iterable[Value]) -> Value:
        result = self.top
        for value in values:
            result = self.meet(result, value)
            if self.is_bottom(result):
                return result
        return result


class ConstantLattice(Lattice):
    """The paper's 3-level lattice (§2 Figure 1) as a framework client
    lattice: ⊤ / the constants / ⊥, delegating to
    :func:`repro.core.lattice.meet` so the framework constprop client
    meets exactly as the specialized solver does."""

    top = TOP
    bottom = BOTTOM

    def meet(self, a: Value, b: Value) -> Value:
        return constant_meet(a, b)

    def is_bottom(self, value: Value) -> bool:
        return value is BOTTOM


class PowersetLattice(Lattice):
    """Sets under union, ordered by ⊇-is-lower: ⊤ is the empty set and
    meet accumulates facts. There is no finite ⊥ (the universe is not
    materialized), so :meth:`is_bottom` is constantly ``False`` and the
    engine's floor short-circuit is simply inert. Used by the MOD/REF
    client, whose "values" are frozensets of affected storage slots."""

    top: frozenset = frozenset()
    bottom = None  # no finite floor: is_bottom is constantly False

    def meet(self, a: Value, b: Value) -> Value:
        if not b:
            return a
        if not a:
            return b
        union = a | b
        # Preserve object identity when nothing new arrived — the
        # engine's `new != old` test then sees dict-equal values and
        # does not propagate a spurious delta (frozenset equality would
        # too, but identity keeps the common case allocation-free).
        if len(union) == len(a):
            return a
        return union

    def is_bottom(self, value: Value) -> bool:
        return False
