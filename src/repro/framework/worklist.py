"""The reverse-postorder priority worklist shared by every scheduler.

Moved here from ``repro.core.solver`` (PR 8) so the generic framework
driver, the specialized constant-propagation solvers, the binding-grain
solver, and the parallel region scheduler all drain the same structure;
``repro.core.solver._PriorityWorklist`` remains as a compatibility
alias.
"""

from __future__ import annotations

import heapq


class PriorityWorklist:
    """A worklist ordered by reverse-postorder priority, with membership
    dedup and monotone-sweep ("pass") accounting shared by both solvers."""

    def __init__(self, order: dict[str, int]):
        self._order = order
        self._heap: list[tuple[int, int, object]] = []
        self._queued: set[object] = set()
        self._seq = 0
        self._last_priority: int | None = None
        self.passes = 0
        self.pops = 0

    def __bool__(self) -> bool:
        return bool(self._heap)

    def priority_of(self, proc: str) -> int:
        # Procedures introduced after the order was computed (impossible
        # today, defensive) sort last.
        return self._order.get(proc, len(self._order))

    def push(self, item: object, proc: str) -> None:
        if item in self._queued:
            return
        self._queued.add(item)
        self._seq += 1
        heapq.heappush(self._heap, (self.priority_of(proc), self._seq, item))

    def pop(self) -> object:
        priority, _, item = heapq.heappop(self._heap)
        self._queued.discard(item)
        self.pops += 1
        if self._last_priority is None or priority <= self._last_priority:
            self.passes += 1  # the ascending run wrapped: a new sweep
        self._last_priority = priority
        return item

    def begin_segment(self) -> int:
        """Open a new pass-counting segment (one region's convergence):
        the next pop starts a fresh ascending run instead of comparing
        against the previous region's last priority — SCC member
        priorities of different regions may interleave, and a cross-
        boundary comparison would count spurious sweeps. Returns the
        pass count at the boundary, so ``passes - mark`` is the
        segment-local sweep count."""
        self._last_priority = None
        return self.passes
