"""Flow graphs: the scheduling skeleton of a framework client.

The region scheduler (:mod:`repro.core.regions`) and the priority
worklist only need four things from a graph: ``nodes``, ``callees()``
(flow successors), ``rpo_index()``, and ``sccs()``. The program's
:class:`~repro.callgraph.graph.CallGraph` provides them directly, and
forward clients (constprop, copyprop) simply schedule over it. Clients
whose facts flow *against* call edges — MOD/REF summaries rise from
callees to callers — instead build a :class:`FlowGraph` with the edges
they actually propagate along; :func:`reverse_flow_graph` derives the
call graph's mirror image once per graph instance.

A :class:`FlowGraph` supports multiple roots (the MOD/REF client seeds
every procedure), generalizing the call graph's single-``main`` DFS:
reverse postorder runs from each root in order, and nodes no root
reaches follow in name order so the priority index stays total. The
``_region_schedule`` cache attribute matches the call graph's, so
:func:`repro.core.regions.region_schedule` memoizes on either kind.
"""

from __future__ import annotations


class FlowGraph:
    """A directed flow graph over procedure names, duck-typed to the
    scheduling surface of :class:`repro.callgraph.graph.CallGraph`."""

    def __init__(
        self,
        nodes: list[str],
        successors: dict[str, tuple[str, ...]],
        roots: tuple[str, ...],
    ):
        self.nodes = list(nodes)
        self._successors = successors
        self.roots = roots
        self._rpo_index: dict[str, int] | None = None

    def callees(self, name: str) -> tuple[str, ...]:
        """Flow successors (named for CallGraph compatibility)."""
        return self._successors.get(name, ())

    def reverse_postorder(self) -> list[str]:
        postorder: list[str] = []
        seen: set[str] = set()
        for root in self.roots:
            if root in seen:
                continue
            seen.add(root)
            stack: list[tuple[str, object]] = [(root, iter(self.callees(root)))]
            while stack:
                node, children = stack[-1]
                for child in children:  # type: ignore[union-attr]
                    if child not in seen:
                        seen.add(child)
                        stack.append((child, iter(self.callees(child))))
                        break
                else:
                    postorder.append(node)
                    stack.pop()
        order = list(reversed(postorder))
        order.extend(name for name in self.nodes if name not in seen)
        return order

    def rpo_index(self) -> dict[str, int]:
        if self._rpo_index is None:
            self._rpo_index = {
                name: index
                for index, name in enumerate(self.reverse_postorder())
            }
        return self._rpo_index

    def sccs(self) -> list[list[str]]:
        """Strongly connected components (iterative Tarjan, the same
        traversal as :meth:`repro.callgraph.graph.CallGraph.sccs`)."""
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        result: list[list[str]] = []

        def strongconnect(node: str) -> None:
            work = [(node, iter(self.callees(node)))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self.callees(child))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[current] = min(lowlink[current], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    result.append(sorted(component))

        for node in self.nodes:
            if node not in index:
                strongconnect(node)
        return result


def reverse_flow_graph(graph) -> FlowGraph:
    """The call graph's mirror image: one flow edge callee → caller per
    calling pair, every procedure a root (summaries exist even for
    procedures the main program never reaches). Cached per graph
    instance, like the region schedule derived from it."""
    cached = getattr(graph, "_reverse_flow_graph", None)
    if cached is not None:
        return cached
    successors = {
        name: tuple(graph.callers(name)) for name in graph.nodes
    }
    reversed_graph = FlowGraph(
        nodes=list(graph.nodes),
        successors=successors,
        roots=tuple(sorted(graph.nodes)),
    )
    try:
        graph._reverse_flow_graph = reversed_graph
    except AttributeError:
        pass  # slotted stand-ins rebuild per solve
    return reversed_graph
